//! The sharded serving runtime: many simulated systems, few threads, one
//! shared compiled policy, bit-identical output at any shard count — now
//! wrapped in a supervision layer that isolates per-system failures,
//! retries them under per-error-class budgets, checkpoints fleet progress
//! to a JSONL journal, and hot-swaps the shared policy at deterministic
//! event-count barriers.
//!
//! # Determinism argument
//!
//! Three properties compose into the shard-count invariance guarantee:
//!
//! 1. **Per-system seeding.** System `i` draws its randomness from
//!    `dpm_harness::seed::derive_serve_attempt_seed(root, i, a)` — a pure
//!    function of the fleet index and the attempt's seed-stream index,
//!    never of the shard or the interleaving.
//! 2. **Closed per-system state.** Each [`dpm_sim::SimRun`] owns its RNG
//!    and queue; stepping runs in any order cannot perturb one another, so
//!    a shard batching 256 events of system A between batches of system B
//!    produces exactly the serial event sequences.
//! 3. **Associative merging.** Reports are stitched in fleet-index order
//!    and folded through [`dpm_sim::MergedReport`], whose accumulators
//!    ([`dpm_sim::ExactSum`]) are exactly associative — the per-shard
//!    partial grouping cannot leak into the totals.
//!
//! The supervision layer preserves all three. Every recovery decision is
//! a pure function of `(system, event count, attempt)`: panics are caught
//! per batch with [`std::panic::catch_unwind`] and replayed from event
//! zero under the *same* seed (so a recovered system's report is
//! bit-identical to a never-faulted run); engine errors — deterministic
//! in the seed — retry under a fresh seed stream; backoff skips
//! round-robin *visits*, never wall-clock. Hot swaps apply when a
//! system's own event counter crosses the scheduled barrier, which is the
//! same event at every shard count and on every replay.
//!
//! Checkpointing follows the same logic: because the engine is
//! deterministic in its seed, a journaled epoch (seed-stream index plus
//! attempt count) is a complete checkpoint — restore is replay. Killing
//! the process at *any* point and resuming from the journal therefore
//! reproduces the uninterrupted run bit-for-bit, a claim
//! `bench_serve --resume` and the CI chaos smoke check at tolerance 0.
//!
//! The [`ServeOutcome`] additionally carries a fingerprint over every
//! served system's report, so "N shards ≡ 1 shard" is checkable from the
//! artifact alone.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

use dpm_core::PmSystem;
use dpm_harness::{seed::derive_serve_attempt_seed, Json};
use dpm_sim::workload::PoissonWorkload;
use dpm_sim::{MergedReport, SimConfig, SimError, SimReport, SimRun, Simulator};

use crate::journal::{self, FleetJournal, Restored};
use crate::supervise::SwapEntry;
use crate::{
    CompiledController, CompiledPolicy, ConfigError, ErrorClass, RetryPolicy, ServeError,
    ServeFaultPlan, SwapOutcome, SwapPlan, SystemRecord, SystemStatus,
};

/// Format tag of the serialized serve outcome.
pub const SERVE_OUTCOME_FORMAT: &str = "dpm-serve-outcome/v2";

/// Configuration of a serving run: fleet size, shard count, per-system
/// workload volume, batching grain, and the supervision knobs (retry
/// budgets, fault injection, swap schedule, checkpoint journal).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    root_seed: u64,
    systems: usize,
    shards: usize,
    requests_per_system: u64,
    batch_events: usize,
    retry: RetryPolicy,
    faults: ServeFaultPlan,
    swaps: SwapPlan,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
    checkpoint_every: u64,
}

impl ServeConfig {
    /// A default fleet: 64 systems, 1 shard, 1000 requests each, events
    /// batched 256 at a time, default retry budgets, no faults, no swaps,
    /// no journal, epoch records every 1024 events.
    #[must_use]
    pub fn new(root_seed: u64) -> Self {
        ServeConfig {
            root_seed,
            systems: 64,
            shards: 1,
            requests_per_system: 1_000,
            batch_events: 256,
            retry: RetryPolicy::new(),
            faults: ServeFaultPlan::new(),
            swaps: SwapPlan::new(),
            checkpoint: None,
            resume: None,
            checkpoint_every: 1_024,
        }
    }

    /// Sets the number of independent simulated systems.
    #[must_use]
    pub fn systems(mut self, n: usize) -> Self {
        self.systems = n;
        self
    }

    /// Sets the number of worker threads (shards).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the workload volume per system.
    #[must_use]
    pub fn requests_per_system(mut self, n: u64) -> Self {
        self.requests_per_system = n;
        self
    }

    /// Sets how many events a shard processes per system before moving to
    /// the next (cache-friendliness knob; no effect on results).
    #[must_use]
    pub fn batch_events(mut self, n: usize) -> Self {
        self.batch_events = n;
        self
    }

    /// Sets the per-error-class retry budgets and backoff schedule.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arms a deterministic fault-injection plan (tests and chaos smokes).
    #[must_use]
    pub fn faults(mut self, faults: ServeFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Schedules epoch-coordinated hot policy swaps.
    #[must_use]
    pub fn swaps(mut self, swaps: SwapPlan) -> Self {
        self.swaps = swaps;
        self
    }

    /// Writes a fleet checkpoint journal to `path` as the run progresses.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Resumes from the journal at `path`: settled systems are carried
    /// forward verbatim, in-flight systems replay deterministically.
    ///
    /// The resume journal is read in full before a `checkpoint` journal is
    /// created, so resuming from and checkpointing to the *same* path is
    /// safe.
    #[must_use]
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Sets the epoch-record cadence (in per-system events; min 1). Epochs
    /// bound the replay a resume performs; the journal also records every
    /// retry and settlement immediately regardless of cadence.
    #[must_use]
    pub fn checkpoint_every(mut self, events: u64) -> Self {
        self.checkpoint_every = events.max(1);
        self
    }
}

fn validate_config(config: &ServeConfig) -> Result<(), ConfigError> {
    if config.systems == 0 {
        return Err(ConfigError::NoSystems);
    }
    if config.shards == 0 {
        return Err(ConfigError::NoShards);
    }
    if config.batch_events == 0 {
        return Err(ConfigError::NoBatchEvents);
    }
    if config.shards > config.systems {
        return Err(ConfigError::ShardsExceedSystems {
            shards: config.shards,
            systems: config.systems,
        });
    }
    Ok(())
}

/// Merged result of a serving run, plus the per-system supervision trail.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    root_seed: u64,
    systems: usize,
    shards: usize,
    requests_per_system: u64,
    merged: MergedReport,
    fingerprint: u64,
    records: Vec<SystemRecord>,
    swaps: Vec<SwapOutcome>,
}

impl ServeOutcome {
    /// Deterministic aggregate over every *served* system (quarantined
    /// systems are excluded).
    #[must_use]
    pub fn merged(&self) -> &MergedReport {
        &self.merged
    }

    /// FNV-1a digest over every served system's report in fleet order —
    /// equal fingerprints mean bit-identical per-system results, not just
    /// equal totals.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of systems in the fleet (served or quarantined).
    #[must_use]
    pub fn systems(&self) -> usize {
        self.systems
    }

    /// Number of shards the run used (does not affect results).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-system supervision records, in fleet order.
    #[must_use]
    pub fn records(&self) -> &[SystemRecord] {
        &self.records
    }

    /// Validation verdict for each scheduled hot swap, in plan order.
    #[must_use]
    pub fn swap_outcomes(&self) -> &[SwapOutcome] {
        &self.swaps
    }

    /// Number of systems that ran to completion.
    #[must_use]
    pub fn served(&self) -> usize {
        self.records.iter().filter(|r| r.is_served()).count()
    }

    /// Number of systems quarantined after exhausting their retry budget.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.systems - self.served()
    }

    /// Serializes the outcome as versioned canonical JSON.
    ///
    /// The shard count lands under the volatile `provenance` key, so
    /// artifacts from runs at different shard counts diff clean at
    /// tolerance 0 (`dpm_harness::artifact::diff`) exactly when the
    /// results are bit-identical. The supervision trail (incident list,
    /// swap verdicts) is canonical: it too is deterministic at any shard
    /// count and across kill/resume cycles.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let m = &self.merged;
        let mut totals = Json::object();
        totals.set("events", m.events());
        totals.set("policy_lookups", m.consultations());
        totals.set("arrivals", m.arrivals());
        totals.set("completed", m.completed());
        totals.set("lost", m.lost());
        totals.set("switches", m.switches());
        totals.set("sim_seconds", Json::num(m.duration()));
        totals.set("energy_joules", Json::num(m.total_energy()));
        totals.set("switch_energy_joules", Json::num(m.switch_energy()));
        let mut averages = Json::object();
        averages.set("power_watts", Json::num(m.average_power()));
        averages.set("queue_length", Json::num(m.average_queue_length()));
        averages.set("waiting_seconds", Json::num(m.average_waiting_time()));
        averages.set("loss_fraction", Json::num(m.loss_fraction()));

        let mut supervision = Json::object();
        supervision.set("served", self.served());
        supervision.set("quarantined", self.quarantined());
        supervision.set(
            "retried",
            self.records.iter().filter(|r| r.attempts() > 1).count(),
        );
        supervision.set(
            "incidents",
            Json::Array(
                self.records
                    .iter()
                    .filter(|r| r.attempts() > 1 || !r.is_served())
                    .map(|r| {
                        let mut incident = Json::object();
                        incident.set("system", r.system());
                        incident.set("attempts", u64::from(r.attempts()));
                        incident.set("seed_attempt", u64::from(r.seed_attempt()));
                        match r.status() {
                            SystemStatus::Served(_) => {
                                incident.set("status", "served");
                            }
                            SystemStatus::Quarantined { class, error } => {
                                incident.set("status", "quarantined");
                                incident.set("class", class.as_str());
                                incident.set("error", error.clone());
                            }
                        }
                        incident
                    })
                    .collect(),
            ),
        );
        supervision.set(
            "swaps",
            Json::Array(
                self.swaps
                    .iter()
                    .map(|s| {
                        let mut swap = Json::object();
                        swap.set("at_events", s.at_events());
                        swap.set("accepted", s.accepted());
                        if let Some(reason) = s.reason() {
                            swap.set("reason", reason);
                        }
                        swap
                    })
                    .collect(),
            ),
        );

        let mut provenance = Json::object();
        provenance.set("shards", self.shards);
        let mut doc = Json::object();
        doc.set("format", SERVE_OUTCOME_FORMAT);
        doc.set("root_seed", self.root_seed);
        doc.set("systems", self.systems);
        doc.set("requests_per_system", self.requests_per_system);
        doc.set("fingerprint", format!("{:016x}", self.fingerprint));
        doc.set("totals", totals);
        doc.set("averages", averages);
        doc.set("supervision", supervision);
        doc.set("provenance", provenance);
        doc
    }
}

/// Validates every scheduled swap against the served system before the
/// fleet starts. Rejected artifacts never enter the schedule — the run
/// proceeds under the surviving entries and the rejection (with reason)
/// is reported on the outcome.
fn validate_swaps(
    system: &PmSystem,
    plan: &SwapPlan,
) -> (Vec<(u64, Arc<CompiledPolicy>)>, Vec<SwapOutcome>) {
    let mut schedule = Vec::with_capacity(plan.entries.len());
    let mut outcomes = Vec::with_capacity(plan.entries.len());
    for entry in &plan.entries {
        match validate_swap_entry(system, entry) {
            Ok(()) => {
                schedule.push((entry.at_events, Arc::new(entry.policy.clone())));
                outcomes.push(SwapOutcome {
                    at_events: entry.at_events,
                    accepted: true,
                    reason: None,
                });
            }
            Err(reason) => outcomes.push(SwapOutcome {
                at_events: entry.at_events,
                accepted: false,
                reason: Some(reason),
            }),
        }
    }
    // Stable by barrier: entries scheduled at the same barrier apply in
    // plan order, so the last one wins there — deterministically.
    schedule.sort_by_key(|(at_events, _)| *at_events);
    (schedule, outcomes)
}

fn validate_swap_entry(system: &PmSystem, entry: &SwapEntry) -> Result<(), String> {
    if entry.at_events == 0 {
        return Err(
            "swap barrier must be positive (a swap at 0 would predate the fleet)".to_owned(),
        );
    }
    let policy = &entry.policy;
    let sp = system.provider();
    if policy.n_modes() != sp.n_modes() {
        return Err(format!(
            "policy compiled for {} modes, system has {}",
            policy.n_modes(),
            sp.n_modes()
        ));
    }
    if policy.capacity() != system.capacity() {
        return Err(format!(
            "policy compiled for capacity {}, system has {}",
            policy.capacity(),
            system.capacity()
        ));
    }
    if policy.n_states() != system.n_states() {
        return Err(format!(
            "policy covers {} states, system has {}",
            policy.n_states(),
            system.n_states()
        ));
    }
    if let Some(table) = &entry.table {
        if table.destinations().len() != system.n_states() {
            return Err(format!(
                "source table covers {} states, system has {}",
                table.destinations().len(),
                system.n_states()
            ));
        }
    }
    for (index, &state) in system.states().iter().enumerate() {
        let Some(dest) = policy.action(state) else {
            return Err(format!("state {index} has no compiled action"));
        };
        if !system.action_destinations(index).contains(&dest) {
            return Err(format!("state {index} commands invalid destination {dest}"));
        }
        if let Some(table) = &entry.table {
            let expected = table.destination(index);
            if expected != dest {
                return Err(format!(
                    "state {index}: compiled action {dest} disagrees with the source table ({expected})"
                ));
            }
        }
    }
    Ok(())
}

/// Drives a fleet of independent simulated systems against one compiled
/// policy, partitioned across `config.shards` threads, under supervision:
/// per-system failures are isolated, retried within their error class's
/// budget, and quarantined on exhaustion; progress is journaled when a
/// checkpoint path is configured; scheduled hot swaps replace the shared
/// policy at deterministic per-system event barriers.
///
/// Results are bit-identical for any shard count and across kill/resume
/// cycles (see the module docs for the argument); the shard count only
/// changes wall-clock time.
///
/// # Errors
///
/// Returns [`ServeError::Config`] for a degenerate configuration (empty
/// fleet, zero shards or batch, more shards than systems — see
/// [`ConfigError`]), [`ServeError::Checkpoint`] if a journal cannot be
/// read, validated or written, and [`ServeError::ShardPanic`] if a worker
/// thread dies outside the supervised stepping closure (a bug —
/// per-system panics are isolated and retried, not propagated).
pub fn serve(
    system: &PmSystem,
    policy: &CompiledPolicy,
    config: &ServeConfig,
) -> Result<ServeOutcome, ServeError> {
    validate_config(config)?;
    let (schedule, swap_results) = validate_swaps(system, &config.swaps);
    let restored = match &config.resume {
        Some(path) => journal::load_fleet(
            path,
            config.root_seed,
            config.systems,
            config.requests_per_system,
        )?,
        None => vec![Restored::Fresh; config.systems],
    };
    let journal = match &config.checkpoint {
        Some(path) => {
            let mut fleet_journal = FleetJournal::create(
                path,
                config.root_seed,
                config.systems,
                config.requests_per_system,
            )?;
            write_carried_forward(&mut fleet_journal, &restored, config.root_seed)?;
            Some(Mutex::new(fleet_journal))
        }
        None => None,
    };

    let shared = Arc::new(policy.clone());
    let shards = config.shards;
    let chunk = config.systems.div_ceil(shards);
    let ctx = ShardCtx {
        system,
        initial: &shared,
        schedule: &schedule,
        config,
        journal: journal.as_ref(),
        lambda: system.requestor().rate(),
    };

    let mut shard_results: Vec<Result<Vec<SystemRecord>, ServeError>> = Vec::with_capacity(shards);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let start = shard * chunk;
            let end = ((shard + 1) * chunk).min(config.systems);
            let ctx = &ctx;
            let restored = &restored;
            handles.push(scope.spawn(move || run_shard(ctx, shard, start..end, restored)));
        }
        for (shard, handle) in handles.into_iter().enumerate() {
            shard_results.push(
                handle
                    .join()
                    .unwrap_or(Err(ServeError::ShardPanic { shard })),
            );
        }
    });

    let mut records: Vec<SystemRecord> = Vec::with_capacity(config.systems);
    for result in shard_results {
        records.extend(result?);
    }
    let mut merged = MergedReport::new();
    let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for record in &records {
        if let Some(report) = record.report() {
            absorb_fingerprint(&mut fingerprint, report);
            merged.absorb(report);
        }
    }
    Ok(ServeOutcome {
        root_seed: config.root_seed,
        systems: config.systems,
        shards,
        requests_per_system: config.requests_per_system,
        merged,
        fingerprint,
        records,
        swaps: swap_results,
    })
}

/// Seeds a fresh journal with everything the resume journal already
/// settled — contiguous settled systems compact to one range record —
/// plus one epoch per in-flight system carrying its attempt counters
/// forward, so a second kill before new progress still resumes correctly.
fn write_carried_forward(
    journal: &mut FleetJournal,
    restored: &[Restored],
    root_seed: u64,
) -> Result<(), ServeError> {
    let mut i = 0;
    while i < restored.len() {
        match restored.get(i) {
            Some(Restored::Settled(_)) => {
                let start = i;
                let mut run = Vec::new();
                while let Some(Restored::Settled(record)) = restored.get(i) {
                    run.push(record);
                    i += 1;
                }
                journal.settled_run(start, &run)?;
            }
            Some(Restored::InFlight {
                attempts,
                seed_attempt,
                events,
            }) => {
                let seed = derive_serve_attempt_seed(root_seed, i as u64, *seed_attempt);
                journal.epoch(i, *events, *attempts, *seed_attempt, seed)?;
                i += 1;
            }
            _ => i += 1,
        }
    }
    Ok(())
}

/// Everything a shard needs to build, supervise and journal its systems.
struct ShardCtx<'a> {
    system: &'a PmSystem,
    initial: &'a Arc<CompiledPolicy>,
    schedule: &'a [(u64, Arc<CompiledPolicy>)],
    config: &'a ServeConfig,
    journal: Option<&'a Mutex<FleetJournal>>,
    lambda: f64,
}

/// Supervision state of one system in a shard's round-robin.
struct Slot {
    system: usize,
    /// Attempts started (1 = first try in progress).
    attempts: u32,
    /// Seed-stream index of the current attempt (engine retries advance
    /// it; panic retries replay it).
    seed_attempt: u32,
    /// Consecutive failures, driving the backoff schedule.
    failures: u32,
    /// Round-robin visits left to skip before the next step batch.
    cooldown: u64,
    /// Event count of the last journaled epoch for this attempt.
    last_epoch: u64,
    /// Next unapplied entry in the swap schedule.
    next_swap: usize,
    run: Option<SimRun<PoissonWorkload, CompiledController>>,
    record: Option<SystemRecord>,
}

impl Slot {
    fn new(system: usize) -> Self {
        Slot {
            system,
            attempts: 1,
            seed_attempt: 0,
            failures: 0,
            cooldown: 0,
            last_epoch: 0,
            next_swap: 0,
            run: None,
            record: None,
        }
    }
}

impl ShardCtx<'_> {
    fn with_journal<F>(&self, write: F) -> Result<(), ServeError>
    where
        F: FnOnce(&mut FleetJournal) -> Result<(), ServeError>,
    {
        match self.journal {
            Some(mutex) => {
                let mut guard = mutex.lock().unwrap_or_else(PoisonError::into_inner);
                write(&mut guard)
            }
            None => Ok(()),
        }
    }

    fn journal_epoch(&self, slot: &Slot, events: u64) -> Result<(), ServeError> {
        let seed =
            derive_serve_attempt_seed(self.config.root_seed, slot.system as u64, slot.seed_attempt);
        let (system, attempts, seed_attempt) = (slot.system, slot.attempts, slot.seed_attempt);
        self.with_journal(|j| j.epoch(system, events, attempts, seed_attempt, seed))
    }

    /// Builds (or rebuilds) a system's run for its current seed stream.
    fn build(
        &self,
        system_index: usize,
        seed_attempt: u32,
    ) -> Result<SimRun<PoissonWorkload, CompiledController>, (ErrorClass, String)> {
        if self.config.faults.setup_armed(system_index) {
            return Err((
                ErrorClass::Setup,
                format!("injected setup failure for system {system_index}"),
            ));
        }
        let seed =
            derive_serve_attempt_seed(self.config.root_seed, system_index as u64, seed_attempt);
        let workload =
            PoissonWorkload::new(self.lambda).map_err(|e| (ErrorClass::Setup, e.to_string()))?;
        Simulator::new(
            self.system.provider().clone(),
            self.system.capacity(),
            workload,
            CompiledController::new(Arc::clone(self.initial)),
            SimConfig::new(seed).max_requests(self.config.requests_per_system),
        )
        .start()
        .map_err(|e| (ErrorClass::Setup, e.to_string()))
    }

    /// Settles a system as quarantined and journals the verdict.
    fn quarantine(
        &self,
        slot: &mut Slot,
        class: ErrorClass,
        error: String,
    ) -> Result<(), ServeError> {
        slot.run = None;
        let record = SystemRecord {
            system: slot.system,
            attempts: slot.attempts,
            seed_attempt: slot.seed_attempt,
            status: SystemStatus::Quarantined { class, error },
        };
        self.with_journal(|j| j.settled(&record))?;
        slot.record = Some(record);
        Ok(())
    }

    /// Handles one failure of `slot`'s current attempt: quarantine if the
    /// class's budget is spent, otherwise rebuild for a retry — panics
    /// replay the same seed stream, engine errors advance to a fresh one
    /// (replaying a deterministic engine would fail identically), and a
    /// logical backoff delays the retry by scheduling visits, not time.
    fn fail(&self, slot: &mut Slot, class: ErrorClass, error: String) -> Result<(), ServeError> {
        slot.failures = slot.failures.saturating_add(1);
        if slot.attempts >= self.config.retry.budget(class) {
            return self.quarantine(slot, class, error);
        }
        slot.attempts = slot.attempts.saturating_add(1);
        if class == ErrorClass::Engine {
            slot.seed_attempt = slot.seed_attempt.saturating_add(1);
        }
        slot.cooldown = self.config.retry.backoff_visits(slot.failures);
        slot.next_swap = 0;
        slot.last_epoch = 0;
        match self.build(slot.system, slot.seed_attempt) {
            Ok(run) => {
                slot.run = Some(run);
                // Persist the retry decision immediately: a kill right
                // after this line resumes into the same attempt counters.
                self.journal_epoch(slot, 0)
            }
            Err((class, message)) => self.quarantine(slot, class, message),
        }
    }
}

/// Builds a slot's first run (for its restored seed stream), routing a
/// construction failure through the supervisor.
fn init_run(ctx: &ShardCtx<'_>, slot: &mut Slot) -> Result<(), ServeError> {
    match ctx.build(slot.system, slot.seed_attempt) {
        Ok(run) => {
            slot.run = Some(run);
            Ok(())
        }
        Err((class, message)) => ctx.fail(slot, class, message),
    }
}

/// Runs one shard's contiguous block of systems with batched event
/// processing under supervision, returning settled records in fleet order.
fn run_shard(
    ctx: &ShardCtx<'_>,
    shard: usize,
    range: std::ops::Range<usize>,
    restored: &[Restored],
) -> Result<Vec<SystemRecord>, ServeError> {
    let mut slots = Vec::with_capacity(range.len());
    for i in range {
        let mut slot = Slot::new(i);
        match restored.get(i) {
            Some(Restored::Settled(record)) => slot.record = Some(record.clone()),
            Some(Restored::InFlight {
                attempts,
                seed_attempt,
                events,
            }) => {
                slot.attempts = (*attempts).max(1);
                slot.seed_attempt = *seed_attempt;
                slot.failures = slot.attempts.saturating_sub(1);
                // Epochs below the journaled progress are already on
                // record (carried forward at journal creation).
                slot.last_epoch = *events;
                init_run(ctx, &mut slot)?;
            }
            _ => init_run(ctx, &mut slot)?,
        }
        slots.push(slot);
    }

    // Round-robin over the block, `batch_events` events per system per
    // visit: the shared policy tables stay hot while each system's state
    // stays compact. Purely a scheduling choice — per-run results are
    // interleaving-invariant, so neither batching nor backoff (skipped
    // visits) can change any system's numbers.
    let mut live = slots.iter().filter(|s| s.run.is_some()).count();
    while live > 0 {
        live = 0;
        for slot in &mut slots {
            if slot.run.is_none() {
                continue;
            }
            if slot.cooldown > 0 {
                slot.cooldown -= 1;
                live += 1;
                continue;
            }
            let system_index = slot.system;
            let attempt_index = slot.attempts.saturating_sub(1);
            let batch = {
                let Slot { run, next_swap, .. } = slot;
                let Some(run) = run.as_mut() else { continue };
                catch_unwind(AssertUnwindSafe(|| {
                    step_batch(run, system_index, next_swap, ctx, attempt_index)
                }))
            };
            match batch {
                Ok(Ok(true)) => {
                    let events = slot.run.as_ref().map_or(0, SimRun::events);
                    if ctx.journal.is_some()
                        && events.saturating_sub(slot.last_epoch) >= ctx.config.checkpoint_every
                    {
                        ctx.journal_epoch(slot, events)?;
                        slot.last_epoch = events;
                    }
                    live += 1;
                }
                Ok(Ok(false)) => {
                    if let Some(run) = slot.run.take() {
                        let record = SystemRecord {
                            system: slot.system,
                            attempts: slot.attempts,
                            seed_attempt: slot.seed_attempt,
                            status: SystemStatus::Served(run.into_report()),
                        };
                        ctx.with_journal(|j| j.settled(&record))?;
                        slot.record = Some(record);
                    }
                }
                Ok(Err(source)) => {
                    ctx.fail(slot, ErrorClass::Engine, source.to_string())?;
                    if slot.run.is_some() {
                        live += 1;
                    }
                }
                Err(payload) => {
                    ctx.fail(slot, ErrorClass::Panic, panic_message(payload.as_ref()))?;
                    if slot.run.is_some() {
                        live += 1;
                    }
                }
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.record.ok_or(ServeError::ShardPanic { shard }))
        .collect()
}

/// Steps one system for up to `batch_events` events, applying due swaps
/// and armed faults *before* each step so every decision keys off the
/// system's own event counter — identical at any shard count, batch grain
/// or replay. Returns `Ok(false)` once the run finishes.
fn step_batch(
    run: &mut SimRun<PoissonWorkload, CompiledController>,
    system: usize,
    next_swap: &mut usize,
    ctx: &ShardCtx<'_>,
    attempt_index: u32,
) -> Result<bool, SimError> {
    for _ in 0..ctx.config.batch_events {
        // The swap barrier: entry (at, policy) applies once this system
        // has processed `at` events, so event `at + 1` and everything
        // after consult the new policy.
        while let Some((at_events, policy)) = ctx.schedule.get(*next_swap) {
            if run.events() < *at_events {
                break;
            }
            run.controller_mut().swap_policy(Arc::clone(policy));
            *next_swap += 1;
        }
        let upcoming = run.events().saturating_add(1);
        if ctx
            .config
            .faults
            .panic_armed(system, upcoming, attempt_index)
        {
            // dpm-lint: allow(no_panic, reason = "deterministic fault injection: this panic exists so tests and chaos smokes can exercise the supervisor's catch_unwind isolation")
            panic!("injected panic in system {system} before event {upcoming}");
        }
        if ctx
            .config
            .faults
            .error_armed(system, upcoming, attempt_index)
        {
            return Err(SimError::InvalidConfig {
                reason: format!("injected engine error in system {system} before event {upcoming}"),
            });
        }
        if !run.step()? || run.is_finished() {
            return Ok(false);
        }
    }
    Ok(!run.is_finished())
}

/// Renders a caught panic payload for the quarantine record.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

/// Folds one report into the running FNV-1a fleet fingerprint: every
/// statistic a report exposes, bit-exact (floats by their IEEE bits).
fn absorb_fingerprint(hash: &mut u64, report: &SimReport) {
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            *hash ^= u64::from(byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(report.seed());
    eat(report.duration().to_bits());
    eat(report.total_energy().to_bits());
    eat(report.switch_energy().to_bits());
    eat(report.average_queue_length().to_bits());
    eat(report.average_waiting_time().to_bits());
    eat(report.arrivals());
    eat(report.completed());
    eat(report.lost());
    eat(report.switches());
    eat(report.consultations());
    eat(report.events());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::{PmPolicy, SpModel, SrModel};
    use dpm_harness::artifact;

    fn system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    fn compiled(system: &PmSystem) -> CompiledPolicy {
        CompiledPolicy::compile(system, &PmPolicy::greedy(system).unwrap()).unwrap()
    }

    #[test]
    fn shard_count_is_bit_invariant() {
        let system = system();
        let policy = compiled(&system);
        let outcome = |shards| {
            serve(
                &system,
                &policy,
                &ServeConfig::new(7)
                    .systems(12)
                    .requests_per_system(400)
                    .shards(shards),
            )
            .unwrap()
        };
        let serial = outcome(1);
        assert_eq!(serial.merged().runs(), 12);
        assert_eq!(serial.served(), 12);
        assert!(serial.merged().events() > 0);
        for shards in [2, 3, 5, 12] {
            let sharded = outcome(shards);
            assert_eq!(
                sharded.fingerprint(),
                serial.fingerprint(),
                "{shards} shards"
            );
            assert_eq!(sharded.merged(), serial.merged(), "{shards} shards");
            assert_eq!(sharded.records(), serial.records(), "{shards} shards");
            // The canonical artifacts diff clean at tolerance 0 once the
            // volatile provenance (which records the shard count) is out.
            assert_eq!(
                artifact::diff(&sharded.to_json(), &serial.to_json(), 0.0),
                Vec::<String>::new()
            );
        }
    }

    #[test]
    fn batch_grain_does_not_change_results() {
        let system = system();
        let policy = compiled(&system);
        let outcome = |batch| {
            serve(
                &system,
                &policy,
                &ServeConfig::new(3)
                    .systems(6)
                    .requests_per_system(300)
                    .shards(2)
                    .batch_events(batch),
            )
            .unwrap()
        };
        let base = outcome(256);
        for batch in [1, 7, 1024] {
            assert_eq!(outcome(batch), base, "batch {batch}");
        }
    }

    #[test]
    fn policy_lookups_count_every_consultation() {
        let system = system();
        let policy = compiled(&system);
        let outcome = serve(
            &system,
            &policy,
            &ServeConfig::new(11).systems(4).requests_per_system(200),
        )
        .unwrap();
        // The compiled controller is consulted exactly once per engine
        // consultation; the merged lookup count rides on that statistic.
        assert!(outcome.merged().consultations() >= outcome.merged().events());
    }

    #[test]
    fn degenerate_configs_are_rejected_with_typed_errors() {
        let system = system();
        let policy = compiled(&system);
        let check =
            |config: ServeConfig, expected: ConfigError| match serve(&system, &policy, &config) {
                Err(ServeError::Config(e)) => assert_eq!(e, expected),
                other => panic!("expected Config({expected:?}), got {other:?}"),
            };
        check(ServeConfig::new(1).systems(0), ConfigError::NoSystems);
        check(ServeConfig::new(1).shards(0), ConfigError::NoShards);
        check(
            ServeConfig::new(1).batch_events(0),
            ConfigError::NoBatchEvents,
        );
        // More shards than systems used to clamp silently; it now fails
        // loudly so fleet sizing mistakes surface.
        check(
            ServeConfig::new(1).systems(3).shards(8),
            ConfigError::ShardsExceedSystems {
                shards: 8,
                systems: 3,
            },
        );
    }

    #[test]
    fn outcome_artifact_has_the_documented_shape() {
        let system = system();
        let policy = compiled(&system);
        let outcome = serve(
            &system,
            &policy,
            &ServeConfig::new(5).systems(3).requests_per_system(100),
        )
        .unwrap();
        let doc = outcome.to_json();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some(SERVE_OUTCOME_FORMAT)
        );
        for key in ["root_seed", "systems", "requests_per_system", "fingerprint"] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        let totals = doc.get("totals").unwrap();
        for key in ["events", "policy_lookups", "sim_seconds", "energy_joules"] {
            assert!(totals.get(key).is_some(), "missing totals.{key}");
        }
        let supervision = doc.get("supervision").unwrap();
        for key in ["served", "quarantined", "retried", "incidents", "swaps"] {
            assert!(supervision.get(key).is_some(), "missing supervision.{key}");
        }
        // A clean run reports no incidents and full service.
        assert_eq!(supervision.get("served"), Some(&Json::Int(3)));
        assert_eq!(supervision.get("quarantined"), Some(&Json::Int(0)));
        // Round-trips through the canonical renderer.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }
}
