use std::error::Error;
use std::fmt;

use dpm_harness::HarnessError;
use dpm_sim::SimError;

/// Classification of a supervised system failure, driving the retry
/// strategy (see `crate::RetryPolicy`):
///
/// * [`ErrorClass::Panic`] — the stepping closure unwound. Treated as
///   transient/environmental: the system is rebuilt and **replayed with
///   the same seed**, so a recovered system's report is bit-identical to
///   a never-faulted run.
/// * [`ErrorClass::Engine`] — [`dpm_sim::SimRun::step`] returned a
///   [`SimError`]. The engine is deterministic in its seed, so replaying
///   the same stream would fail identically; retries draw a **fresh seed**
///   from the `SERVE_RETRY_TAG` domain
///   (`dpm_harness::seed::derive_serve_attempt_seed`).
/// * [`ErrorClass::Setup`] — the system could not even be constructed
///   (workload or simulator rejected the configuration). Deterministic in
///   the configuration alone, so there is no retry: the system is
///   quarantined immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// A panic unwound out of the stepping closure.
    Panic,
    /// The simulation engine returned an error mid-run.
    Engine,
    /// System construction failed before the first event.
    Setup,
}

impl ErrorClass {
    /// Stable lower-case name used in journals and artifacts.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorClass::Panic => "panic",
            ErrorClass::Engine => "engine",
            ErrorClass::Setup => "setup",
        }
    }

    /// Inverse of [`ErrorClass::as_str`].
    #[must_use]
    pub fn parse(name: &str) -> Option<ErrorClass> {
        match name {
            "panic" => Some(ErrorClass::Panic),
            "engine" => Some(ErrorClass::Engine),
            "setup" => Some(ErrorClass::Setup),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rejected `ServeConfig` parameter — typed, so callers can match on
/// the exact violation instead of parsing a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `systems == 0`: an empty fleet serves nothing.
    NoSystems,
    /// `shards == 0`: no worker threads to run on.
    NoShards,
    /// `batch_events == 0`: the round-robin scheduler would never step.
    NoBatchEvents,
    /// More shards than systems — some shards would own no work. The
    /// runtime used to clamp this silently; it is now an error so fleet
    /// sizing mistakes fail loudly.
    ShardsExceedSystems {
        /// Requested shard count.
        shards: usize,
        /// Fleet size.
        systems: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoSystems => write!(f, "systems must be positive"),
            ConfigError::NoShards => write!(f, "shards must be positive"),
            ConfigError::NoBatchEvents => write!(f, "batch_events must be positive"),
            ConfigError::ShardsExceedSystems { shards, systems } => {
                write!(
                    f,
                    "{shards} shards exceed the {systems}-system fleet (some shards would be empty)"
                )
            }
        }
    }
}

/// Error type for policy compilation and the sharded serving runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The system has more modes than the compiled action encoding (one
    /// byte per state) can address.
    TooManyModes {
        /// Modes in the provider.
        n_modes: usize,
    },
    /// The policy does not fit the system it is being compiled against.
    PolicyMismatch {
        /// What was inconsistent.
        reason: String,
    },
    /// A serve configuration parameter was rejected.
    Config(ConfigError),
    /// A serialized compiled-policy artifact could not be decoded.
    Format {
        /// What was malformed.
        reason: String,
    },
    /// A simulated system failed inside a shard.
    Sim {
        /// Index of the failing system in the fleet.
        system: usize,
        /// The underlying engine error.
        source: SimError,
    },
    /// A shard thread panicked outside the supervised stepping closure (a
    /// bug — per-system panics are isolated and retried).
    ShardPanic {
        /// Index of the shard.
        shard: usize,
    },
    /// A fleet checkpoint journal could not be read, validated against
    /// the configuration, or written.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
    /// Artifact serialization failed.
    Harness(HarnessError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::TooManyModes { n_modes } => {
                write!(
                    f,
                    "cannot compile: {n_modes} modes exceed the one-byte action encoding"
                )
            }
            ServeError::PolicyMismatch { reason } => {
                write!(f, "policy does not match the system: {reason}")
            }
            ServeError::Config(e) => write!(f, "invalid serve configuration: {e}"),
            ServeError::Format { reason } => {
                write!(f, "malformed compiled-policy artifact: {reason}")
            }
            ServeError::Sim { system, source } => {
                write!(f, "system {system} failed: {source}")
            }
            ServeError::ShardPanic { shard } => write!(f, "shard {shard} panicked"),
            ServeError::Checkpoint { reason } => {
                write!(f, "fleet checkpoint journal: {reason}")
            }
            ServeError::Harness(e) => write!(f, "artifact failure: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sim { source, .. } => Some(source),
            ServeError::Harness(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HarnessError> for ServeError {
    fn from(e: HarnessError) -> Self {
        ServeError::Harness(e)
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ServeError::TooManyModes { n_modes: 300 }
            .to_string()
            .contains("300"));
        let e = ServeError::Sim {
            system: 4,
            source: SimError::EventBudgetExhausted { events: 9 },
        };
        assert!(e.to_string().contains("system 4"));
        assert!(e.source().is_some());
        assert!(ServeError::Checkpoint {
            reason: "torn".to_owned()
        }
        .to_string()
        .contains("torn"));
    }

    #[test]
    fn config_errors_are_typed_and_display() {
        let e = ServeError::from(ConfigError::ShardsExceedSystems {
            shards: 8,
            systems: 3,
        });
        assert!(matches!(
            e,
            ServeError::Config(ConfigError::ShardsExceedSystems {
                shards: 8,
                systems: 3
            })
        ));
        assert!(e.to_string().contains("8 shards"));
        for c in [
            ConfigError::NoSystems,
            ConfigError::NoShards,
            ConfigError::NoBatchEvents,
        ] {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn error_classes_round_trip_their_names() {
        for class in [ErrorClass::Panic, ErrorClass::Engine, ErrorClass::Setup] {
            assert_eq!(ErrorClass::parse(class.as_str()), Some(class));
            assert_eq!(class.to_string(), class.as_str());
        }
        assert_eq!(ErrorClass::parse("cosmic-ray"), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
