use std::error::Error;
use std::fmt;

use dpm_harness::HarnessError;
use dpm_sim::SimError;

/// Error type for policy compilation and the sharded serving runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The system has more modes than the compiled action encoding (one
    /// byte per state) can address.
    TooManyModes {
        /// Modes in the provider.
        n_modes: usize,
    },
    /// The policy does not fit the system it is being compiled against.
    PolicyMismatch {
        /// What was inconsistent.
        reason: String,
    },
    /// A serve configuration parameter was rejected.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A serialized compiled-policy artifact could not be decoded.
    Format {
        /// What was malformed.
        reason: String,
    },
    /// A simulated system failed inside a shard.
    Sim {
        /// Index of the failing system in the fleet.
        system: usize,
        /// The underlying engine error.
        source: SimError,
    },
    /// A shard thread panicked (a bug — shard bodies are panic-free).
    ShardPanic {
        /// Index of the shard.
        shard: usize,
    },
    /// Artifact serialization failed.
    Harness(HarnessError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::TooManyModes { n_modes } => {
                write!(
                    f,
                    "cannot compile: {n_modes} modes exceed the one-byte action encoding"
                )
            }
            ServeError::PolicyMismatch { reason } => {
                write!(f, "policy does not match the system: {reason}")
            }
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid serve configuration: {reason}")
            }
            ServeError::Format { reason } => {
                write!(f, "malformed compiled-policy artifact: {reason}")
            }
            ServeError::Sim { system, source } => {
                write!(f, "system {system} failed: {source}")
            }
            ServeError::ShardPanic { shard } => write!(f, "shard {shard} panicked"),
            ServeError::Harness(e) => write!(f, "artifact failure: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sim { source, .. } => Some(source),
            ServeError::Harness(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HarnessError> for ServeError {
    fn from(e: HarnessError) -> Self {
        ServeError::Harness(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ServeError::TooManyModes { n_modes: 300 }
            .to_string()
            .contains("300"));
        let e = ServeError::Sim {
            system: 4,
            source: SimError::EventBudgetExhausted { events: 9 },
        };
        assert!(e.to_string().contains("system 4"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
