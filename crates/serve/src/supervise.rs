//! Supervision vocabulary for the serving runtime: per-error-class retry
//! budgets with deterministic logical backoff, deterministic fault
//! injection, the epoch-coordinated hot-swap schedule, and the per-system
//! status records a supervised run reports.
//!
//! Everything here is a pure function of fleet indices, event counts and
//! attempt numbers — never of wall clock or thread scheduling — so a
//! supervised run stays bit-identical at any shard count and across
//! kill/resume cycles.

use dpm_core::PmPolicy;
use dpm_sim::SimReport;

use crate::{CompiledPolicy, ErrorClass};

/// Per-error-class retry budgets and the logical backoff schedule.
///
/// *Budgets* cap the number of attempts (first try included) a system may
/// consume before it is quarantined; each [`ErrorClass`] has its own cap
/// because each class has a different recovery story (see [`ErrorClass`]).
/// *Backoff* is logical, not temporal: after a failure the system skips a
/// number of round-robin scheduling visits that doubles per consecutive
/// failure — deterministic, wall-clock-free, and (because per-system runs
/// are interleaving-invariant) entirely without effect on the recovered
/// system's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    panic_attempts: u32,
    engine_attempts: u32,
    backoff_base: u32,
    backoff_cap: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

impl RetryPolicy {
    /// Defaults: 3 attempts for panics, 2 for engine errors, backoff of
    /// 4 visits doubling up to 64.
    #[must_use]
    pub fn new() -> Self {
        RetryPolicy {
            panic_attempts: 3,
            engine_attempts: 2,
            backoff_base: 4,
            backoff_cap: 64,
        }
    }

    /// Sets the attempt budget for panic-class failures (min 1).
    #[must_use]
    pub fn panic_attempts(mut self, n: u32) -> Self {
        self.panic_attempts = n.max(1);
        self
    }

    /// Sets the attempt budget for engine-class failures (min 1).
    #[must_use]
    pub fn engine_attempts(mut self, n: u32) -> Self {
        self.engine_attempts = n.max(1);
        self
    }

    /// Sets the backoff schedule: `base` visits skipped after the first
    /// failure, doubling per consecutive failure, capped at `cap`.
    #[must_use]
    pub fn backoff(mut self, base: u32, cap: u32) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap.max(base);
        self
    }

    /// The attempt budget for one failure class. Setup failures get no
    /// retry: they are deterministic in the configuration alone.
    #[must_use]
    pub fn budget(&self, class: ErrorClass) -> u32 {
        match class {
            ErrorClass::Panic => self.panic_attempts,
            ErrorClass::Engine => self.engine_attempts,
            ErrorClass::Setup => 1,
        }
    }

    /// Scheduling visits to skip after the `failures`-th consecutive
    /// failure (1-based): `base << (failures - 1)`, capped.
    #[must_use]
    pub fn backoff_visits(&self, failures: u32) -> u64 {
        if failures == 0 {
            return 0;
        }
        let shift = (failures - 1).min(16);
        (u64::from(self.backoff_base) << shift).min(u64::from(self.backoff_cap))
    }
}

/// One armed fault: sabotage `system` just before it processes event
/// `events`, on its first `attempts` attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultSite {
    system: usize,
    events: u64,
    attempts: u32,
}

/// Deterministic fault injection for the serving runtime — the serve
/// twin of `dpm_harness`'s `FaultPlan`, keyed by `(system, event count,
/// attempt)` instead of task index so every recovery path of the
/// supervisor can be exercised from tests and CI smokes.
///
/// Faults fire *inside* the supervised stepping closure, before the
/// engine processes the armed event, so the injected failure is
/// indistinguishable from an organic one at the same point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    panics: Vec<FaultSite>,
    errors: Vec<FaultSite>,
    setup_failures: Vec<usize>,
}

impl ServeFaultPlan {
    /// An empty plan: no faults.
    #[must_use]
    pub fn new() -> Self {
        ServeFaultPlan::default()
    }

    /// Arms a panic in `system` just before event `events`, on its first
    /// `attempts` attempts (`u32::MAX` = every attempt).
    #[must_use]
    pub fn panic_at(mut self, system: usize, events: u64, attempts: u32) -> Self {
        self.panics.push(FaultSite {
            system,
            events,
            attempts,
        });
        self
    }

    /// Arms an engine error in `system` just before event `events`, on
    /// its first `attempts` attempts (`u32::MAX` = every attempt).
    #[must_use]
    pub fn error_at(mut self, system: usize, events: u64, attempts: u32) -> Self {
        self.errors.push(FaultSite {
            system,
            events,
            attempts,
        });
        self
    }

    /// Arms a construction failure for `system`: every attempt to build
    /// its run fails (setup failures are never retried).
    #[must_use]
    pub fn setup_failure(mut self, system: usize) -> Self {
        self.setup_failures.push(system);
        self
    }

    /// True if the plan holds no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty() && self.errors.is_empty() && self.setup_failures.is_empty()
    }

    /// Should a panic fire before `system` processes event `events` on
    /// 0-based attempt `attempt`?
    #[must_use]
    pub(crate) fn panic_armed(&self, system: usize, events: u64, attempt: u32) -> bool {
        armed(&self.panics, system, events, attempt)
    }

    /// Should an engine error fire before `system` processes event
    /// `events` on 0-based attempt `attempt`?
    #[must_use]
    pub(crate) fn error_armed(&self, system: usize, events: u64, attempt: u32) -> bool {
        armed(&self.errors, system, events, attempt)
    }

    /// Should constructing `system` fail?
    #[must_use]
    pub(crate) fn setup_armed(&self, system: usize) -> bool {
        self.setup_failures.contains(&system)
    }
}

fn armed(sites: &[FaultSite], system: usize, events: u64, attempt: u32) -> bool {
    sites
        .iter()
        .any(|s| s.system == system && s.events == events && attempt < s.attempts)
}

/// One scheduled hot swap: replace the fleet's shared policy with
/// `policy` once a system's own event counter reaches `at_events`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SwapEntry {
    pub(crate) at_events: u64,
    pub(crate) policy: CompiledPolicy,
    pub(crate) table: Option<PmPolicy>,
}

/// A schedule of epoch-coordinated hot policy swaps.
///
/// Each entry names a deterministic **event-count barrier**: a system
/// consults the old policy for its first `at_events` events and the new
/// one from event `at_events + 1` on. The barrier is per-system (each
/// system's own counter), so the swap point is identical at every shard
/// count and across kill/resume replays.
///
/// Incoming artifacts are validated before the fleet starts — shape
/// revalidation against the served system plus, for entries added with
/// [`SwapPlan::swap_at_checked`], a compiled==table spot-check. Invalid
/// entries are **rejected without disturbing the fleet**: the run
/// proceeds under the surviving schedule and the rejection (with reason)
/// is recorded on the outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwapPlan {
    pub(crate) entries: Vec<SwapEntry>,
}

impl SwapPlan {
    /// An empty schedule: never swap.
    #[must_use]
    pub fn new() -> Self {
        SwapPlan::default()
    }

    /// Schedules `policy` to take over at the `at_events` barrier.
    #[must_use]
    pub fn swap_at(mut self, at_events: u64, policy: CompiledPolicy) -> Self {
        self.entries.push(SwapEntry {
            at_events,
            policy,
            table: None,
        });
        self
    }

    /// Schedules `policy` with its source `table` attached: validation
    /// additionally spot-checks that the compiled artifact answers
    /// exactly like the table on every state.
    #[must_use]
    pub fn swap_at_checked(
        mut self,
        at_events: u64,
        policy: CompiledPolicy,
        table: PmPolicy,
    ) -> Self {
        self.entries.push(SwapEntry {
            at_events,
            policy,
            table: Some(table),
        });
        self
    }

    /// True if no swaps are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Validation verdict for one scheduled swap, in plan order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapOutcome {
    pub(crate) at_events: u64,
    pub(crate) accepted: bool,
    pub(crate) reason: Option<String>,
}

impl SwapOutcome {
    /// The event-count barrier the entry was scheduled for.
    #[must_use]
    pub fn at_events(&self) -> u64 {
        self.at_events
    }

    /// True if the artifact passed validation and entered the schedule.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.accepted
    }

    /// Why the artifact was rejected, if it was.
    #[must_use]
    pub fn reason(&self) -> Option<&str> {
        self.reason.as_deref()
    }
}

/// Final status of one supervised system.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemStatus {
    /// The system ran to completion (possibly after retries).
    Served(SimReport),
    /// The system exhausted its retry budget and was excluded from the
    /// merged totals and the fleet fingerprint.
    Quarantined {
        /// Class of the final failure.
        class: ErrorClass,
        /// Message of the final failure.
        error: String,
    },
}

/// Per-system supervision record carried on the serve outcome: which
/// attempt finally served (or quarantined) the system, and under which
/// seed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemRecord {
    pub(crate) system: usize,
    pub(crate) attempts: u32,
    pub(crate) seed_attempt: u32,
    pub(crate) status: SystemStatus,
}

impl SystemRecord {
    /// Fleet index of the system.
    #[must_use]
    pub fn system(&self) -> usize {
        self.system
    }

    /// Attempts consumed (1 = served first try).
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Index into the retry-seed sequence of the final attempt: 0 means
    /// the original `derive_serve_seed` stream (panic-class retries
    /// replay it), engine-class retries advance it.
    #[must_use]
    pub fn seed_attempt(&self) -> u32 {
        self.seed_attempt
    }

    /// Final status.
    #[must_use]
    pub fn status(&self) -> &SystemStatus {
        &self.status
    }

    /// The report, when the system was served.
    #[must_use]
    pub fn report(&self) -> Option<&SimReport> {
        match &self.status {
            SystemStatus::Served(report) => Some(report),
            SystemStatus::Quarantined { .. } => None,
        }
    }

    /// True when the system was served (not quarantined).
    #[must_use]
    pub fn is_served(&self) -> bool {
        matches!(self.status, SystemStatus::Served(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_per_class_and_setup_never_retries() {
        let policy = RetryPolicy::new().panic_attempts(5).engine_attempts(3);
        assert_eq!(policy.budget(ErrorClass::Panic), 5);
        assert_eq!(policy.budget(ErrorClass::Engine), 3);
        assert_eq!(policy.budget(ErrorClass::Setup), 1);
        // Budgets can never drop below one attempt.
        assert_eq!(
            RetryPolicy::new()
                .panic_attempts(0)
                .budget(ErrorClass::Panic),
            1
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy::new().backoff(4, 64);
        assert_eq!(policy.backoff_visits(0), 0);
        assert_eq!(policy.backoff_visits(1), 4);
        assert_eq!(policy.backoff_visits(2), 8);
        assert_eq!(policy.backoff_visits(3), 16);
        assert_eq!(policy.backoff_visits(5), 64);
        assert_eq!(policy.backoff_visits(40), 64, "capped, no overflow");
        // A zero base disables backoff entirely.
        assert_eq!(RetryPolicy::new().backoff(0, 0).backoff_visits(3), 0);
    }

    #[test]
    fn fault_sites_arm_by_system_event_and_attempt() {
        let plan = ServeFaultPlan::new()
            .panic_at(2, 100, 1)
            .error_at(3, 50, u32::MAX)
            .setup_failure(4);
        assert!(plan.panic_armed(2, 100, 0));
        assert!(!plan.panic_armed(2, 100, 1), "attempt past the budget");
        assert!(!plan.panic_armed(2, 99, 0), "different event");
        assert!(!plan.panic_armed(1, 100, 0), "different system");
        assert!(plan.error_armed(3, 50, 7), "max arms every attempt");
        assert!(plan.setup_armed(4));
        assert!(!plan.setup_armed(2));
        assert!(!plan.is_empty());
        assert!(ServeFaultPlan::new().is_empty());
    }
}
