//! The JSONL fleet checkpoint journal behind `serve()`'s kill-and-resume
//! guarantee.
//!
//! A journal is one header line identifying the fleet (format tag, root
//! seed, fleet size, per-system workload), then one compact JSON line per
//! supervision event, appended and flushed as it happens:
//!
//! * `epoch` — a system reached event count `events` on attempt
//!   `attempts` under seed stream `seed_attempt`. Epochs are *logical
//!   checkpoints*: because the engine is deterministic in its seed,
//!   restore is replay — rebuilding the run and re-stepping re-derives
//!   the journaled state bit-exactly, so nothing beyond the counters
//!   needs persisting.
//! * `done` — the system finished; the full bit-exact report rides on
//!   the record (floats in Rust's shortest round-trip form, which the
//!   canonical JSON layer parses back to identical bits).
//! * `quarantined` — the system exhausted its retry budget.
//! * `settled_run` — compaction: when a resumed run rewrites its
//!   journal, each maximal run of contiguous already-settled systems
//!   becomes one range record (the fleet twin of the harness journal's
//!   `run_start` records), so a long resume chain costs `O(gaps)` writes.
//!
//! Loading tolerates exactly one torn *trailing* line — the signature of
//! a process killed mid-append. Interior corruption, header mismatches
//! and seed-derivation mismatches are hard errors: silently dropping
//! entries would break the bit-identical resume guarantee.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;

use dpm_harness::{seed::derive_serve_attempt_seed, Json};
use dpm_sim::{ReportParts, SimReport};

use crate::{ErrorClass, ServeError, SystemRecord, SystemStatus};

/// Value of the `format` field on the journal's header line.
pub(crate) const JOURNAL_FORMAT: &str = "dpm-serve-checkpoint/v1";

fn checkpoint_err(reason: impl Into<String>) -> ServeError {
    ServeError::Checkpoint {
        reason: reason.into(),
    }
}

fn io_err(context: &str, e: &std::io::Error) -> ServeError {
    checkpoint_err(format!("{context}: {e}"))
}

/// An open fleet journal being written by a supervised run.
#[derive(Debug)]
pub(crate) struct FleetJournal {
    file: File,
}

impl FleetJournal {
    /// Creates (truncating) the journal at `path` and writes the fleet
    /// header.
    pub(crate) fn create(
        path: &Path,
        root_seed: u64,
        systems: usize,
        requests_per_system: u64,
    ) -> Result<FleetJournal, ServeError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| io_err("creating journal directory", &e))?;
            }
        }
        let mut file = File::create(path).map_err(|e| io_err("creating journal", &e))?;
        let mut header = Json::object();
        header.set("format", JOURNAL_FORMAT);
        header.set("root_seed", root_seed);
        header.set("systems", systems);
        header.set("requests_per_system", requests_per_system);
        writeln!(file, "{}", header.render_compact()).map_err(|e| io_err("writing header", &e))?;
        file.flush().map_err(|e| io_err("flushing header", &e))?;
        Ok(FleetJournal { file })
    }

    fn line(&mut self, doc: &Json) -> Result<(), ServeError> {
        writeln!(self.file, "{}", doc.render_compact())
            .map_err(|e| io_err("appending to journal", &e))?;
        self.file
            .flush()
            .map_err(|e| io_err("flushing journal", &e))
    }

    /// Appends one epoch record and flushes, so the entry survives a kill
    /// immediately after.
    pub(crate) fn epoch(
        &mut self,
        system: usize,
        events: u64,
        attempts: u32,
        seed_attempt: u32,
        seed: u64,
    ) -> Result<(), ServeError> {
        let mut doc = Json::object();
        doc.set("kind", "epoch");
        doc.set("system", system);
        doc.set("events", events);
        doc.set("attempts", u64::from(attempts));
        doc.set("seed_attempt", u64::from(seed_attempt));
        doc.set("seed", seed);
        self.line(&doc)
    }

    /// Appends one settled (done or quarantined) system and flushes.
    pub(crate) fn settled(&mut self, record: &SystemRecord) -> Result<(), ServeError> {
        self.line(&record_to_json(record))
    }

    /// Appends one compacted range record covering the contiguous,
    /// already-settled systems `start, start + 1, …` — one line, one
    /// flush, however many systems the run spans.
    pub(crate) fn settled_run(
        &mut self,
        start: usize,
        records: &[&SystemRecord],
    ) -> Result<(), ServeError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut doc = Json::object();
        doc.set("kind", "settled_run");
        doc.set("start", start);
        doc.set(
            "entries",
            Json::Array(
                records
                    .iter()
                    .map(|r| {
                        let mut body = record_to_json(r);
                        // The system index is implied by position.
                        if let Json::Object(map) = &mut body {
                            map.remove("system");
                        }
                        body
                    })
                    .collect(),
            ),
        );
        self.line(&doc)
    }
}

fn record_to_json(record: &SystemRecord) -> Json {
    let mut doc = Json::object();
    doc.set("system", record.system);
    doc.set("attempts", u64::from(record.attempts));
    doc.set("seed_attempt", u64::from(record.seed_attempt));
    match &record.status {
        SystemStatus::Served(report) => {
            doc.set("kind", "done");
            doc.set("report", report_to_json(report));
        }
        SystemStatus::Quarantined { class, error } => {
            doc.set("kind", "quarantined");
            doc.set("class", class.as_str());
            doc.set("error", error.clone());
        }
    }
    doc
}

fn report_to_json(report: &SimReport) -> Json {
    let parts = report.parts();
    let opt = |v: Option<f64>| v.map_or(Json::Null, Json::num);
    let mut doc = Json::object();
    doc.set("policy", parts.policy);
    doc.set("seed", parts.seed);
    doc.set("duration", Json::num(parts.duration));
    doc.set("occupancy_energy", Json::num(parts.occupancy_energy));
    doc.set("switch_energy", Json::num(parts.switch_energy));
    doc.set("queue_integral", Json::num(parts.queue_integral));
    doc.set("arrivals", parts.arrivals);
    doc.set("completed", parts.completed);
    doc.set("lost", parts.lost);
    doc.set("switches", parts.switches);
    doc.set("sojourn_sum", Json::num(parts.sojourn_sum));
    doc.set("consultations", parts.consultations);
    doc.set("events", parts.events);
    doc.set("power_ci", opt(parts.power_ci));
    doc.set("sojourn_ci", opt(parts.sojourn_ci));
    doc
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    match doc.get(key) {
        Some(&Json::Int(v)) if v >= 0 && v <= i128::from(u64::MAX) => Ok(v as u64),
        other => Err(format!(
            "{key}: expected a non-negative integer, got {other:?}"
        )),
    }
}

fn get_u32(doc: &Json, key: &str) -> Result<u32, String> {
    let v = get_u64(doc, key)?;
    u32::try_from(v).map_err(|_| format!("{key}: {v} does not fit u32"))
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{key}: expected a number"))
}

fn get_opt_f64(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        Some(Json::Null) => Ok(None),
        _ => get_f64(doc, key).map(Some),
    }
}

fn get_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{key}: expected a string"))
}

fn report_from_json(doc: &Json) -> Result<SimReport, String> {
    Ok(SimReport::from_parts(ReportParts {
        policy: get_str(doc, "policy")?,
        seed: get_u64(doc, "seed")?,
        duration: get_f64(doc, "duration")?,
        occupancy_energy: get_f64(doc, "occupancy_energy")?,
        switch_energy: get_f64(doc, "switch_energy")?,
        queue_integral: get_f64(doc, "queue_integral")?,
        arrivals: get_u64(doc, "arrivals")?,
        completed: get_u64(doc, "completed")?,
        lost: get_u64(doc, "lost")?,
        switches: get_u64(doc, "switches")?,
        sojourn_sum: get_f64(doc, "sojourn_sum")?,
        consultations: get_u64(doc, "consultations")?,
        events: get_u64(doc, "events")?,
        power_ci: get_opt_f64(doc, "power_ci")?,
        sojourn_ci: get_opt_f64(doc, "sojourn_ci")?,
    }))
}

/// What the journal knows about one system.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Restored {
    /// Never journaled: start from scratch.
    Fresh,
    /// Mid-flight at the kill: restart the attempt counters and replay.
    InFlight {
        /// Attempts started (≥ 1).
        attempts: u32,
        /// Seed-stream index of the in-flight attempt.
        seed_attempt: u32,
        /// Journaled event-count progress (informational: restore is
        /// replay from event zero, which re-derives this state exactly).
        events: u64,
    },
    /// Settled (served or quarantined): carry the record forward.
    Settled(SystemRecord),
}

/// Parses one record line into `(system, restored)` updates.
fn interpret_line(
    doc: &Json,
    root_seed: u64,
    systems: usize,
) -> Result<Vec<(usize, Restored)>, String> {
    let kind = get_str(doc, "kind")?;
    let one = |system: usize, restored: Restored| -> Result<Vec<(usize, Restored)>, String> {
        if system >= systems {
            return Err(format!(
                "system {system} outside the {systems}-system fleet"
            ));
        }
        Ok(vec![(system, restored)])
    };
    match kind.as_str() {
        "epoch" => {
            let system = usize::try_from(get_u64(doc, "system")?)
                .map_err(|_| "system: does not fit usize".to_owned())?;
            let attempts = get_u32(doc, "attempts")?;
            let seed_attempt = get_u32(doc, "seed_attempt")?;
            let seed = get_u64(doc, "seed")?;
            let events = get_u64(doc, "events")?;
            validate_counters(system, attempts, seed_attempt)?;
            let expected = derive_serve_attempt_seed(root_seed, system as u64, seed_attempt);
            if seed != expected {
                return Err(format!(
                    "system {system} epoch seed {seed:#x} does not match derived seed {expected:#x}"
                ));
            }
            one(
                system,
                Restored::InFlight {
                    attempts,
                    seed_attempt,
                    events,
                },
            )
        }
        "done" | "quarantined" => {
            let system = usize::try_from(get_u64(doc, "system")?)
                .map_err(|_| "system: does not fit usize".to_owned())?;
            let record = settled_from_json(doc, &kind, system, root_seed)?;
            one(system, Restored::Settled(record))
        }
        "settled_run" => {
            let start = usize::try_from(get_u64(doc, "start")?)
                .map_err(|_| "start: does not fit usize".to_owned())?;
            let Some(Json::Array(entries)) = doc.get("entries") else {
                return Err("entries: expected an array".to_owned());
            };
            let mut out = Vec::with_capacity(entries.len());
            for (offset, entry) in entries.iter().enumerate() {
                let system = start
                    .checked_add(offset)
                    .ok_or_else(|| "start + offset overflows".to_owned())?;
                if system >= systems {
                    return Err(format!(
                        "system {system} outside the {systems}-system fleet"
                    ));
                }
                let kind = get_str(entry, "kind")?;
                if kind != "done" && kind != "quarantined" {
                    return Err(format!("settled_run entry has kind {kind:?}"));
                }
                let record = settled_from_json(entry, &kind, system, root_seed)?;
                out.push((system, Restored::Settled(record)));
            }
            Ok(out)
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

fn validate_counters(system: usize, attempts: u32, seed_attempt: u32) -> Result<(), String> {
    if attempts == 0 {
        return Err(format!("system {system}: attempts must be at least 1"));
    }
    if seed_attempt >= attempts {
        return Err(format!(
            "system {system}: seed_attempt {seed_attempt} not below attempts {attempts}"
        ));
    }
    Ok(())
}

fn settled_from_json(
    doc: &Json,
    kind: &str,
    system: usize,
    root_seed: u64,
) -> Result<SystemRecord, String> {
    let attempts = get_u32(doc, "attempts")?;
    let seed_attempt = get_u32(doc, "seed_attempt")?;
    validate_counters(system, attempts, seed_attempt)?;
    let status = if kind == "done" {
        let report_doc = doc
            .get("report")
            .ok_or_else(|| "report: missing".to_owned())?;
        let report = report_from_json(report_doc)?;
        let expected = derive_serve_attempt_seed(root_seed, system as u64, seed_attempt);
        if report.seed() != expected {
            return Err(format!(
                "system {system} report seed {:#x} does not match derived seed {expected:#x}",
                report.seed()
            ));
        }
        SystemStatus::Served(report)
    } else {
        let class_name = get_str(doc, "class")?;
        let class = ErrorClass::parse(&class_name)
            .ok_or_else(|| format!("class: unknown error class {class_name:?}"))?;
        SystemStatus::Quarantined {
            class,
            error: get_str(doc, "error")?,
        }
    };
    Ok(SystemRecord {
        system,
        attempts,
        seed_attempt,
        status,
    })
}

/// Loads a fleet journal and restores the per-system state for a resume.
///
/// Later records supersede earlier ones for the same system (an append
/// order the supervisor guarantees), so the last word on each system
/// wins. Exactly one torn trailing line is tolerated.
pub(crate) fn load_fleet(
    path: &Path,
    root_seed: u64,
    systems: usize,
    requests_per_system: u64,
) -> Result<Vec<Restored>, ServeError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| io_err(&format!("reading {}", path.display()), &e))?;
    let mut lines = text.lines();
    let Some(header_line) = lines.next() else {
        return Err(checkpoint_err("journal is empty (no header line)"));
    };
    let header = Json::parse(header_line)
        .map_err(|e| checkpoint_err(format!("unreadable header line: {e}")))?;
    let format = header.get("format").and_then(Json::as_str).unwrap_or("");
    if format != JOURNAL_FORMAT {
        return Err(checkpoint_err(format!(
            "expected format {JOURNAL_FORMAT:?}, got {format:?}"
        )));
    }
    let check = |key: &str, want: u64| -> Result<(), ServeError> {
        let got = get_u64(&header, key).map_err(checkpoint_err)?;
        if got != want {
            return Err(checkpoint_err(format!(
                "journal was written for {key} = {got}, this run has {key} = {want}"
            )));
        }
        Ok(())
    };
    check("root_seed", root_seed)?;
    check("systems", systems as u64)?;
    check("requests_per_system", requests_per_system)?;

    let records: Vec<&str> = lines.collect();
    let mut restored = vec![Restored::Fresh; systems];
    for (index, line) in records.iter().enumerate() {
        let last = index + 1 == records.len();
        let parsed = Json::parse(line)
            .map_err(|e| e.to_string())
            .and_then(|doc| interpret_line(&doc, root_seed, systems));
        match parsed {
            Ok(updates) => {
                for (system, state) in updates {
                    if let Some(slot) = restored.get_mut(system) {
                        *slot = state;
                    }
                }
            }
            // A torn final line is the signature of a kill mid-append:
            // the entry simply was not durable yet, so the system reruns.
            Err(_) if last => break,
            Err(reason) => {
                return Err(checkpoint_err(format!(
                    "corrupt interior record on line {}: {reason}",
                    index + 2
                )));
            }
        }
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_harness::seed::derive_serve_seed;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dpm-serve-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn sample_report(seed: u64) -> SimReport {
        SimReport::from_parts(ReportParts {
            policy: "compiled".to_owned(),
            seed,
            duration: 123.456_789_012_345_67,
            occupancy_energy: 1.0e-3 + 1.0e-17,
            switch_energy: 9.25,
            queue_integral: 88.5,
            arrivals: 400,
            completed: 398,
            lost: 2,
            switches: 41,
            sojourn_sum: 777.125,
            consultations: 1200,
            events: 1500,
            power_ci: Some(0.062_5),
            sojourn_ci: None,
        })
    }

    #[test]
    fn reports_round_trip_bit_exactly_through_record_lines() {
        let report = sample_report(derive_serve_seed(3, 0));
        let record = SystemRecord {
            system: 0,
            attempts: 2,
            seed_attempt: 0,
            status: SystemStatus::Served(report.clone()),
        };
        let doc = record_to_json(&record);
        let reparsed = Json::parse(&doc.render_compact()).unwrap();
        let restored = settled_from_json(&reparsed, "done", 0, 3).unwrap();
        assert_eq!(restored, record);
        assert_eq!(restored.report(), Some(&report));
    }

    #[test]
    fn journal_round_trips_epochs_and_settled_records() {
        let path = scratch("round-trip.jsonl");
        let mut journal = FleetJournal::create(&path, 7, 4, 100).unwrap();
        journal
            .epoch(1, 512, 1, 0, derive_serve_seed(7, 1))
            .unwrap();
        let done = SystemRecord {
            system: 2,
            attempts: 1,
            seed_attempt: 0,
            status: SystemStatus::Served(sample_report(derive_serve_seed(7, 2))),
        };
        journal.settled(&done).unwrap();
        let quarantined = SystemRecord {
            system: 3,
            attempts: 2,
            seed_attempt: 1,
            status: SystemStatus::Quarantined {
                class: ErrorClass::Engine,
                error: "injected".to_owned(),
            },
        };
        journal.settled(&quarantined).unwrap();
        drop(journal);

        let restored = load_fleet(&path, 7, 4, 100).unwrap();
        assert_eq!(restored[0], Restored::Fresh);
        assert_eq!(
            restored[1],
            Restored::InFlight {
                attempts: 1,
                seed_attempt: 0,
                events: 512
            }
        );
        assert_eq!(restored[2], Restored::Settled(done));
        assert_eq!(restored[3], Restored::Settled(quarantined));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compacted_runs_expand_by_position() {
        let path = scratch("compacted.jsonl");
        let mut journal = FleetJournal::create(&path, 9, 3, 50).unwrap();
        let records: Vec<SystemRecord> = (0..2)
            .map(|i| SystemRecord {
                system: i,
                attempts: 1,
                seed_attempt: 0,
                status: SystemStatus::Served(sample_report(derive_serve_seed(9, i as u64))),
            })
            .collect();
        journal
            .settled_run(0, &records.iter().collect::<Vec<_>>())
            .unwrap();
        drop(journal);
        let restored = load_fleet(&path, 9, 3, 50).unwrap();
        assert_eq!(restored[0], Restored::Settled(records[0].clone()));
        assert_eq!(restored[1], Restored::Settled(records[1].clone()));
        assert_eq!(restored[2], Restored::Fresh);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_tolerated_but_interior_corruption_is_fatal() {
        let path = scratch("torn.jsonl");
        let mut journal = FleetJournal::create(&path, 5, 2, 10).unwrap();
        journal.epoch(0, 64, 1, 0, derive_serve_seed(5, 0)).unwrap();
        drop(journal);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"epoch\",\"system\":1,\"eve");
        std::fs::write(&path, &text).unwrap();
        let restored = load_fleet(&path, 5, 2, 10).unwrap();
        assert!(matches!(restored[0], Restored::InFlight { events: 64, .. }));
        assert_eq!(restored[1], Restored::Fresh);

        // The same junk followed by a valid line is interior corruption.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&format!(
            "\n{{\"kind\":\"epoch\",\"system\":0,\"events\":128,\"attempts\":1,\
             \"seed_attempt\":0,\"seed\":{}}}\n",
            derive_serve_seed(5, 0)
        ));
        std::fs::write(&path, &text).unwrap();
        assert!(matches!(
            load_fleet(&path, 5, 2, 10),
            Err(ServeError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_and_seed_mismatches_are_rejected() {
        let path = scratch("mismatch.jsonl");
        let mut journal = FleetJournal::create(&path, 11, 2, 10).unwrap();
        journal
            .epoch(0, 64, 1, 0, derive_serve_seed(11, 0))
            .unwrap();
        drop(journal);
        // Wrong fleet parameters.
        for (root, systems, requests) in [(12, 2, 10), (11, 3, 10), (11, 2, 99)] {
            assert!(matches!(
                load_fleet(&path, root, systems, requests),
                Err(ServeError::Checkpoint { .. })
            ));
        }
        // A tampered seed fails derivation validation (interior line).
        let mut journal = FleetJournal::create(&path, 11, 2, 10).unwrap();
        journal.epoch(0, 64, 1, 0, 0xdead_beef).unwrap();
        journal
            .epoch(1, 64, 1, 0, derive_serve_seed(11, 1))
            .unwrap();
        drop(journal);
        assert!(matches!(
            load_fleet(&path, 11, 2, 10),
            Err(ServeError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
