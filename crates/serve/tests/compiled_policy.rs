//! Property tests: a compiled policy is indistinguishable from its source
//! table over the whole state space of randomly generated systems, and
//! the serialized artifact round-trips bit-for-bit.

use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel, SysState};
use dpm_serve::CompiledPolicy;
use proptest::prelude::*;

/// Random provider: one active mode plus 1–2 inactive modes, fully
/// connected switches with random times and energies.
fn random_provider() -> impl Strategy<Value = SpModel> {
    (
        0.2f64..3.0,                                                // service rate
        1.0f64..50.0,                                               // active power
        prop::collection::vec((0.01f64..2.0, 0.0f64..20.0), 2..=6), // switch (time, energy) pool
        1usize..=2,                                                 // number of inactive modes
        0.01f64..5.0,                                               // inactive power scale
    )
        .prop_map(|(mu, pow_active, switches, n_inactive, pow_scale)| {
            let mut b = SpModel::builder();
            b.mode("active", mu, pow_active);
            for k in 0..n_inactive {
                b.mode(format!("inactive{k}"), 0.0, pow_scale * (k as f64 + 0.1));
            }
            let n = 1 + n_inactive;
            let mut pool = switches.into_iter().cycle();
            for from in 0..n {
                for to in 0..n {
                    if from != to {
                        let (time, energy) = pool.next().expect("cycled pool");
                        b.switch_time(from, to, time)
                            .expect("positive time")
                            .energy(from, to, energy)
                            .expect("non-negative energy");
                    }
                }
            }
            b.build().expect("valid random provider")
        })
}

fn random_system() -> impl Strategy<Value = PmSystem> {
    (random_provider(), 0.05f64..1.5, 2usize..=5).prop_map(|(sp, lambda, capacity)| {
        PmSystem::builder()
            .provider(sp)
            .requestor(SrModel::poisson(lambda).expect("positive rate"))
            .capacity(capacity)
            .build()
            .expect("valid random system")
    })
}

/// A deterministic pseudo-random valid policy: in each state, pick one of
/// the state's legal destinations by a salted index.
fn salted_policy(system: &PmSystem, salt: u64) -> PmPolicy {
    let destinations = (0..system.n_states())
        .map(|i| {
            let dests = system.action_destinations(i);
            dests[(i as u64).wrapping_mul(2654435761).wrapping_add(salt) as usize % dests.len()]
        })
        .collect();
    PmPolicy::new(system, destinations).expect("destinations drawn from the action sets")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_action_pins_the_table_policy_everywhere(
        system in random_system(),
        salt in 0u64..1_000,
    ) {
        let policy = salted_policy(&system, salt);
        let compiled = CompiledPolicy::compile(&system, &policy).expect("compiles");
        prop_assert_eq!(compiled.n_states(), system.n_states());
        // Every state of the space — stable and transfer/instant alike —
        // answers exactly as the source table.
        for i in 0..system.n_states() {
            let state = system.state(i);
            prop_assert_eq!(
                compiled.action(state),
                Some(policy.destination(i)),
                "state {}: {:?}", i, state
            );
            prop_assert_eq!(
                compiled.action(state),
                policy.command(&system, state).ok(),
                "state {}: {:?}", i, state
            );
        }
    }

    #[test]
    fn states_outside_the_space_answer_none(system in random_system()) {
        let policy = PmPolicy::greedy(&system).expect("greedy");
        let compiled = CompiledPolicy::compile(&system, &policy).expect("compiles");
        let q = system.capacity();
        let n = system.provider().n_modes();
        // Out-of-range queue/mode coordinates.
        prop_assert_eq!(compiled.action(SysState::Stable { mode: n, jobs: 0 }), None);
        prop_assert_eq!(compiled.action(SysState::Stable { mode: 0, jobs: q + 1 }), None);
        prop_assert_eq!(compiled.action(SysState::Transfer { mode: 0, departing: 0 }), None);
        prop_assert_eq!(compiled.action(SysState::Transfer { mode: 0, departing: q + 1 }), None);
        // Transfer states of inactive modes are not part of the space.
        for m in system.provider().inactive_modes() {
            for departing in 1..=q {
                prop_assert_eq!(
                    compiled.action(SysState::Transfer { mode: m, departing }),
                    None
                );
            }
        }
    }

    #[test]
    fn serialized_artifacts_round_trip(
        system in random_system(),
        salt in 0u64..1_000,
    ) {
        let policy = salted_policy(&system, salt);
        let compiled = CompiledPolicy::compile(&system, &policy).expect("compiles");
        let doc = compiled.to_json();
        // Struct-level round trip…
        let reloaded = CompiledPolicy::from_json(&doc).expect("well-formed");
        prop_assert_eq!(&reloaded, &compiled);
        // …and byte-level through the canonical renderer.
        let text = doc.render();
        let reparsed = dpm_harness::Json::parse(&text).expect("parses");
        prop_assert_eq!(reparsed.render(), text);
        prop_assert_eq!(CompiledPolicy::from_json(&reparsed).expect("well-formed"), compiled);
    }
}
