//! Supervision-layer tests: per-error-class retry budgets, panic
//! isolation, quarantine, hot policy swaps, and the kill-at-any-point +
//! resume bit-identity guarantee of the fleet checkpoint journal.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
use dpm_harness::{artifact, seed::derive_serve_attempt_seed};
use dpm_serve::{
    serve, CompiledPolicy, ErrorClass, RetryPolicy, ServeConfig, ServeFaultPlan, SwapPlan,
    SystemStatus,
};
use proptest::prelude::*;

fn system() -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dac99_server().unwrap())
        .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
        .capacity(5)
        .build()
        .unwrap()
}

fn greedy(system: &PmSystem) -> CompiledPolicy {
    CompiledPolicy::compile(system, &PmPolicy::greedy(system).unwrap()).unwrap()
}

/// A unique scratch path: per-process, per-call.
fn scratch(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("dpm-serve-supervision");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{n}-{name}", std::process::id()))
}

#[test]
fn panic_retry_replays_the_same_seed_bit_identically() {
    let system = system();
    let policy = greedy(&system);
    let base = ServeConfig::new(21).systems(8).requests_per_system(600);
    let clean = serve(&system, &policy, &base).unwrap();
    let faulted = serve(
        &system,
        &policy,
        &base
            .clone()
            .faults(ServeFaultPlan::new().panic_at(3, 400, 1)),
    )
    .unwrap();
    // The panicked system replayed its original seed, so every report —
    // and therefore the fleet fingerprint — matches the clean run.
    assert_eq!(faulted.fingerprint(), clean.fingerprint());
    assert_eq!(faulted.merged(), clean.merged());
    for (f, c) in faulted.records().iter().zip(clean.records()) {
        assert_eq!(f.report(), c.report(), "system {}", f.system());
    }
    let recovered = &faulted.records()[3];
    assert_eq!(recovered.attempts(), 2, "one failure, one successful retry");
    assert_eq!(recovered.seed_attempt(), 0, "panic retries replay the seed");
    assert!(recovered.is_served());
    // The supervision trail differs from clean only where it should.
    assert_eq!(faulted.served(), 8);
    assert!(clean.records().iter().all(|r| r.attempts() == 1));
}

#[test]
fn panic_budget_exhaustion_quarantines_without_disturbing_the_fleet() {
    let system = system();
    let policy = greedy(&system);
    let base = ServeConfig::new(22).systems(6).requests_per_system(500);
    let clean = serve(&system, &policy, &base).unwrap();
    let config = base
        .clone()
        .faults(ServeFaultPlan::new().panic_at(2, 300, u32::MAX))
        .retry(RetryPolicy::new().panic_attempts(3));
    let faulted = serve(&system, &policy, &config).unwrap();
    let victim = &faulted.records()[2];
    assert_eq!(victim.attempts(), 3, "budget fully consumed");
    match victim.status() {
        SystemStatus::Quarantined { class, error } => {
            assert_eq!(*class, ErrorClass::Panic);
            assert!(error.contains("injected panic"), "{error}");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(faulted.served(), 5);
    assert_eq!(faulted.quarantined(), 1);
    assert_eq!(faulted.merged().runs(), 5, "quarantined system excluded");
    // Every surviving system's report is untouched by the sick neighbour.
    for (f, c) in faulted.records().iter().zip(clean.records()) {
        if f.system() != 2 {
            assert_eq!(f.report(), c.report(), "system {}", f.system());
        }
    }
    // Quarantine is shard-invariant like everything else.
    let sharded = serve(&system, &policy, &config.clone().shards(3)).unwrap();
    assert_eq!(sharded.fingerprint(), faulted.fingerprint());
    assert_eq!(sharded.records(), faulted.records());
}

#[test]
fn engine_error_retry_draws_a_fresh_seed_stream() {
    let system = system();
    let policy = greedy(&system);
    let config = ServeConfig::new(23)
        .systems(6)
        .requests_per_system(500)
        .faults(ServeFaultPlan::new().error_at(4, 250, 1));
    let outcome = serve(&system, &policy, &config).unwrap();
    let retried = &outcome.records()[4];
    assert_eq!(retried.attempts(), 2);
    assert_eq!(
        retried.seed_attempt(),
        1,
        "engine retries reseed: the same stream would fail identically"
    );
    let report = retried.report().expect("served after the reseed");
    assert_eq!(report.seed(), derive_serve_attempt_seed(23, 4, 1));
    assert_eq!(outcome.served(), 6);
    // Deterministic across shard counts, reseed and all.
    let sharded = serve(&system, &policy, &config.clone().shards(2)).unwrap();
    assert_eq!(sharded.records(), outcome.records());
    assert_eq!(sharded.fingerprint(), outcome.fingerprint());
}

#[test]
fn engine_budget_exhaustion_quarantines_with_the_engine_class() {
    let system = system();
    let policy = greedy(&system);
    let outcome = serve(
        &system,
        &policy,
        &ServeConfig::new(24)
            .systems(4)
            .requests_per_system(400)
            .faults(ServeFaultPlan::new().error_at(1, 200, u32::MAX))
            .retry(RetryPolicy::new().engine_attempts(2)),
    )
    .unwrap();
    let victim = &outcome.records()[1];
    assert_eq!(victim.attempts(), 2);
    assert_eq!(
        victim.seed_attempt(),
        1,
        "the retry did reseed before failing"
    );
    match victim.status() {
        SystemStatus::Quarantined { class, error } => {
            assert_eq!(*class, ErrorClass::Engine);
            assert!(error.contains("injected engine error"), "{error}");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(outcome.merged().runs(), 3);
}

#[test]
fn setup_failures_quarantine_immediately_without_retry() {
    let system = system();
    let policy = greedy(&system);
    let outcome = serve(
        &system,
        &policy,
        &ServeConfig::new(25)
            .systems(5)
            .requests_per_system(300)
            .faults(ServeFaultPlan::new().setup_failure(0)),
    )
    .unwrap();
    let victim = &outcome.records()[0];
    assert_eq!(victim.attempts(), 1, "setup failures are never retried");
    match victim.status() {
        SystemStatus::Quarantined { class, .. } => assert_eq!(*class, ErrorClass::Setup),
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(outcome.served(), 4);
    assert_eq!(outcome.merged().runs(), 4);
}

#[test]
fn accepted_swaps_change_results_deterministically() {
    let system = system();
    let policy = greedy(&system);
    let replacement =
        CompiledPolicy::compile(&system, &PmPolicy::always_on(&system, 0).unwrap()).unwrap();
    let base = ServeConfig::new(26).systems(6).requests_per_system(600);
    let unswapped = serve(&system, &policy, &base).unwrap();
    let swapped_config = base
        .clone()
        .swaps(SwapPlan::new().swap_at(500, replacement.clone()));
    let swapped = serve(&system, &policy, &swapped_config).unwrap();
    assert_eq!(swapped.swap_outcomes().len(), 1);
    assert!(swapped.swap_outcomes()[0].accepted());
    assert_eq!(swapped.swap_outcomes()[0].at_events(), 500);
    assert_ne!(
        swapped.fingerprint(),
        unswapped.fingerprint(),
        "an always-on takeover must change the trajectories"
    );
    // The barrier is each system's own event counter, so the swapped run
    // is still bit-identical at every shard count.
    for shards in [2, 3, 6] {
        let sharded = serve(&system, &policy, &swapped_config.clone().shards(shards)).unwrap();
        assert_eq!(
            sharded.fingerprint(),
            swapped.fingerprint(),
            "{shards} shards"
        );
        assert_eq!(sharded.records(), swapped.records(), "{shards} shards");
    }
    // swap_at_checked with the matching source table also passes.
    let checked = serve(
        &system,
        &policy,
        &base.clone().swaps(SwapPlan::new().swap_at_checked(
            500,
            replacement,
            PmPolicy::always_on(&system, 0).unwrap(),
        )),
    )
    .unwrap();
    assert!(checked.swap_outcomes()[0].accepted());
    assert_eq!(checked.fingerprint(), swapped.fingerprint());
}

#[test]
fn invalid_swap_artifacts_are_rejected_without_disturbing_the_fleet() {
    let system = system();
    let policy = greedy(&system);
    // A policy compiled for a different queue capacity: wrong shape.
    let small = PmSystem::builder()
        .provider(SpModel::dac99_server().unwrap())
        .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
        .capacity(2)
        .build()
        .unwrap();
    let corrupt = CompiledPolicy::compile(&small, &PmPolicy::greedy(&small).unwrap()).unwrap();
    let base = ServeConfig::new(27).systems(5).requests_per_system(400);
    let clean = serve(&system, &policy, &base).unwrap();
    let outcome = serve(
        &system,
        &policy,
        &base.clone().swaps(SwapPlan::new().swap_at(300, corrupt)),
    )
    .unwrap();
    assert!(!outcome.swap_outcomes()[0].accepted());
    assert!(
        outcome.swap_outcomes()[0]
            .reason()
            .is_some_and(|r| r.contains("capacity")),
        "{:?}",
        outcome.swap_outcomes()[0].reason()
    );
    // The fleet ran to completion under the original policy as if the
    // bad artifact had never been scheduled.
    assert_eq!(outcome.fingerprint(), clean.fingerprint());
    assert_eq!(outcome.merged(), clean.merged());

    // A well-shaped artifact that disagrees with its claimed source
    // table fails the compiled==table spot-check.
    let mismatched = serve(
        &system,
        &policy,
        &base.clone().swaps(SwapPlan::new().swap_at_checked(
            300,
            greedy(&system),
            PmPolicy::always_on(&system, 0).unwrap(),
        )),
    )
    .unwrap();
    assert!(!mismatched.swap_outcomes()[0].accepted());
    assert!(
        mismatched.swap_outcomes()[0]
            .reason()
            .is_some_and(|r| r.contains("disagrees")),
        "{:?}",
        mismatched.swap_outcomes()[0].reason()
    );
    assert_eq!(mismatched.fingerprint(), clean.fingerprint());

    // A barrier of zero can never be honoured (event counts are 1-based).
    let zero = serve(
        &system,
        &policy,
        &base
            .clone()
            .swaps(SwapPlan::new().swap_at(0, greedy(&system))),
    )
    .unwrap();
    assert!(!zero.swap_outcomes()[0].accepted());
    assert_eq!(zero.fingerprint(), clean.fingerprint());
}

#[test]
fn finished_runs_resume_to_identical_outcomes_through_compaction() {
    let system = system();
    let policy = greedy(&system);
    let first_journal = scratch("finished-1.jsonl");
    let second_journal = scratch("finished-2.jsonl");
    let base = ServeConfig::new(28)
        .systems(6)
        .requests_per_system(500)
        .faults(ServeFaultPlan::new().panic_at(1, 100, 1).setup_failure(5));
    let reference = serve(&system, &policy, &base.clone().checkpoint(&first_journal)).unwrap();
    // Resume the finished fleet: every system is carried forward from the
    // journal (compacted into range records in the new journal) and the
    // outcome — including the supervision trail — is identical.
    let resumed = serve(
        &system,
        &policy,
        &base
            .clone()
            .resume(&first_journal)
            .checkpoint(&second_journal),
    )
    .unwrap();
    assert_eq!(resumed.records(), reference.records());
    assert_eq!(resumed.fingerprint(), reference.fingerprint());
    // And the compacted journal itself resumes identically (second hop).
    let rehop = serve(&system, &policy, &base.clone().resume(&second_journal)).unwrap();
    assert_eq!(rehop.records(), reference.records());
    assert_eq!(
        artifact::diff(&rehop.to_json(), &reference.to_json(), 0.0),
        Vec::<String>::new()
    );
    std::fs::remove_file(&first_journal).ok();
    std::fs::remove_file(&second_journal).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill-at-any-point: truncating the journal after ANY prefix of its
    /// records (optionally with a torn trailing line, as a real SIGKILL
    /// leaves behind) and resuming — at any shard count — reproduces the
    /// uninterrupted run field-for-field.
    #[test]
    fn kill_at_random_epoch_resumes_bit_identically(
        cut in 0usize..10_000,
        torn_flag in 0usize..2,
        shard_pick in 0usize..3,
    ) {
        let torn = torn_flag == 1;
        let shards = [1usize, 2, 4][shard_pick];
        let system = system();
        let policy = greedy(&system);
        let full_journal = scratch("kill-full.jsonl");
        let base = ServeConfig::new(29)
            .systems(10)
            .requests_per_system(800)
            .checkpoint_every(64)
            // Mid-run supervision activity, so the journal carries retry
            // state (not just progress) across the kill.
            .faults(ServeFaultPlan::new().panic_at(1, 200, 1).error_at(4, 150, 1));
        let reference = serve(
            &system,
            &policy,
            &base.clone().shards(2).checkpoint(&full_journal),
        ).unwrap();

        // Simulate the kill: keep the header plus a random prefix of the
        // records, optionally followed by a torn half-record.
        let text = std::fs::read_to_string(&full_journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert!(lines.len() > 1, "journal should hold records");
        let records = &lines[1..];
        let keep = cut % (records.len() + 1);
        let mut truncated = lines[0].to_owned();
        for line in &records[..keep] {
            truncated.push('\n');
            truncated.push_str(line);
        }
        if torn {
            if let Some(next) = records.get(keep) {
                truncated.push('\n');
                truncated.push_str(&next[..next.len() / 2]);
            }
        }
        let cut_journal = scratch("kill-cut.jsonl");
        std::fs::write(&cut_journal, &truncated).unwrap();

        let resumed = serve(
            &system,
            &policy,
            &base.clone().shards(shards).resume(&cut_journal),
        ).unwrap();
        prop_assert_eq!(resumed.records(), reference.records());
        prop_assert_eq!(resumed.fingerprint(), reference.fingerprint());
        prop_assert_eq!(resumed.merged(), reference.merged());
        prop_assert_eq!(
            artifact::diff(&resumed.to_json(), &reference.to_json(), 0.0),
            Vec::<String>::new()
        );
        std::fs::remove_file(&full_journal).ok();
        std::fs::remove_file(&cut_journal).ok();
    }
}
