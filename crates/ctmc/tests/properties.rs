//! Property-based tests for the CTMC layer.

use dpm_ctmc::stationary::{Method, Solver};
use dpm_ctmc::{birth_death::Mm1k, graph, stationary, transient, Generator, SparseGenerator};
use dpm_linalg::DVector;
use proptest::prelude::*;

/// Stationary distribution via a single method, no fallback.
fn solve_with(g: &Generator, method: Method) -> Result<DVector, dpm_ctmc::CtmcError> {
    Solver::new(method).solve(g).map(|(pi, _)| pi)
}

/// Sparse stationary distribution via a single method, no fallback.
fn solve_sparse_with(g: &SparseGenerator, method: Method) -> Result<DVector, dpm_ctmc::CtmcError> {
    Solver::new(method).solve(g).map(|(pi, _)| pi)
}

/// Random irreducible generator: a directed ring guarantees irreducibility,
/// plus random extra edges.
fn irreducible_generator(n: usize) -> impl Strategy<Value = Generator> {
    let ring = prop::collection::vec(0.1f64..10.0, n);
    let extra = prop::collection::vec((0..n, 0..n, 0.0f64..5.0), 0..2 * n);
    (ring, extra).prop_map(move |(ring_rates, extras)| {
        let mut b = Generator::builder(n);
        for (i, &r) in ring_rates.iter().enumerate() {
            b.add_rate(i, (i + 1) % n, r);
        }
        for (i, j, r) in extras {
            if i != j && r > 0.0 {
                b.add_rate(i, j, r);
            }
        }
        b.build().expect("constructed rates are valid")
    })
}

proptest! {
    #[test]
    fn stationary_solvers_agree(g in (2usize..8).prop_flat_map(irreducible_generator)) {
        let lu = solve_with(&g, Method::Lu).expect("irreducible");
        let gth = solve_with(&g, Method::Gth).expect("irreducible");
        prop_assert!((&lu - &gth).norm_inf() < 1e-8);
    }

    #[test]
    fn unified_solve_agrees_across_all_methods(
        g in (2usize..8).prop_flat_map(irreducible_generator)
    ) {
        let reference = solve_with(&g, Method::Gth).expect("irreducible");
        for method in [Method::Lu, Method::Power, Method::Iterative,
                       Method::BiCgStab, Method::Gmres] {
            let pi = solve_with(&g, method).expect("irreducible");
            prop_assert!(
                (&pi - &reference).norm_inf() < 1e-8,
                "{method:?} disagrees with GTH"
            );
        }
    }

    #[test]
    fn sparse_solve_matches_dense_solve(
        g in (2usize..8).prop_flat_map(irreducible_generator)
    ) {
        let sparse = SparseGenerator::from_generator(&g);
        let reference = solve_with(&g, Method::Gth).expect("irreducible");
        for method in [Method::Lu, Method::Gth, Method::Power, Method::Iterative,
                       Method::BiCgStab, Method::Gmres] {
            let pi = solve_sparse_with(&sparse, method).expect("irreducible");
            prop_assert!(
                (&pi - &reference).norm_inf() < 1e-8,
                "sparse {method:?} disagrees with dense GTH"
            );
        }
    }

    #[test]
    fn sparse_generator_round_trips_dense(
        g in (2usize..8).prop_flat_map(irreducible_generator)
    ) {
        let sparse = SparseGenerator::from_generator(&g);
        let n = g.n_states();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((sparse.rate(i, j) - g.rate(i, j)).abs() < 1e-15);
            }
            prop_assert!((sparse.exit_rate(i) - g.exit_rate(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_is_a_distribution_with_zero_residual(
        g in (2usize..8).prop_flat_map(irreducible_generator)
    ) {
        let pi = Solver::new(Method::Gth)
            .check_irreducible()
            .solve(&g)
            .map(|(pi, _)| pi)
            .expect("irreducible");
        prop_assert!((pi.sum() - 1.0).abs() < 1e-10);
        prop_assert!(pi.iter().all(|p| p >= 0.0));
        prop_assert!(stationary::residual(&g, &pi) < 1e-8);
    }

    #[test]
    fn ring_generators_are_irreducible(g in (2usize..10).prop_flat_map(irreducible_generator)) {
        prop_assert!(graph::is_irreducible(&g));
        prop_assert!(graph::is_connected(&g));
        prop_assert!(graph::recurrent_states(&g).iter().all(|&r| r));
    }

    #[test]
    fn transient_distribution_stays_stochastic(
        (g, t) in (2usize..6).prop_flat_map(irreducible_generator).prop_flat_map(|g| {
            (Just(g), 0.0f64..20.0)
        })
    ) {
        let n = g.n_states();
        let mut pi0 = DVector::zeros(n);
        pi0[0] = 1.0;
        let pi = transient::distribution_at(&g, &pi0, t).expect("valid inputs");
        prop_assert!((pi.sum() - 1.0).abs() < 1e-9);
        prop_assert!(pi.iter().all(|p| p >= -1e-12));
    }

    #[test]
    fn transient_converges_to_stationary(
        g in (2usize..6).prop_flat_map(irreducible_generator)
    ) {
        // Horizon scaled to the slowest rate so mixing has completed.
        let slowest = (0..g.n_states())
            .map(|i| g.exit_rate(i))
            .fold(f64::INFINITY, f64::min)
            .max(1e-3);
        let t = 60.0 / slowest;
        let n = g.n_states();
        let mut pi0 = DVector::zeros(n);
        pi0[0] = 1.0;
        let pi_t = transient::distribution_at(&g, &pi0, t).expect("valid inputs");
        let pi_inf = solve_with(&g, Method::Gth).expect("irreducible");
        prop_assert!((&pi_t - &pi_inf).norm_inf() < 1e-6);
    }

    #[test]
    fn chapman_kolmogorov(
        (g, s, t) in (2usize..5).prop_flat_map(irreducible_generator)
            .prop_flat_map(|g| (Just(g), 0.01f64..3.0, 0.01f64..3.0))
    ) {
        // p(s + t) = p(s) then advanced by t.
        let n = g.n_states();
        let mut pi0 = DVector::zeros(n);
        pi0[0] = 1.0;
        let direct = transient::distribution_at(&g, &pi0, s + t).expect("valid");
        let mid = transient::distribution_at(&g, &pi0, s).expect("valid");
        let two_step = transient::distribution_at(&g, &mid, t).expect("valid");
        prop_assert!((&direct - &two_step).norm_inf() < 1e-8);
    }

    #[test]
    fn mm1k_closed_form_matches_numeric(
        (lambda, mu, k) in (0.05f64..3.0, 0.05f64..3.0, 1usize..10)
    ) {
        let g = stationary::mm1k_generator(lambda, mu, k).expect("valid rates");
        let pi = solve_with(&g, Method::Gth).expect("birth-death is irreducible");
        let closed = Mm1k::new(lambda, mu, k).expect("valid rates");
        for i in 0..=k {
            prop_assert!((pi[i] - closed.probability(i)).abs() < 1e-9);
        }
        let l_numeric: f64 = (0..=k).map(|i| i as f64 * pi[i]).sum();
        prop_assert!((l_numeric - closed.mean_customers()).abs() < 1e-9);
    }

    #[test]
    fn uniformized_chain_preserves_stationary(
        g in (2usize..7).prop_flat_map(irreducible_generator)
    ) {
        let pi = solve_with(&g, Method::Gth).expect("irreducible");
        let (p, _) = g.uniformize(1.1).expect("has transitions");
        let stepped = p.step(&pi);
        prop_assert!((&stepped - &pi).norm_inf() < 1e-9);
    }
}

proptest! {
    #[test]
    fn hitting_times_shrink_as_targets_grow(
        g in (3usize..7).prop_flat_map(irreducible_generator)
    ) {
        use dpm_ctmc::hitting::expected_hitting_times;
        let small = expected_hitting_times(&g, &[0]).expect("valid target");
        let large = expected_hitting_times(&g, &[0, 1]).expect("valid targets");
        for i in 0..g.n_states() {
            prop_assert!(
                large[i] <= small[i] + 1e-9,
                "state {i}: adding a target increased the hitting time"
            );
        }
    }

    #[test]
    fn hitting_probabilities_are_probabilities(
        g in (3usize..7).prop_flat_map(irreducible_generator)
    ) {
        use dpm_ctmc::hitting::hitting_probabilities;
        let p = hitting_probabilities(&g, &[0], &[1]).expect("valid sets");
        for i in 0..g.n_states() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p[i]));
        }
        prop_assert!((p[0] - 1.0).abs() < 1e-12);
        prop_assert!(p[1].abs() < 1e-12);
        // Complementary race: P(hit 0 before 1) + P(hit 1 before 0) = 1 on
        // an irreducible chain (one of them is always reached).
        let q = hitting_probabilities(&g, &[1], &[0]).expect("valid sets");
        for i in 0..g.n_states() {
            prop_assert!(
                (p[i] + q[i] - 1.0).abs() < 1e-8,
                "state {i}: race probabilities sum to {}",
                p[i] + q[i]
            );
        }
    }

    #[test]
    fn embedded_chain_recovers_ct_stationary(
        g in (2usize..7).prop_flat_map(irreducible_generator)
    ) {
        use dpm_ctmc::hitting::embedded_chain;
        // pi_ct(i) ∝ pi_jump(i) / exit_rate(i): converting the jump chain's
        // stationary distribution back through mean holding times recovers
        // the continuous-time stationary distribution.
        let pi_ct = solve_with(&g, Method::Gth).expect("irreducible");
        let jump = embedded_chain(&g).expect("valid");
        let pi_jump = jump.stationary_gth().expect("irreducible");
        let mut reconstructed: Vec<f64> = (0..g.n_states())
            .map(|i| pi_jump[i] / g.exit_rate(i))
            .collect();
        let total: f64 = reconstructed.iter().sum();
        for r in &mut reconstructed {
            *r /= total;
        }
        for i in 0..g.n_states() {
            prop_assert!(
                (reconstructed[i] - pi_ct[i]).abs() < 1e-8,
                "state {i}: {} vs {}",
                reconstructed[i],
                pi_ct[i]
            );
        }
    }
}

/// A stiff ring: rates drawn log-uniformly over nine decades, so the
/// fastest and slowest transitions can differ by a factor of 1e9.
fn stiff_generator(n: usize) -> impl Strategy<Value = Generator> {
    prop::collection::vec(-4.0f64..5.0, n).prop_map(move |exponents| {
        let mut b = Generator::builder(n);
        for (i, &e) in exponents.iter().enumerate() {
            b.add_rate(i, (i + 1) % n, 10f64.powf(e));
        }
        b.build().expect("positive rates are valid")
    })
}

/// Two rings joined by a vanishing coupling (down to 1e-12): technically
/// irreducible, numerically a hair from reducible.
fn near_reducible_generator() -> impl Strategy<Value = Generator> {
    (2usize..5, 2usize..5, -12.0f64..-6.0).prop_map(|(n1, n2, coupling_exp)| {
        let eps = 10f64.powf(coupling_exp);
        let mut b = Generator::builder(n1 + n2);
        for i in 0..n1 {
            b.add_rate(i, (i + 1) % n1, 1.0);
        }
        for i in 0..n2 {
            b.add_rate(n1 + i, n1 + (i + 1) % n2, 1.0);
        }
        b.add_rate(0, n1, eps);
        b.add_rate(n1, 0, eps);
        b.build().expect("positive rates are valid")
    })
}

/// Two disjoint rings: genuinely reducible, so LU sees a singular system
/// and a unique stationary distribution does not exist.
fn reducible_generator() -> impl Strategy<Value = Generator> {
    (2usize..5, 2usize..5, 0.1f64..10.0).prop_map(|(n1, n2, rate)| {
        let mut b = Generator::builder(n1 + n2);
        for i in 0..n1 {
            b.add_rate(i, (i + 1) % n1, rate);
        }
        for i in 0..n2 {
            b.add_rate(n1 + i, n1 + (i + 1) % n2, 1.0 / rate);
        }
        b.build().expect("positive rates are valid")
    })
}

/// A ring with one state duplicated: the clone shares state 0's outgoing
/// row and splits its incoming flow, producing two nearly merged states.
fn duplicated_state_generator(n: usize) -> impl Strategy<Value = Generator> {
    prop::collection::vec(0.1f64..10.0, n).prop_map(move |rates| {
        let mut b = Generator::builder(n + 1);
        for (i, &r) in rates.iter().enumerate() {
            if (i + 1) % n == 0 {
                // The edge into state 0 is split between 0 and its clone.
                b.add_rate(i, 0, r / 2.0);
                b.add_rate(i, n, r / 2.0);
            } else {
                b.add_rate(i, (i + 1) % n, r);
            }
        }
        b.add_rate(n, 1 % n, rates[0]); // clone mirrors state 0's row
        b.build().expect("positive rates are valid")
    })
}

fn assert_valid_distribution(pi: &DVector) {
    assert!(pi.iter().all(f64::is_finite), "non-finite entry in {pi:?}");
    assert!(pi.iter().all(|p| p >= -1e-12), "negative entry in {pi:?}");
    assert!((pi.sum() - 1.0).abs() < 1e-8, "sum {} != 1", pi.sum());
}

proptest! {
    #[test]
    fn fallback_solves_stiff_rate_ratios(
        g in (3usize..7).prop_flat_map(stiff_generator)
    ) {
        let (pi, stats) = Solver::new(stationary::FALLBACK_CHAIN[0]).with_default_fallback().solve(&g)
            .expect("stiff but irreducible chains must be solvable");
        assert_valid_distribution(&pi);
        let scale = (0..g.n_states()).map(|i| g.exit_rate(i)).fold(1.0, f64::max);
        prop_assert!(stationary::residual(&g, &pi) <= 1e-8 * scale);
        // Whatever method won is on record.
        let _ = stats.method();
    }

    #[test]
    fn fallback_solves_near_reducible_chains(g in near_reducible_generator()) {
        let (pi, _) = Solver::new(stationary::FALLBACK_CHAIN[0]).with_default_fallback().solve(&g)
            .expect("near-reducible chains are still irreducible");
        assert_valid_distribution(&pi);
        let sparse = SparseGenerator::from_generator(&g);
        let (pi_sparse, _) = Solver::new(stationary::SPARSE_FALLBACK_CHAIN[0]).with_default_fallback().solve(&sparse)
            .expect("sparse fallback must also carry near-reducible chains");
        assert_valid_distribution(&pi_sparse);
    }

    #[test]
    fn fallback_solves_duplicated_states(
        g in (3usize..7).prop_flat_map(duplicated_state_generator)
    ) {
        let (pi, _) = Solver::new(stationary::FALLBACK_CHAIN[0]).with_default_fallback().solve(&g)
            .expect("a duplicated state keeps the chain irreducible");
        assert_valid_distribution(&pi);
    }

    #[test]
    fn fallback_never_panics_or_leaks_nan_on_reducible_chains(
        g in reducible_generator()
    ) {
        // Reducible chains have no unique stationary distribution. The
        // contract is: a valid distribution (one stationary mixture) or a
        // structured error — never a panic, never a NaN vector.
        match Solver::new(stationary::FALLBACK_CHAIN[0]).with_default_fallback().solve(&g) {
            Ok((pi, stats)) => {
                assert_valid_distribution(&pi);
                // Dense LU must have rejected the singular system first.
                prop_assert!(stats.escalated(), "LU should not solve a reducible chain");
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        let sparse = SparseGenerator::from_generator(&g);
        match Solver::new(stationary::SPARSE_FALLBACK_CHAIN[0]).with_default_fallback().solve(&sparse) {
            Ok((pi, _)) => assert_valid_distribution(&pi),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

/// Stiff birth–death chain: rate magnitudes random-walk over six decades
/// with steps bounded to one decade per level, the shape the DPM
/// service-queue models produce when instant-rate surrogates meet slow
/// arrival processes. The bounded step keeps adjacent levels within a
/// factor of ten of each other: the chain is stiff (rates span up to
/// 1e6) but has no near-reducible bottleneck, so its stationary
/// distribution is determined to full accuracy by the balance equations
/// (an isolated slow level between fast segments would push the system's
/// conditioning past what any `f64` linear solve — direct or Krylov —
/// can resolve; that regime is covered by the graceful-degradation test
/// below instead).
fn stiff_birth_death(n: usize) -> impl Strategy<Value = SparseGenerator> {
    let base = -3.0f64..3.0;
    let steps = prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n - 1);
    (base, steps).prop_map(move |(base_exp, steps)| {
        let mut transitions = Vec::with_capacity(2 * (n - 1));
        let mut level_exp = base_exp;
        for (i, &(step, down_offset)) in steps.iter().enumerate() {
            level_exp = (level_exp + step).clamp(-3.0, 3.0);
            transitions.push((i, i + 1, 10f64.powf(level_exp)));
            transitions.push((i + 1, i, 10f64.powf(level_exp + down_offset)));
        }
        SparseGenerator::from_transitions(n, &transitions).expect("positive rates are valid")
    })
}

/// Birth–death chain with one severe bottleneck level: rates 1e-5 in both
/// directions between two fast (rate ~1) segments. Near-reducible — the
/// linear-system condition number exceeds `1/ε`, so no agreement bound is
/// asserted, only graceful behavior.
fn bottleneck_birth_death() -> impl Strategy<Value = SparseGenerator> {
    (3usize..20, 1usize..18, -8.0f64..-4.0).prop_map(|(n, cut, exp)| {
        let cut = cut.min(n - 2);
        let eps = 10f64.powf(exp);
        let mut transitions = Vec::with_capacity(2 * (n - 1));
        for i in 0..n - 1 {
            let rate = if i == cut { eps } else { 1.0 };
            transitions.push((i, i + 1, rate));
            transitions.push((i + 1, i, rate * 2.0));
        }
        SparseGenerator::from_transitions(n, &transitions).expect("positive rates are valid")
    })
}

proptest! {
    #[test]
    fn krylov_matches_gth_on_random_irreducible_chains(
        g in (2usize..10).prop_flat_map(irreducible_generator)
    ) {
        let sparse = SparseGenerator::from_generator(&g);
        let reference = solve_sparse_with(&sparse, Method::Gth).expect("irreducible");
        for method in [Method::BiCgStab, Method::Gmres] {
            for precond in [stationary::Precond::Ilu0, stationary::Precond::None] {
                let (pi, _) = Solver::new(method)
                    .precond(precond)
                    .solve(&sparse)
                    .expect("irreducible");
                prop_assert!(
                    (&pi - &reference).norm_inf() < 1e-8,
                    "{method:?}/{precond:?} disagrees with GTH"
                );
            }
        }
    }

    #[test]
    fn krylov_matches_gth_on_stiff_birth_death_chains(
        sparse in (3usize..40).prop_flat_map(stiff_birth_death)
    ) {
        let reference = solve_sparse_with(&sparse, Method::Gth).expect("irreducible");
        for method in [Method::BiCgStab, Method::Gmres] {
            let (pi, stats) = Solver::new(method).solve(&sparse).expect("irreducible");
            let diff = (&pi - &reference).norm_inf();
            prop_assert!(
                diff < 1e-8,
                "{method:?} differs from GTH by {diff:e} after {} sweeps \
                 on a stiff birth-death chain",
                stats.sweeps()
            );
        }
    }

    #[test]
    fn krylov_degrades_gracefully_on_bottleneck_chains(
        sparse in bottleneck_birth_death()
    ) {
        // Near-reducible: condition number beyond 1/ε, so agreement with
        // GTH is not achievable by any residual-based solve. The contract
        // is a valid distribution with a near-zero balance residual — or a
        // structured error that lets the fallback chain escalate.
        for method in [Method::BiCgStab, Method::Gmres] {
            match Solver::new(method).solve(&sparse) {
                Ok((pi, _)) => {
                    assert_valid_distribution(&pi);
                    let scale = (0..sparse.n_states())
                        .map(|i| sparse.exit_rate(i))
                        .fold(1.0, f64::max);
                    prop_assert!(
                        stationary::residual_sparse(&sparse, &pi) <= 1e-8 * scale,
                        "{method:?} accepted a distribution with a large residual"
                    );
                }
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
        }
    }
}
