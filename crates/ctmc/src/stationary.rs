//! Limiting (stationary) distributions of irreducible CTMCs.
//!
//! Theorem 2.1 of the paper: for an irreducible, positive-recurrent chain
//! the limiting distribution is the unique solution of `πG = 0`,
//! `Σ_j π_j = 1`. Six backends with different accuracy/robustness/speed
//! trade-offs sit behind one [`Solver`] builder:
//!
//! * [`Method::Lu`] — direct solve of the balance equations (dense LU on a
//!   [`Generator`], sparse LU on the reduced system for a
//!   [`SparseGenerator`]);
//! * [`Method::Gth`] — Grassmann–Taksar–Heyman elimination on the
//!   uniformized chain (dense), or the sparse direct solve of the
//!   uniformized balance system (sparse); subtraction-free in the dense
//!   form, the method of choice for stiff chains;
//! * [`Method::Power`] — power iteration on the uniformized chain;
//! * [`Method::Iterative`] — Gauss–Seidel sweeps on the balance equations,
//!   `O(nnz)` per sweep;
//! * [`Method::BiCgStab`] / [`Method::Gmres`] — the preconditioned Krylov
//!   tier (`dpm_linalg::krylov`): ILU(0)-preconditioned BiCGSTAB or
//!   restarted GMRES(m) on the reduced balance system, the `O(nnz)` path
//!   for generators of 10⁴–10⁶ states where direct fill-in and stationary
//!   sweeps both give out.
//!
//! # The `Solver` builder
//!
//! [`Solver`] is the single entry point: pick a [`Method`], adjust
//! [`SolverConfig`] knobs, optionally arm the escalation chain, and hand
//! it a dense or sparse generator through [`GeneratorRef`] (both convert
//! with `From`):
//!
//! ```
//! use dpm_ctmc::{stationary::{Method, Solver}, Generator};
//!
//! # fn main() -> Result<(), dpm_ctmc::CtmcError> {
//! let g = Generator::builder(2).rate(0, 1, 1.0).rate(1, 0, 3.0).build()?;
//! for method in [Method::Lu, Method::Gth, Method::BiCgStab, Method::Gmres] {
//!     let (pi, stats) = Solver::new(method).solve(&g)?;
//!     assert!((pi[0] - 0.75).abs() < 1e-8);
//!     assert_eq!(stats.method(), method);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! With [`Solver::with_default_fallback`] the solve escalates through
//! [`FALLBACK_CHAIN`] (dense) or [`SPARSE_FALLBACK_CHAIN`] (sparse) until
//! a backend produces a distribution passing the residual guard — a
//! stalled Krylov solve degrades to the sparse direct and GTH tiers
//! automatically.

use dpm_linalg::krylov::{self, Ilu0, KrylovOptions};
use dpm_linalg::{CsrMatrix, DVector, SparseLu};

use crate::{graph, CtmcError, Generator, SparseGenerator};

/// Margin applied to the uniformization constant by the GTH and power
/// solvers.
const UNIFORMIZATION_MARGIN: f64 = 1.05;

/// Default convergence tolerance: infinity norm of the per-sweep update
/// for [`Method::Power`] / [`Method::Iterative`], relative residual for
/// the Krylov methods.
pub const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Default iteration budget (sweeps or Krylov matrix–vector products).
pub const DEFAULT_MAX_ITERATIONS: usize = 1_000_000;

/// Default GMRES restart length used by [`Method::Gmres`].
pub const DEFAULT_RESTART: usize = 30;

/// Iterative-refinement correction solves after a converged Krylov
/// stationary solve (each one multiplies the forward-error reduction, and
/// one usually reaches the rounding floor).
const KRYLOV_REFINEMENT_STEPS: usize = 2;

/// Solver backend selector for [`Solver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Direct solve of the balance equations. Dense input: LU with the
    /// normalization row, exact to rounding, `O(n³)` time / `O(n²)`
    /// memory. Sparse input: [`dpm_linalg::SparseLu`] on the reduced
    /// system (fix `π_{n-1}`), cost governed by fill-in.
    Lu,
    /// Grassmann–Taksar–Heyman elimination on the uniformized chain.
    /// Subtraction-free in the dense form, the most robust choice on stiff
    /// chains. Sparse input: the direct solve of the uniformized balance
    /// system (same elimination as [`Method::Lu`] but on `G/Λ`, keeping
    /// the no-transition guard and `O(1)`-scaled entries). The default.
    #[default]
    Gth,
    /// Power iteration on the uniformized chain. Matrix-free: `O(nnz)` per
    /// step on a sparse generator, but the step count grows with the
    /// chain's stiffness (the uniformization constant is dominated by the
    /// fastest rate).
    Power,
    /// Gauss–Seidel sweeps directly on the balance equations `πG = 0`,
    /// normalizing each sweep. `O(nnz)` per sweep and robust to stiffness
    /// (each state is relaxed against its own exit rate).
    Iterative,
    /// BiCGSTAB with ILU(0) preconditioning on the reduced balance
    /// system. `O(nnz)` per iteration with short recurrences — the
    /// lowest-memory Krylov tier for very large sparse generators.
    BiCgStab,
    /// Restarted GMRES(m) with ILU(0) preconditioning on the reduced
    /// balance system. Stores `m + 1` basis vectors; the restart length is
    /// [`SolverConfig::restart`].
    Gmres,
}

impl Method {
    /// Canonical lowercase name, stable for CLI flags and artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Method::Lu => "lu",
            Method::Gth => "gth",
            Method::Power => "power",
            Method::Iterative => "iterative",
            Method::BiCgStab => "bicgstab",
            Method::Gmres => "gmres",
        }
    }

    /// Parses the canonical name (as produced by [`Method::name`]);
    /// returns `None` for anything else. This is the 1:1 mapping used by
    /// the harness `--method` flag.
    #[must_use]
    pub fn parse(name: &str) -> Option<Method> {
        match name {
            "lu" => Some(Method::Lu),
            "gth" => Some(Method::Gth),
            "power" => Some(Method::Power),
            "iterative" => Some(Method::Iterative),
            "bicgstab" => Some(Method::BiCgStab),
            "gmres" => Some(Method::Gmres),
            _ => None,
        }
    }

    /// `true` for the Krylov-subspace backends.
    #[must_use]
    pub fn is_krylov(self) -> bool {
        matches!(self, Method::BiCgStab | Method::Gmres)
    }
}

/// Preconditioner selector for the Krylov methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precond {
    /// No preconditioning.
    None,
    /// ILU(0): incomplete LU on the system's own sparsity pattern. If the
    /// factorization hits a singular pivot the solve deterministically
    /// downgrades to unpreconditioned iteration. The default.
    #[default]
    Ilu0,
}

impl Precond {
    /// Canonical lowercase name, stable for CLI flags and artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Precond::None => "none",
            Precond::Ilu0 => "ilu0",
        }
    }

    /// Parses the canonical name; the 1:1 mapping for `--precond`.
    #[must_use]
    pub fn parse(name: &str) -> Option<Precond> {
        match name {
            "none" => Some(Precond::None),
            "ilu0" => Some(Precond::Ilu0),
            _ => None,
        }
    }
}

/// Numerical knobs shared by every [`Solver`] backend (and reused by the
/// policy-evaluation backends in `dpm-mdp`, so CLI flags map onto one
/// struct instead of per-backend constants).
///
/// `tolerance` is the per-sweep update bound for the stationary
/// iterations and the relative residual bound for the Krylov methods;
/// `restart` and `precond` only affect [`Method::Gmres`] /
/// [`Method::BiCgStab`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Convergence tolerance. Default [`DEFAULT_TOLERANCE`].
    pub tolerance: f64,
    /// Iteration budget. Default [`DEFAULT_MAX_ITERATIONS`].
    pub max_iterations: usize,
    /// GMRES restart length. Default [`DEFAULT_RESTART`].
    pub restart: usize,
    /// Krylov preconditioner. Default [`Precond::Ilu0`].
    pub precond: Precond,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            tolerance: DEFAULT_TOLERANCE,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            restart: DEFAULT_RESTART,
            precond: Precond::default(),
        }
    }
}

/// A dense or sparse generator, borrowed: the one input type of
/// [`Solver::solve`]. Both `&Generator` and `&SparseGenerator` convert
/// via `From`/`Into`, so call sites just pass references.
#[derive(Debug, Clone, Copy)]
pub enum GeneratorRef<'a> {
    /// A dense generator matrix.
    Dense(&'a Generator),
    /// A CSR-backed generator.
    Sparse(&'a SparseGenerator),
}

impl<'a> From<&'a Generator> for GeneratorRef<'a> {
    fn from(g: &'a Generator) -> GeneratorRef<'a> {
        GeneratorRef::Dense(g)
    }
}

impl<'a> From<&'a SparseGenerator> for GeneratorRef<'a> {
    fn from(g: &'a SparseGenerator) -> GeneratorRef<'a> {
        GeneratorRef::Sparse(g)
    }
}

/// Diagnostics of one stationary solve — the telemetry layer's view of
/// what the solver did, alongside the distribution itself.
///
/// Direct methods ([`Method::Lu`], [`Method::Gth`]) report zero sweeps;
/// the Krylov methods report matrix–vector products. The residual
/// `‖πG‖_∞` is always computed a posteriori on the input representation,
/// so it is an independent accuracy certificate rather than the solver's
/// own stopping estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    method: Method,
    sweeps: usize,
    residual: f64,
    escalation: Vec<(Method, String)>,
}

impl SolveStats {
    /// The backend that produced the distribution.
    #[must_use]
    pub fn method(&self) -> Method {
        self.method
    }

    /// Iteration sweeps performed (0 for the direct methods; Krylov
    /// matrix–vector products for the Krylov methods).
    #[must_use]
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Final residual `‖πG‖_∞` of the returned distribution.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// The escalation path: backends tried and rejected (with the reason)
    /// before [`Self::method`] produced an acceptable distribution. Empty
    /// when fallback is off or the first backend succeeded.
    #[must_use]
    pub fn escalation(&self) -> &[(Method, String)] {
        &self.escalation
    }

    /// Whether the solve had to escalate past its first-choice backend.
    #[must_use]
    pub fn escalated(&self) -> bool {
        !self.escalation.is_empty()
    }
}

/// Ordered backend chain armed by [`Solver::with_default_fallback`] on
/// dense input: direct LU first (fast, exact on well-conditioned chains),
/// GTH second (subtraction-free, survives stiffness), power iteration
/// last (needs only that the uniformized chain converges from a uniform
/// start).
pub const FALLBACK_CHAIN: [Method; 3] = [Method::Lu, Method::Gth, Method::Power];

/// Ordered backend chain armed by [`Solver::with_default_fallback`] on
/// sparse input. ILU(0)-preconditioned BiCGSTAB leads — it is the only
/// `O(nnz)`-per-iteration tier that also converges fast on stiff chains —
/// and a stalled Krylov solve degrades to the sparse direct solves, then
/// Gauss–Seidel, then power iteration.
pub const SPARSE_FALLBACK_CHAIN: [Method; 5] = [
    Method::BiCgStab,
    Method::Lu,
    Method::Gth,
    Method::Iterative,
    Method::Power,
];

/// Relative slack of the a-posteriori residual guard applied by the
/// fallback chains: a candidate π is accepted only when
/// `‖πG‖∞ ≤ slack · max(1, max exit rate)`.
const FALLBACK_RESIDUAL_SLACK: f64 = 1e-8;

/// A configured stationary solve: method, numerical knobs, optional
/// escalation chain and irreducibility check, applied to dense or sparse
/// generators through one entry point.
///
/// # Examples
///
/// Krylov solve with fallback on a sparse generator:
///
/// ```
/// use dpm_ctmc::{stationary::{Method, Solver}, SparseGenerator};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = SparseGenerator::from_transitions(3, &[(0, 1, 2.0), (1, 2, 1.0), (2, 0, 4.0)])?;
/// let (pi, stats) = Solver::new(Method::BiCgStab)
///     .tolerance(1e-12)
///     .with_default_fallback()
///     .solve(&g)?;
/// assert!((pi.sum() - 1.0).abs() < 1e-12);
/// assert!(!stats.escalated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    method: Method,
    config: SolverConfig,
    fallback: FallbackPolicy,
    check_irreducible: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum FallbackPolicy {
    Off,
    Default,
    Chain(Vec<Method>),
}

impl Solver {
    /// A solver using `method` with default [`SolverConfig`], no fallback
    /// and no irreducibility check.
    #[must_use]
    pub fn new(method: Method) -> Solver {
        Solver {
            method,
            config: SolverConfig::default(),
            fallback: FallbackPolicy::Off,
            check_irreducible: false,
        }
    }

    /// Sets the convergence tolerance (see [`SolverConfig::tolerance`]).
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Solver {
        self.config.tolerance = tolerance;
        self
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn max_iters(mut self, max_iterations: usize) -> Solver {
        self.config.max_iterations = max_iterations;
        self
    }

    /// Sets the GMRES restart length.
    #[must_use]
    pub fn restart(mut self, restart: usize) -> Solver {
        self.config.restart = restart;
        self
    }

    /// Sets the Krylov preconditioner.
    #[must_use]
    pub fn precond(mut self, precond: Precond) -> Solver {
        self.config.precond = precond;
        self
    }

    /// Replaces the whole numerical configuration at once — the hook the
    /// harness CLI and the `dpm-mdp` evaluation backends use to share one
    /// options struct.
    #[must_use]
    pub fn config(mut self, config: SolverConfig) -> Solver {
        self.config = config;
        self
    }

    /// Arms escalation through an explicit method chain. The builder's
    /// own method is tried first; chain members then follow in order
    /// (duplicates of the first method are skipped).
    #[must_use]
    pub fn fallback(mut self, chain: &[Method]) -> Solver {
        self.fallback = FallbackPolicy::Chain(chain.to_vec());
        self
    }

    /// Arms escalation through the representation's default chain
    /// ([`FALLBACK_CHAIN`] dense, [`SPARSE_FALLBACK_CHAIN`] sparse).
    #[must_use]
    pub fn with_default_fallback(mut self) -> Solver {
        self.fallback = FallbackPolicy::Default;
        self
    }

    /// Verifies irreducibility before solving, reporting
    /// [`CtmcError::Reducible`] with the class count otherwise.
    #[must_use]
    pub fn check_irreducible(mut self) -> Solver {
        self.check_irreducible = true;
        self
    }

    /// Solves `πG = 0`, `Σπ = 1` on a dense or sparse generator.
    ///
    /// Without fallback, the configured method's result is returned
    /// as-is (with its a-posteriori residual in the stats). With
    /// fallback, each backend's candidate must pass the validation
    /// guard — entries finite and nonnegative, mass 1, residual within
    /// the stiffness-scaled slack — or the next backend is tried.
    ///
    /// # Errors
    ///
    /// Propagates the backend's failure (singular system, degenerate
    /// elimination, non-convergence, invalid chain);
    /// [`CtmcError::Reducible`] if [`Solver::check_irreducible`] is armed
    /// and the chain has more than one communicating class;
    /// [`CtmcError::FallbackExhausted`] when an armed chain runs out of
    /// backends.
    pub fn solve<'a>(
        &self,
        generator: impl Into<GeneratorRef<'a>>,
    ) -> Result<(DVector, SolveStats), CtmcError> {
        let generator = generator.into();
        if self.check_irreducible {
            let classes = match generator {
                GeneratorRef::Dense(g) => graph::communicating_classes(g).len(),
                GeneratorRef::Sparse(g) => graph::communicating_classes_sparse(g).len(),
            };
            if classes != 1 {
                return Err(CtmcError::Reducible { classes });
            }
        }
        let chain = self.effective_chain(generator);
        let (chain, guard_escalation) = guard_krylov(chain, generator, self.check_irreducible);
        match generator {
            GeneratorRef::Dense(g) => {
                if let [method] = chain.as_slice() {
                    let (pi, sweeps) = attempt_dense(g, *method, &self.config)?;
                    let residual = residual(g, &pi);
                    return Ok((
                        pi,
                        SolveStats {
                            method: *method,
                            sweeps,
                            residual,
                            escalation: guard_escalation,
                        },
                    ));
                }
                run_fallback(
                    &chain,
                    max_abs_diagonal(g),
                    guard_escalation,
                    |method| attempt_dense(g, method, &self.config),
                    |pi| residual(g, pi),
                )
            }
            GeneratorRef::Sparse(g) => {
                if let [method] = chain.as_slice() {
                    let (pi, sweeps) = attempt_sparse(g, *method, &self.config)?;
                    let residual = residual_sparse(g, &pi);
                    return Ok((
                        pi,
                        SolveStats {
                            method: *method,
                            sweeps,
                            residual,
                            escalation: guard_escalation,
                        },
                    ));
                }
                run_fallback(
                    &chain,
                    g.max_exit_rate(),
                    guard_escalation,
                    |method| attempt_sparse(g, method, &self.config),
                    |pi| residual_sparse(g, pi),
                )
            }
        }
    }

    /// The ordered method list this solve will try: the builder's method
    /// first, then the armed chain (minus duplicates of the first).
    fn effective_chain(&self, generator: GeneratorRef<'_>) -> Vec<Method> {
        let base: &[Method] = match &self.fallback {
            FallbackPolicy::Off => return vec![self.method],
            FallbackPolicy::Default => match generator {
                GeneratorRef::Dense(_) => &FALLBACK_CHAIN,
                GeneratorRef::Sparse(_) => &SPARSE_FALLBACK_CHAIN,
            },
            FallbackPolicy::Chain(chain) => chain,
        };
        let mut methods = vec![self.method];
        for &m in base {
            if !methods.contains(&m) {
                methods.push(m);
            }
        }
        methods
    }
}

/// Why a candidate distribution is unacceptable, or `None` if it passes
/// every guard (finite, nonnegative, sums to 1, small scaled residual).
fn distribution_flaw(pi: &DVector, residual: f64, scale: f64) -> Option<String> {
    for (i, x) in pi.iter().enumerate() {
        if !x.is_finite() {
            return Some(format!("non-finite probability {x} at state {i}"));
        }
        if x < 0.0 {
            return Some(format!("negative probability {x} at state {i}"));
        }
    }
    let sum = pi.sum();
    if (sum - 1.0).abs() > 1e-8 {
        return Some(format!("probability mass {sum} != 1"));
    }
    let bound = FALLBACK_RESIDUAL_SLACK * scale.max(1.0);
    if residual.is_nan() || residual > bound {
        return Some(format!("residual {residual:e} exceeds bound {bound:e}"));
    }
    None
}

/// Krylov methods are only reliable on *irreducible* generators — on a
/// reducible chain the normalization system is singular and BiCGSTAB can
/// diverge outright (the measured gap from the Krylov tier's bench). When
/// an unchecked solve is about to dispatch a Krylov method, run the
/// Tarjan SCC pass up front; on a reducible generator every Krylov entry
/// is dropped from the chain (each recorded as an escalation) and
/// Gauss–Seidel is guaranteed a slot as the substitute workhorse.
///
/// `already_checked` short-circuits the pass when
/// [`Solver::check_irreducible`] has established irreducibility (or
/// errored) before dispatch.
fn guard_krylov(
    chain: Vec<Method>,
    generator: GeneratorRef<'_>,
    already_checked: bool,
) -> (Vec<Method>, Vec<(Method, String)>) {
    if already_checked || !chain.iter().any(|m| m.is_krylov()) {
        return (chain, Vec::new());
    }
    let classes = match generator {
        GeneratorRef::Dense(g) => graph::communicating_classes(g).len(),
        GeneratorRef::Sparse(g) => graph::communicating_classes_sparse(g).len(),
    };
    if classes == 1 {
        return (chain, Vec::new());
    }
    let mut escalation = Vec::new();
    let mut guarded = Vec::new();
    for method in chain {
        if method.is_krylov() {
            escalation.push((
                method,
                format!(
                    "generator is reducible ({classes} communicating classes); \
                     krylov dispatch skipped, gauss-seidel substituted"
                ),
            ));
        } else {
            guarded.push(method);
        }
    }
    if !guarded.contains(&Method::Iterative) {
        guarded.push(Method::Iterative);
    }
    (guarded, escalation)
}

fn run_fallback(
    methods: &[Method],
    scale: f64,
    initial_escalation: Vec<(Method, String)>,
    mut attempt: impl FnMut(Method) -> Result<(DVector, usize), CtmcError>,
    residual_of: impl Fn(&DVector) -> f64,
) -> Result<(DVector, SolveStats), CtmcError> {
    let mut escalation: Vec<(Method, String)> = initial_escalation;
    for &method in methods {
        match attempt(method) {
            Ok((pi, sweeps)) => {
                let res = residual_of(&pi);
                match distribution_flaw(&pi, res, scale) {
                    None => {
                        return Ok((
                            pi,
                            SolveStats {
                                method,
                                sweeps,
                                residual: res,
                                escalation,
                            },
                        ))
                    }
                    Some(flaw) => escalation.push((method, flaw)),
                }
            }
            Err(err) => escalation.push((method, err.to_string())),
        }
    }
    Err(CtmcError::FallbackExhausted {
        attempts: escalation
            .into_iter()
            .map(|(m, e)| (format!("{m:?}"), e))
            .collect(),
    })
}

fn max_abs_diagonal(generator: &Generator) -> f64 {
    let m = generator.matrix();
    (0..generator.n_states())
        .map(|i| m[(i, i)].abs())
        .fold(0.0, f64::max)
}

/// One backend attempt on a dense generator, returning (π, sweeps).
fn attempt_dense(
    generator: &Generator,
    method: Method,
    config: &SolverConfig,
) -> Result<(DVector, usize), CtmcError> {
    match method {
        Method::Lu => Ok((dense_lu(generator)?, 0)),
        Method::Gth => Ok((dense_gth(generator)?, 0)),
        Method::Power => Ok((
            dense_power(generator, config.tolerance, config.max_iterations)?,
            // The dense power path does not count its own steps; callers
            // who need the count use the sparse representation.
            0,
        )),
        Method::Iterative | Method::BiCgStab | Method::Gmres => {
            attempt_sparse(&SparseGenerator::from_generator(generator), method, config)
        }
    }
}

/// One backend attempt on a sparse generator, returning (π, sweeps).
fn attempt_sparse(
    generator: &SparseGenerator,
    method: Method,
    config: &SolverConfig,
) -> Result<(DVector, usize), CtmcError> {
    match method {
        Method::Lu => sparse_direct(generator),
        Method::Gth => {
            // Keep GTH's contract of rejecting transition-free chains
            // before the factorization turns them into a singular solve.
            uniformization_constant(generator)?;
            sparse_direct(generator)
        }
        Method::Power => sparse_power(generator, config.tolerance, config.max_iterations),
        Method::Iterative => {
            sparse_gauss_seidel(generator, config.tolerance, config.max_iterations)
        }
        Method::BiCgStab | Method::Gmres => sparse_krylov(generator, method, config),
    }
}

fn uniformization_constant(generator: &SparseGenerator) -> Result<f64, CtmcError> {
    let lambda = UNIFORMIZATION_MARGIN * generator.max_exit_rate();
    if lambda <= 0.0 {
        return Err(CtmcError::InvalidParameter {
            reason: "cannot uniformize a chain with no transitions".to_owned(),
        });
    }
    Ok(lambda)
}

/// Sparse direct solve via [`SparseLu`] on the normalization-row system —
/// the sparse `Method::Lu` and `Method::Gth` path (both resolve to this
/// equilibrated solve; see [`normalization_system`]). No densification:
/// memory follows the factor fill-in plus the single dense row, not `n²`.
fn sparse_direct(generator: &SparseGenerator) -> Result<(DVector, usize), CtmcError> {
    let n = generator.n_states();
    if n == 1 {
        return Ok((DVector::constant(1, 1.0), 0));
    }
    let (a, b) = normalization_system(generator);
    let lu = SparseLu::new(&a).map_err(CtmcError::Numerical)?;
    let x = lu.solve(&b).map_err(CtmcError::Numerical)?;
    Ok((finish_direct(&x)?, 0))
}

/// Builds the normalization-row system for the sparse direct and Krylov
/// solvers: `A x = e_{n-1}` with `A = D·Gᵀ` except that row `n−1` is the
/// all-ones normalization row, so the solution is `π` itself. `D`
/// equilibrates each balance row by its largest rate — row scaling leaves
/// the solution untouched but keeps the pivots comparable when rates span
/// many orders of magnitude (a single global scale cannot; stiff chains
/// would otherwise lose five-plus digits to the imbalance).
///
/// An alternative — eliminating the reference state and solving for
/// `π / π_{n-1}` — keeps the system free of the dense row, but its
/// solution spans as many orders of magnitude as `π_max / π_{n-1}`, which
/// for stiff chains overflows what `f64` residuals can resolve (the
/// Krylov methods then cannot converge, and even a pivoted direct solve
/// loses the distribution's small entries). This formulation keeps
/// `‖x‖ ≤ 1` and `‖b‖ = 1` regardless of how lopsided `π` is, at the
/// cost of `n` extra non-zeros and whatever fill-in the dense row causes
/// in a direct factorization (none for ILU(0) or matrix-vector products).
fn normalization_system(generator: &SparseGenerator) -> (CsrMatrix, DVector) {
    let n = generator.n_states();
    debug_assert!(n >= 2, "normalization system needs at least two states");
    let mut row_max = vec![0.0f64; n];
    for (_, j, v) in generator.csr().iter() {
        if j < n - 1 {
            row_max[j] = row_max[j].max(v.abs());
        }
    }
    let mut triplets = Vec::with_capacity(generator.nnz() + n);
    for (i, j, v) in generator.csr().iter() {
        if j == n - 1 {
            // Balance row n−1 of Gᵀ is replaced by the normalization row.
            continue;
        }
        let scale = if row_max[j] > 0.0 { row_max[j] } else { 1.0 };
        triplets.push((j, i, v / scale));
    }
    for c in 0..n {
        triplets.push((n - 1, c, 1.0));
    }
    let mut b = DVector::zeros(n);
    b[n - 1] = 1.0;
    // Construction cannot fail: indices are < n and rates are finite by
    // the generator's invariants.
    match CsrMatrix::from_triplets(n, n, &triplets) {
        Ok(a) => (a, b),
        Err(_) => unreachable!("normalization-row triplets are in range and finite"), // dpm-lint: allow(no_panic, reason = "from_triplets only rejects out-of-range or non-finite entries, excluded by the generator invariants")
    }
}

/// Normalizes a direct Krylov solution of the normalization-row system
/// into a distribution (the solve already targets `Σπ = 1`; renormalize to
/// absorb the residual).
fn finish_direct(x: &DVector) -> Result<DVector, CtmcError> {
    let mut pi = x.clone();
    let sum = pi.sum();
    if !sum.is_finite() || sum <= 0.0 {
        return Err(CtmcError::Numerical(
            dpm_linalg::LinalgError::InvalidInput {
                reason: format!("stationary Krylov solve produced probability mass {sum}"),
            },
        ));
    }
    pi.scale_mut(1.0 / sum);
    sanitize(pi)
}

/// Krylov solve (BiCGSTAB or GMRES per `method`) with optional ILU(0)
/// preconditioning on the normalization-row system.
fn sparse_krylov(
    generator: &SparseGenerator,
    method: Method,
    config: &SolverConfig,
) -> Result<(DVector, usize), CtmcError> {
    let n = generator.n_states();
    if n == 1 {
        return Ok((DVector::constant(1, 1.0), 0));
    }
    // The all-zero generator would reduce to the normalization row alone
    // and "converge" instantly to the uniform distribution; reject it
    // like the uniformized methods do.
    if generator.max_exit_rate() <= 0.0 {
        return Err(CtmcError::InvalidParameter {
            reason: "cannot solve a chain with no transitions".to_owned(),
        });
    }
    let (a, d) = normalization_system(generator);
    let options = KrylovOptions {
        tolerance: config.tolerance,
        max_iterations: config.max_iterations,
        restart: config.restart,
    };
    let precond = match config.precond {
        Precond::Ilu0 => match Ilu0::new(&a) {
            Ok(m) => Some(m),
            // Deterministic downgrade: a singular ILU pivot means the
            // pattern cannot support the factorization; iterate without it.
            Err(dpm_linalg::LinalgError::Singular { .. }) => None,
            Err(e) => return Err(CtmcError::Numerical(e)),
        },
        Precond::None => None,
    };
    let solve = |rhs: &DVector| match method {
        Method::Gmres => krylov::gmres(&a, rhs, precond.as_ref(), &options),
        _ => krylov::bicgstab(&a, rhs, precond.as_ref(), &options),
    };
    let result = solve(&d).map_err(CtmcError::Numerical)?;
    let mut x = result.solution;
    let mut iterations = result.iterations;
    // Iterative refinement: the Krylov recursion stops once its residual
    // reaches `tol·‖b‖`, but the *forward* error is κ(A) times that, which
    // on stiff chains costs five-plus digits against the backward-stable
    // direct solves. Correcting against the true residual closes the gap
    // to the κ(A)·ε floor those solves sit at. The floor check keeps the
    // correction solve from chasing a right-hand side that is already
    // rounding noise (its relative target would be unreachable).
    let a_norm = a_norm_inf(&a);
    for _ in 0..KRYLOV_REFINEMENT_STEPS {
        let r = &d - &a.mul_vec(&x);
        if r.norm() <= 4.0 * f64::EPSILON * (d.norm() + a_norm * x.norm()) {
            break;
        }
        match solve(&r) {
            Ok(correction) => {
                x.axpy(1.0, &correction.solution);
                iterations += correction.iterations;
            }
            // Best effort: the uncorrected x already passed the solver's
            // convergence gate.
            Err(_) => break,
        }
    }
    Ok((finish_direct(&x)?, iterations))
}

/// Maximum-absolute-row-sum norm of a CSR matrix.
fn a_norm_inf(a: &CsrMatrix) -> f64 {
    let mut norm = 0.0f64;
    for i in 0..a.nrows() {
        let row_sum: f64 = a.row(i).map(|(_, v)| v.abs()).sum();
        norm = norm.max(row_sum);
    }
    norm
}

/// Power iteration `π ← π(I + G/Λ)` on the uniformized chain, matrix-free
/// over the CSR storage.
fn sparse_power(
    generator: &SparseGenerator,
    tolerance: f64,
    max_iterations: usize,
) -> Result<(DVector, usize), CtmcError> {
    let n = generator.n_states();
    let lambda = uniformization_constant(generator)?;
    let mut pi = DVector::constant(n, 1.0 / n as f64);
    for sweep in 1..=max_iterations {
        let next = generator.uniformized_step(&pi, lambda);
        let update = (&next - &pi).norm_inf();
        pi = next;
        if update <= tolerance {
            return Ok((sanitize(pi)?, sweep));
        }
    }
    Err(CtmcError::Numerical(
        dpm_linalg::LinalgError::NotConverged {
            iterations: max_iterations,
            residual: residual_sparse(generator, &pi),
        },
    ))
}

/// Gauss–Seidel on the balance equations: sweep
/// `π_i ← (Σ_{j≠i} π_j G_{ji}) / exit_i` over the rows of `Gᵀ`,
/// renormalizing each sweep.
///
/// Unlike iterating the uniformized chain, the relaxation divides by each
/// state's own exit rate, so convergence does not degrade when rates span
/// many orders of magnitude (the instant-rate surrogate makes SYS
/// generators exactly that stiff).
fn sparse_gauss_seidel(
    generator: &SparseGenerator,
    tolerance: f64,
    max_iterations: usize,
) -> Result<(DVector, usize), CtmcError> {
    let n = generator.n_states();
    for i in 0..n {
        if generator.exit_rate(i) <= 0.0 {
            return Err(CtmcError::InvalidParameter {
                reason: format!(
                    "state {i} has zero exit rate; the iterative solver requires an irreducible chain"
                ),
            });
        }
    }
    let transpose = generator.csr().transpose();
    let mut pi = DVector::constant(n, 1.0 / n as f64);
    let mut previous = pi.clone();
    for sweep in 1..=max_iterations {
        for i in 0..n {
            let mut inflow = 0.0;
            for (j, rate) in transpose.row(i) {
                if j != i {
                    inflow += rate * pi[j];
                }
            }
            pi[i] = inflow / generator.exit_rate(i);
        }
        let sum = pi.sum();
        if !(sum.is_finite() && sum > 0.0) {
            return Err(CtmcError::Numerical(
                dpm_linalg::LinalgError::InvalidInput {
                    reason: format!("Gauss–Seidel sweep produced probability mass {sum}"),
                },
            ));
        }
        pi.scale_mut(1.0 / sum);
        let update = (&pi - &previous).norm_inf();
        if update <= tolerance {
            return Ok((sanitize(pi)?, sweep));
        }
        previous = pi.clone();
    }
    Err(CtmcError::Numerical(
        dpm_linalg::LinalgError::NotConverged {
            iterations: max_iterations,
            residual: residual_sparse(generator, &pi),
        },
    ))
}

/// Residual `‖πG‖_∞` over the sparse representation.
///
/// # Panics
///
/// Panics if `pi.len() != generator.n_states()`.
#[must_use]
pub fn residual_sparse(generator: &SparseGenerator, pi: &DVector) -> f64 {
    generator.csr().vec_mul(pi).norm_inf()
}

/// Dense direct solve: replace the last balance equation with the
/// normalization constraint and LU-factorize.
fn dense_lu(generator: &Generator) -> Result<DVector, CtmcError> {
    let n = generator.n_states();
    // πG = 0  ⟺  Gᵀ πᵀ = 0. Replace the last row of Gᵀ with 1s and solve
    // against e_{n-1} to impose Σπ = 1.
    let gt = generator.matrix().transpose();
    let mut a = gt;
    for c in 0..n {
        a[(n - 1, c)] = 1.0;
    }
    let mut b = DVector::zeros(n);
    b[n - 1] = 1.0;
    let pi = a.lu()?.solve(&b)?;
    sanitize(pi)
}

/// Dense GTH elimination via uniformization.
fn dense_gth(generator: &Generator) -> Result<DVector, CtmcError> {
    let (dtmc, _) = generator.uniformize(UNIFORMIZATION_MARGIN)?;
    dtmc.stationary_gth()
}

/// Dense power iteration on the uniformized chain.
fn dense_power(
    generator: &Generator,
    tolerance: f64,
    max_iterations: usize,
) -> Result<DVector, CtmcError> {
    let (dtmc, _) = generator.uniformize(UNIFORMIZATION_MARGIN)?;
    dtmc.stationary_power(tolerance, max_iterations)
}

/// Residual `‖πG‖_∞` of a candidate stationary vector — a cheap a-posteriori
/// accuracy check used by tests and benches.
///
/// # Panics
///
/// Panics if `pi.len() != generator.n_states()`.
#[must_use]
pub fn residual(generator: &Generator, pi: &DVector) -> f64 {
    generator.matrix().vec_mul(pi).norm_inf()
}

/// Expected long-run cost rate `π · c` for per-state cost rates `c`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn long_run_average(pi: &DVector, cost_rates: &DVector) -> f64 {
    pi.dot(cost_rates)
}

/// Long-run average of per-state cost rates `c` for a *unichain* chain
/// (a single recurrent class plus arbitrarily many transient states),
/// obtained from the gain/bias equations `c − g·1 + G v = 0`, `v_0 = 0`.
///
/// Unlike [`long_run_average`] this does not need the chain to be
/// irreducible — policies that make parts of a decision process
/// unreachable still have a well-defined average cost.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] on a length mismatch and
/// [`CtmcError::Numerical`] if the equations are singular (multichain).
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{stationary, Generator};
/// use dpm_linalg::DVector;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// // State 0 is transient: 0 -> 1 <-> 2.
/// let g = Generator::builder(3)
///     .rate(0, 1, 1.0)
///     .rate(1, 2, 1.0)
///     .rate(2, 1, 1.0)
///     .build()?;
/// let costs = DVector::from_vec(vec![100.0, 2.0, 4.0]);
/// // Long run: half the time in 1, half in 2; state 0 never returns.
/// let avg = stationary::unichain_average(&g, &costs)?;
/// assert!((avg - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn unichain_average(generator: &Generator, costs: &DVector) -> Result<f64, CtmcError> {
    let n = generator.n_states();
    if costs.len() != n {
        return Err(CtmcError::InvalidParameter {
            reason: format!("cost vector length {} != {n}", costs.len()),
        });
    }
    // Unknowns x = (g, v_1, ..., v_{n-1}) with v_0 = 0; equation per state:
    //   -g + Σ_j G_ij v_j = -c_i
    let mut a = dpm_linalg::DMatrix::zeros(n, n);
    let mut b = DVector::zeros(n);
    for i in 0..n {
        a[(i, 0)] = -1.0;
        for j in 1..n {
            a[(i, j)] = generator.rate(i, j);
        }
        b[i] = -costs[i];
    }
    let x = a.lu().map_err(CtmcError::Numerical)?.solve(&b)?;
    Ok(x[0])
}

/// Per-state long-run average cost (the *gain vector*) for an arbitrary —
/// possibly multichain — finite chain.
///
/// For a state in a closed (recurrent) communicating class the gain is the
/// class's stationary average of `costs`; for a transient state it is the
/// absorption-probability-weighted mixture of the reachable classes' gains,
/// obtained by solving `G_TT g_T = −G_TR g_R`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] on a length mismatch and
/// propagates solver failures.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{stationary, Generator};
/// use dpm_linalg::DVector;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// // State 0 splits between two absorbing states with different costs.
/// let g = Generator::builder(3)
///     .rate(0, 1, 1.0)
///     .rate(0, 2, 3.0)
///     .build()?;
/// let costs = DVector::from_vec(vec![0.0, 8.0, 4.0]);
/// let gains = stationary::gain_vector(&g, &costs)?;
/// // P(absorb in 1) = 1/4, P(absorb in 2) = 3/4.
/// assert!((gains[0] - (0.25 * 8.0 + 0.75 * 4.0)).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn gain_vector(generator: &Generator, costs: &DVector) -> Result<DVector, CtmcError> {
    let n = generator.n_states();
    if costs.len() != n {
        return Err(CtmcError::InvalidParameter {
            reason: format!("cost vector length {} != {n}", costs.len()),
        });
    }
    let classes = graph::communicating_classes(generator);
    // A class is closed iff no transition leaves it.
    let mut closed = vec![true; classes.len()];
    for (from, to, _) in generator.transitions() {
        if classes.class_of(from) != classes.class_of(to) {
            closed[classes.class_of(from)] = false;
        }
    }

    let mut gains = DVector::zeros(n);
    let mut is_recurrent = vec![false; n];
    for (c, &is_closed) in closed.iter().enumerate() {
        if !is_closed {
            continue;
        }
        let members = classes.members(c);
        let gain = if members.len() == 1 {
            costs[members[0]]
        } else {
            // Restrict the generator to the closed class (self-contained by
            // closedness) and solve its stationary distribution.
            let mut b = Generator::builder(members.len());
            for (local_from, &from) in members.iter().enumerate() {
                for (local_to, &to) in members.iter().enumerate() {
                    if from != to {
                        let r = generator.rate(from, to);
                        if r > 0.0 {
                            b.add_rate(local_from, local_to, r);
                        }
                    }
                }
            }
            let sub = b.build()?;
            // Closed-class sub-generators inherit whatever conditioning the
            // policy induced; escalate through the fallback chain rather
            // than letting one ill-conditioned class abort the evaluation.
            let (pi, _) = Solver::new(FALLBACK_CHAIN[0])
                .with_default_fallback()
                .solve(&sub)?;
            members
                .iter()
                .enumerate()
                .map(|(local, &global)| pi[local] * costs[global])
                .sum()
        };
        for &state in members {
            gains[state] = gain;
            is_recurrent[state] = true;
        }
    }

    // Transient states: G_TT g_T = -G_TR g_R.
    let transient: Vec<usize> = (0..n).filter(|&i| !is_recurrent[i]).collect();
    if !transient.is_empty() {
        let t = transient.len();
        let mut a = dpm_linalg::DMatrix::zeros(t, t);
        let mut b = DVector::zeros(t);
        for (row, &i) in transient.iter().enumerate() {
            for (col, &j) in transient.iter().enumerate() {
                a[(row, col)] = generator.rate(i, j);
            }
            let mut rhs = 0.0;
            for j in 0..n {
                if is_recurrent[j] && j != i {
                    rhs -= generator.rate(i, j) * gains[j];
                }
            }
            b[row] = rhs;
        }
        let g_t = a.lu().map_err(CtmcError::Numerical)?.solve(&b)?;
        for (row, &i) in transient.iter().enumerate() {
            gains[i] = g_t[row];
        }
    }

    Ok(gains)
}

fn sanitize(mut pi: DVector) -> Result<DVector, CtmcError> {
    // Clamp tiny negative round-off and renormalize.
    for x in pi.as_mut_slice() {
        if *x < 0.0 {
            if *x < -1e-8 {
                return Err(CtmcError::Numerical(
                    dpm_linalg::LinalgError::InvalidInput {
                        reason: format!("stationary solve produced negative probability {x}"),
                    },
                ));
            }
            *x = 0.0;
        }
    }
    pi.normalize_l1().map_err(CtmcError::Numerical)?;
    Ok(pi)
}

/// Builds the generator of an M/M/1/K queue — used by tests to compare the
/// numeric solvers against closed forms.
///
/// State `i` holds `i` customers; arrivals at rate `lambda` (blocked at
/// `K`), services at rate `mu`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] if `capacity == 0` or a rate is
/// not positive.
pub fn mm1k_generator(lambda: f64, mu: f64, capacity: usize) -> Result<Generator, CtmcError> {
    if capacity == 0 {
        return Err(CtmcError::InvalidParameter {
            reason: "queue capacity must be at least 1".to_owned(),
        });
    }
    if lambda <= 0.0 || mu <= 0.0 {
        return Err(CtmcError::InvalidParameter {
            reason: format!("rates must be positive, got lambda={lambda}, mu={mu}"),
        });
    }
    let mut b = Generator::builder(capacity + 1);
    for i in 0..capacity {
        b.add_rate(i, i + 1, lambda);
        b.add_rate(i + 1, i, mu);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::birth_death;

    fn three_state() -> Generator {
        Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 1.0)
            .rate(2, 0, 4.0)
            .rate(1, 0, 0.5)
            .build()
            .unwrap()
    }

    fn pi_of(method: Method, g: &Generator) -> DVector {
        Solver::new(method).solve(g).unwrap().0
    }

    #[test]
    fn lu_satisfies_balance() {
        let g = three_state();
        let pi = pi_of(Method::Lu, &g);
        assert!(residual(&g, &pi) < 1e-12);
        assert!((pi.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direct_solvers_agree() {
        let g = three_state();
        let lu = pi_of(Method::Lu, &g);
        let gth = pi_of(Method::Gth, &g);
        let pow = Solver::new(Method::Power)
            .tolerance(1e-14)
            .max_iters(1_000_000)
            .solve(&g)
            .unwrap()
            .0;
        assert!((&lu - &gth).norm_inf() < 1e-10);
        assert!((&lu - &pow).norm_inf() < 1e-8);
    }

    #[test]
    fn matches_mm1k_closed_form() {
        let lambda = 0.4;
        let mu = 1.0;
        let k = 6;
        let g = mm1k_generator(lambda, mu, k).unwrap();
        let pi = pi_of(Method::Gth, &g);
        let closed = birth_death::Mm1k::new(lambda, mu, k).unwrap();
        for i in 0..=k {
            assert!(
                (pi[i] - closed.probability(i)).abs() < 1e-12,
                "state {i}: {} vs {}",
                pi[i],
                closed.probability(i)
            );
        }
    }

    #[test]
    fn gth_is_stable_on_stiff_chain() {
        // Rates spanning 8 orders of magnitude.
        let g = Generator::builder(3)
            .rate(0, 1, 1e-4)
            .rate(1, 2, 1e4)
            .rate(2, 0, 1.0)
            .build()
            .unwrap();
        let pi = pi_of(Method::Gth, &g);
        assert!(residual(&g, &pi) < 1e-9);
    }

    #[test]
    fn checked_rejects_reducible() {
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .rate(1, 2, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            Solver::new(Method::Gth).check_irreducible().solve(&g),
            Err(CtmcError::Reducible { classes: 2 })
        ));
    }

    #[test]
    fn checked_rejects_reducible_sparse() {
        let g =
            SparseGenerator::from_transitions(3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(matches!(
            Solver::new(Method::BiCgStab).check_irreducible().solve(&g),
            Err(CtmcError::Reducible { classes: 2 })
        ));
    }

    /// Reducible with a unique stationary distribution: `{0,1}` is
    /// transient, `{2,3}` the single closed class, every state keeps a
    /// positive exit rate so Gauss–Seidel stays applicable.
    fn sparse_reducible_unichain() -> SparseGenerator {
        SparseGenerator::from_transitions(
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 2, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn krylov_guard_escalates_to_gauss_seidel_on_reducible() {
        let g = sparse_reducible_unichain();
        let (pi, stats) = Solver::new(Method::BiCgStab).solve(&g).unwrap();
        // The guard swapped the reducible Krylov dispatch for Gauss–Seidel
        // and recorded the escalation.
        assert_eq!(stats.method(), Method::Iterative);
        assert!(stats.escalated());
        assert_eq!(stats.escalation()[0].0, Method::BiCgStab);
        assert!(stats.escalation()[0].1.contains("reducible"));
        // Hand-balanced reference: mass concentrates on the closed class
        // `{2,3}` with detailed balance `2 π₂ = π₃`.
        let reference = [0.0, 0.0, 1.0 / 3.0, 2.0 / 3.0];
        for i in 0..4 {
            assert!((pi[i] - reference[i]).abs() < 1e-8, "state {i}: {}", pi[i]);
        }
    }

    #[test]
    fn krylov_guard_leaves_irreducible_chains_alone() {
        let g = SparseGenerator::from_generator(&three_state());
        let (_, stats) = Solver::new(Method::BiCgStab).solve(&g).unwrap();
        assert_eq!(stats.method(), Method::BiCgStab);
        assert!(!stats.escalated());
    }

    #[test]
    fn krylov_guard_reshapes_the_fallback_chain() {
        let g = sparse_reducible_unichain();
        let (pi, stats) = Solver::new(Method::BiCgStab)
            .with_default_fallback()
            .solve(&g)
            .unwrap();
        // BiCGSTAB (and every other Krylov member) was never dispatched;
        // the escalation log leads with the guard's entry.
        assert!(stats
            .escalation()
            .iter()
            .any(|(m, why)| { *m == Method::BiCgStab && why.contains("reducible") }));
        assert!(!stats.method().is_krylov());
        assert!((pi.sum() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn checked_accepts_irreducible() {
        let (pi, _) = Solver::new(Method::Gth)
            .check_irreducible()
            .solve(&three_state())
            .unwrap();
        assert!((pi.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_run_average_weights_costs() {
        let pi = DVector::from_vec(vec![0.25, 0.75]);
        let c = DVector::from_vec(vec![40.0, 0.0]);
        assert_eq!(long_run_average(&pi, &c), 10.0);
    }

    #[test]
    fn mm1k_generator_validates() {
        assert!(mm1k_generator(0.0, 1.0, 3).is_err());
        assert!(mm1k_generator(1.0, 1.0, 0).is_err());
    }
}

#[cfg(test)]
mod solver_api_tests {
    use super::*;
    use crate::birth_death;

    const ALL_METHODS: [Method; 6] = [
        Method::Lu,
        Method::Gth,
        Method::Power,
        Method::Iterative,
        Method::BiCgStab,
        Method::Gmres,
    ];

    fn three_state() -> Generator {
        Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 1.0)
            .rate(2, 0, 4.0)
            .rate(1, 0, 0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn all_methods_agree_dense() {
        let g = three_state();
        let (reference, _) = Solver::new(Method::Gth).solve(&g).unwrap();
        for method in ALL_METHODS {
            let (pi, _) = Solver::new(method).solve(&g).unwrap();
            assert!(
                (&pi - &reference).norm_inf() < 1e-8,
                "{method:?} diverges from GTH"
            );
        }
    }

    #[test]
    fn all_methods_agree_sparse() {
        let g = three_state();
        let sparse = SparseGenerator::from_generator(&g);
        let (reference, _) = Solver::new(Method::Gth).solve(&g).unwrap();
        for method in ALL_METHODS {
            let (pi, _) = Solver::new(method).solve(&sparse).unwrap();
            assert!(
                (&pi - &reference).norm_inf() < 1e-8,
                "sparse {method:?} diverges from dense GTH"
            );
        }
    }

    #[test]
    fn default_method_is_gth() {
        assert_eq!(Method::default(), Method::Gth);
    }

    #[test]
    fn method_names_round_trip() {
        for method in ALL_METHODS {
            assert_eq!(Method::parse(method.name()), Some(method));
        }
        assert_eq!(Method::parse("qr"), None);
        for precond in [Precond::None, Precond::Ilu0] {
            assert_eq!(Precond::parse(precond.name()), Some(precond));
        }
        assert_eq!(Precond::parse("ssor"), None);
    }

    #[test]
    fn sparse_direct_no_longer_densifies_semantics() {
        // A chain big enough that the old densifying path would be O(n²)
        // memory; the sparse direct path must solve it and agree with the
        // iterative tier.
        let n = 2_000;
        let mut transitions = Vec::new();
        for i in 0..n - 1 {
            transitions.push((i, i + 1, 0.8));
            transitions.push((i + 1, i, 1.0));
        }
        transitions.push((n - 1, 0, 0.05));
        let g = SparseGenerator::from_transitions(n, &transitions).unwrap();
        let (lu, _) = Solver::new(Method::Lu).solve(&g).unwrap();
        let (gth, _) = Solver::new(Method::Gth).solve(&g).unwrap();
        let (krylov, _) = Solver::new(Method::BiCgStab).solve(&g).unwrap();
        assert!((&lu - &gth).norm_inf() < 1e-10);
        assert!((&lu - &krylov).norm_inf() < 1e-8);
        assert!(residual_sparse(&g, &lu) < 1e-10);
    }

    #[test]
    fn krylov_handles_stiff_chain() {
        // Rates spanning 8 orders of magnitude.
        let g = Generator::builder(3)
            .rate(0, 1, 1e-4)
            .rate(1, 2, 1e4)
            .rate(2, 0, 1.0)
            .build()
            .unwrap();
        let sparse = SparseGenerator::from_generator(&g);
        let (reference, _) = Solver::new(Method::Gth).solve(&g).unwrap();
        for method in [Method::BiCgStab, Method::Gmres] {
            let (pi, _) = Solver::new(method).solve(&sparse).unwrap();
            assert!(
                (&pi - &reference).norm_inf() < 1e-8,
                "{method:?} on stiff chain"
            );
        }
    }

    #[test]
    fn krylov_precond_none_matches_ilu0() {
        let g = mm1k_generator(0.7, 1.0, 30).unwrap();
        let sparse = SparseGenerator::from_generator(&g);
        let (with_ilu, _) = Solver::new(Method::Gmres).solve(&sparse).unwrap();
        let (without, _) = Solver::new(Method::Gmres)
            .precond(Precond::None)
            .solve(&sparse)
            .unwrap();
        assert!((&with_ilu - &without).norm_inf() < 1e-9);
    }

    #[test]
    fn krylov_reports_iterations_in_sweeps() {
        let g = mm1k_generator(0.6, 1.0, 50).unwrap();
        let sparse = SparseGenerator::from_generator(&g);
        for method in [Method::BiCgStab, Method::Gmres] {
            let (_, stats) = Solver::new(method).solve(&sparse).unwrap();
            assert!(stats.sweeps() > 0, "{method:?} reported no iterations");
        }
    }

    #[test]
    fn krylov_rejects_empty_chain() {
        let g = SparseGenerator::from_transitions(3, &[]).unwrap();
        for method in [Method::BiCgStab, Method::Gmres] {
            assert!(matches!(
                Solver::new(method).solve(&g),
                Err(CtmcError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn single_state_chain_is_trivial() {
        let g = SparseGenerator::from_transitions(1, &[]).unwrap();
        for method in [Method::Lu, Method::BiCgStab, Method::Gmres] {
            let (pi, _) = Solver::new(method).solve(&g).unwrap();
            assert_eq!(pi.as_slice(), &[1.0]);
        }
    }

    #[test]
    fn iterative_handles_stiff_chain() {
        let g = Generator::builder(3)
            .rate(0, 1, 1e-4)
            .rate(1, 2, 1e4)
            .rate(2, 0, 1.0)
            .build()
            .unwrap();
        let sparse = SparseGenerator::from_generator(&g);
        let (pi, _) = Solver::new(Method::Iterative).solve(&sparse).unwrap();
        let (reference, _) = Solver::new(Method::Gth).solve(&g).unwrap();
        assert!((&pi - &reference).norm_inf() < 1e-8);
        assert!(residual_sparse(&sparse, &pi) < 1e-7);
    }

    #[test]
    fn iterative_matches_mm1k_closed_form() {
        let lambda = 0.4;
        let mu = 1.0;
        let k = 40;
        let g = mm1k_generator(lambda, mu, k).unwrap();
        let (pi, _) = Solver::new(Method::Iterative).solve(&g).unwrap();
        let closed = birth_death::Mm1k::new(lambda, mu, k).unwrap();
        for i in 0..=k {
            assert!((pi[i] - closed.probability(i)).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn iterative_rejects_absorbing_state() {
        let g = SparseGenerator::from_transitions(2, &[(0, 1, 1.0)]).unwrap();
        assert!(matches!(
            Solver::new(Method::Iterative).solve(&g),
            Err(CtmcError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn power_rejects_empty_chain() {
        let g = SparseGenerator::from_transitions(2, &[]).unwrap();
        assert!(matches!(
            Solver::new(Method::Power).solve(&g),
            Err(CtmcError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn stats_report_sweeps_and_residual() {
        let g = three_state();
        let sparse = SparseGenerator::from_generator(&g);
        for method in [Method::Power, Method::Iterative] {
            let (pi, stats) = Solver::new(method).solve(&sparse).unwrap();
            assert_eq!(stats.method(), method);
            assert!(stats.sweeps() > 0, "{method:?} reported no sweeps");
            assert!(stats.residual() < 1e-8, "{method:?}: {}", stats.residual());
            assert!((stats.residual() - residual_sparse(&sparse, &pi)).abs() < 1e-15);
        }
    }

    #[test]
    fn direct_methods_report_zero_sweeps() {
        let g = three_state();
        let sparse = SparseGenerator::from_generator(&g);
        for method in [Method::Lu, Method::Gth] {
            let (_, stats) = Solver::new(method).solve(&sparse).unwrap();
            assert_eq!(stats.sweeps(), 0);
            assert!(stats.residual() < 1e-10);
        }
        let (_, dense_stats) = Solver::new(Method::Lu).solve(&g).unwrap();
        assert_eq!(dense_stats.sweeps(), 0);
        assert!(dense_stats.residual() < 1e-10);
    }

    #[test]
    fn solver_is_reusable_across_generators() {
        let solver = Solver::new(Method::BiCgStab).tolerance(1e-13);
        let a = three_state();
        let b = mm1k_generator(0.5, 1.0, 10).unwrap();
        let (pi_a, _) = solver.solve(&a).unwrap();
        let (pi_b, _) = solver.solve(&b).unwrap();
        assert!((pi_a.sum() - 1.0).abs() < 1e-12);
        assert!((pi_b.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn results_are_deterministic() {
        let g = mm1k_generator(0.9, 1.0, 60).unwrap();
        let sparse = SparseGenerator::from_generator(&g);
        for method in ALL_METHODS {
            let first = Solver::new(method).solve(&sparse).unwrap();
            let second = Solver::new(method).solve(&sparse).unwrap();
            assert_eq!(first.0, second.0, "{method:?} is not deterministic");
        }
    }
}

#[cfg(test)]
mod fallback_tests {
    use super::*;

    fn three_state() -> Generator {
        Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 1.0)
            .rate(2, 0, 4.0)
            .rate(1, 0, 0.5)
            .build()
            .unwrap()
    }

    fn dense_fallback(g: &Generator) -> Result<(DVector, SolveStats), CtmcError> {
        Solver::new(FALLBACK_CHAIN[0])
            .with_default_fallback()
            .solve(g)
    }

    fn sparse_fallback(g: &SparseGenerator) -> Result<(DVector, SolveStats), CtmcError> {
        Solver::new(SPARSE_FALLBACK_CHAIN[0])
            .with_default_fallback()
            .solve(g)
    }

    /// Two disjoint 2-state recurrent classes: the LU system is singular
    /// and GTH elimination degenerates, but a stationary distribution
    /// (a mixture over the classes) still exists.
    fn reducible_two_classes() -> Generator {
        Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 2.0)
            .rate(2, 3, 3.0)
            .rate(3, 2, 1.0)
            .build()
            .unwrap()
    }

    /// Two 2-state clusters tied by 1e-9 coupling rates: irreducible, but
    /// the subdominant mode decays so slowly that Gauss–Seidel cannot
    /// converge within its budget.
    fn near_reducible() -> Generator {
        Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 2.0)
            .rate(2, 3, 3.0)
            .rate(3, 2, 1.0)
            .rate(1, 2, 1e-9)
            .rate(2, 1, 1e-9)
            .build()
            .unwrap()
    }

    fn assert_valid_distribution(pi: &DVector) {
        for x in pi.iter() {
            assert!(x.is_finite() && x >= 0.0, "bad probability {x}");
        }
        assert!((pi.sum() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn well_conditioned_chain_takes_first_method() {
        let g = three_state();
        let (pi, stats) = dense_fallback(&g).unwrap();
        assert_eq!(stats.method(), Method::Lu);
        assert!(!stats.escalated());
        let (gth, _) = Solver::new(Method::Gth).solve(&g).unwrap();
        assert!((&pi - &gth).norm_inf() < 1e-10);
    }

    #[test]
    fn sparse_chain_leads_with_krylov() {
        let g = SparseGenerator::from_generator(&three_state());
        let (pi, stats) = sparse_fallback(&g).unwrap();
        assert_eq!(stats.method(), Method::BiCgStab);
        assert!(!stats.escalated());
        assert_valid_distribution(&pi);
    }

    #[test]
    fn custom_chain_is_respected() {
        let g = three_state();
        let (_, stats) = Solver::new(Method::Power)
            .tolerance(1e-13)
            .fallback(&[Method::Gth])
            .solve(&g)
            .unwrap();
        // Power converges here, so it wins before the chain continues.
        assert_eq!(stats.method(), Method::Power);
    }

    #[test]
    fn reducible_chain_escalates_past_singular_lu() {
        let g = reducible_two_classes();
        // The direct path rejects this outright...
        assert!(matches!(
            Solver::new(Method::Lu).solve(&g),
            Err(CtmcError::Numerical(
                dpm_linalg::LinalgError::Singular { .. }
            ))
        ));
        // ...but the fallback chain still produces a stationary mixture.
        let (pi, stats) = dense_fallback(&g).unwrap();
        assert_valid_distribution(&pi);
        assert!(residual(&g, &pi) < 1e-8);
        assert!(stats.escalated());
        let tried: Vec<Method> = stats.escalation().iter().map(|(m, _)| *m).collect();
        assert!(tried.contains(&Method::Lu), "escalation {tried:?}");
        assert_ne!(stats.method(), Method::Lu);
    }

    #[test]
    fn near_reducible_chain_defeats_iterative_but_not_fallback() {
        let g = near_reducible();
        let sparse = SparseGenerator::from_generator(&g);
        // The iterative path alone gives up with the final residual in the
        // error (small: "almost converged", not diverged).
        match Solver::new(Method::Iterative).solve(&sparse) {
            Err(CtmcError::Numerical(dpm_linalg::LinalgError::NotConverged {
                residual, ..
            })) => assert!(
                residual.is_finite() && residual < 1.0,
                "residual {residual}"
            ),
            other => panic!("expected NotConverged, got {other:?}"),
        }
        // The fallback chain solves it: preconditioned BiCGSTAB handles the
        // 1e-9 coupling (ILU(0) on the 3×3 reduced system is nearly exact),
        // and sparse LU backs it up.
        let (pi, stats) = sparse_fallback(&sparse).unwrap();
        assert_valid_distribution(&pi);
        assert!(residual_sparse(&sparse, &pi) < 1e-10);
        assert!(
            matches!(stats.method(), Method::BiCgStab | Method::Lu),
            "unexpected winner {:?}",
            stats.method()
        );
    }

    #[test]
    fn stiff_chain_solves_within_scaled_residual_bound() {
        // Rate ratio 1e9.
        let g = Generator::builder(3)
            .rate(0, 1, 1e-4)
            .rate(1, 2, 1e5)
            .rate(2, 0, 1.0)
            .build()
            .unwrap();
        let (pi, stats) = dense_fallback(&g).unwrap();
        assert_valid_distribution(&pi);
        assert!(stats.residual() <= FALLBACK_RESIDUAL_SLACK * 1e5 * 1.05);
        let sparse = SparseGenerator::from_generator(&g);
        let (pi_s, _) = sparse_fallback(&sparse).unwrap();
        assert!((&pi - &pi_s).norm_inf() < 1e-8);
    }

    #[test]
    fn exhaustion_reports_every_attempt() {
        // An empty chain: no method can make progress, so every chain
        // member must appear in the error with its reason.
        let g = SparseGenerator::from_transitions(3, &[]).unwrap();
        let err = sparse_fallback(&g).unwrap_err();
        match err {
            CtmcError::FallbackExhausted { attempts } => {
                assert_eq!(attempts.len(), SPARSE_FALLBACK_CHAIN.len());
                for (method, reason) in &attempts {
                    assert!(!method.is_empty() && !reason.is_empty());
                }
            }
            other => panic!("expected FallbackExhausted, got {other:?}"),
        }
    }

    #[test]
    fn gain_vector_survives_reducible_closed_classes() {
        let g = reducible_two_classes();
        let c = DVector::from_vec(vec![2.0, 4.0, 0.0, 8.0]);
        let gains = gain_vector(&g, &c).unwrap();
        // Class {0,1}: π = (2/3, 1/3) → gain 8/3; class {2,3}: π = (1/4, 3/4) → 6.
        assert!((gains[0] - 8.0 / 3.0).abs() < 1e-10);
        assert!((gains[2] - 6.0).abs() < 1e-10);
    }
}

#[cfg(test)]
mod unichain_tests {
    use super::*;

    fn lu_pi(g: &Generator) -> DVector {
        Solver::new(Method::Lu).solve(g).unwrap().0
    }

    #[test]
    fn unichain_average_matches_irreducible_solution() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 3.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![4.0, 0.0]);
        let via_pi = long_run_average(&lu_pi(&g), &c);
        let via_gain = unichain_average(&g, &c).unwrap();
        assert!((via_pi - via_gain).abs() < 1e-12);
    }

    #[test]
    fn unichain_average_ignores_transient_costs() {
        let g = Generator::builder(3)
            .rate(0, 1, 5.0)
            .rate(1, 2, 1.0)
            .rate(2, 1, 1.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![1e9, 1.0, 3.0]);
        assert!((unichain_average(&g, &c).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unichain_average_of_absorbing_state() {
        let g = Generator::builder(2).rate(0, 1, 2.0).build().unwrap();
        let c = DVector::from_vec(vec![7.0, 1.5]);
        assert!((unichain_average(&g, &c).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unichain_average_validates_length() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        assert!(unichain_average(&g, &DVector::zeros(3)).is_err());
    }

    #[test]
    fn unichain_average_rejects_multichain() {
        // Two disjoint recurrent classes: 0<->1 and 2<->3.
        let g = Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .rate(2, 3, 1.0)
            .rate(3, 2, 1.0)
            .build()
            .unwrap();
        assert!(unichain_average(&g, &DVector::zeros(4)).is_err());
    }
}

#[cfg(test)]
mod gain_vector_tests {
    use super::*;

    #[test]
    fn gain_vector_matches_unichain_average_on_unichain_chains() {
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(1, 2, 2.0)
            .rate(2, 1, 1.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![5.0, 1.0, 4.0]);
        let gains = gain_vector(&g, &c).unwrap();
        let scalar = unichain_average(&g, &c).unwrap();
        for i in 0..3 {
            assert!((gains[i] - scalar).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn gain_vector_separates_disjoint_classes() {
        let g = Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .rate(2, 3, 1.0)
            .rate(3, 2, 3.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![2.0, 4.0, 0.0, 8.0]);
        let gains = gain_vector(&g, &c).unwrap();
        assert!((gains[0] - 3.0).abs() < 1e-10);
        assert!((gains[1] - 3.0).abs() < 1e-10);
        // Class {2, 3}: pi = (3/4, 1/4); gain = 2.
        assert!((gains[2] - 2.0).abs() < 1e-10);
        assert!((gains[3] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn transient_gains_weight_absorption_probabilities() {
        // 0 -> 1 (rate 1), 0 -> 2 (rate 3); both absorbing.
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(0, 2, 3.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![100.0, 8.0, 4.0]);
        let gains = gain_vector(&g, &c).unwrap();
        assert!((gains[0] - 5.0).abs() < 1e-10);
        assert_eq!(gains[1], 8.0);
        assert_eq!(gains[2], 4.0);
    }

    #[test]
    fn chained_transient_states_propagate() {
        // 0 -> 1 -> 2 (absorbing, cost 7).
        let g = Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 5.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![0.0, 0.0, 7.0]);
        let gains = gain_vector(&g, &c).unwrap();
        assert!((gains[0] - 7.0).abs() < 1e-10);
        assert!((gains[1] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn gain_vector_validates_length() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        assert!(gain_vector(&g, &DVector::zeros(3)).is_err());
    }
}
