//! Limiting (stationary) distributions of irreducible CTMCs.
//!
//! Theorem 2.1 of the paper: for an irreducible, positive-recurrent chain
//! the limiting distribution is the unique solution of `πG = 0`,
//! `Σ_j π_j = 1`. Three solvers are provided with different
//! accuracy/robustness/speed trade-offs:
//!
//! * [`solve_lu`] — direct dense solve; fast and exact to rounding for
//!   well-conditioned chains;
//! * [`solve_gth`] — Grassmann–Taksar–Heyman elimination on the uniformized
//!   chain; subtraction-free, the method of choice for stiff chains (rates
//!   spanning many orders of magnitude, as power-managed systems have:
//!   wake-up rates vs. request rates);
//! * [`solve_power`] — power iteration on the uniformized chain; matrix-free
//!   apart from one dense multiply per step, useful as an independent
//!   cross-check.
//!
//! All of the above require irreducibility, which callers can check with
//! [`crate::graph::is_irreducible`]; [`solve_checked`] does so on your
//! behalf.
//!
//! # Unified entry point
//!
//! [`solve`] and [`solve_sparse`] select a backend via [`Method`] instead of
//! calling one of the per-algorithm free functions:
//!
//! ```
//! use dpm_ctmc::{stationary::{self, Method}, Generator};
//!
//! # fn main() -> Result<(), dpm_ctmc::CtmcError> {
//! let g = Generator::builder(2).rate(0, 1, 1.0).rate(1, 0, 3.0).build()?;
//! for method in [Method::Lu, Method::Gth, Method::Power, Method::Iterative] {
//!     let pi = stationary::solve(&g, method)?;
//!     assert!((pi[0] - 0.75).abs() < 1e-8);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The per-algorithm functions ([`solve_lu`], [`solve_gth`], [`solve_power`])
//! remain as thin wrappers for callers that need algorithm-specific knobs.

use dpm_linalg::DVector;

use crate::{graph, CtmcError, Generator, SparseGenerator};

/// Margin applied to the uniformization constant by the GTH and power
/// solvers.
const UNIFORMIZATION_MARGIN: f64 = 1.05;

/// Default convergence tolerance (infinity norm of the per-sweep update)
/// for the iterative methods behind [`Method::Power`] and
/// [`Method::Iterative`].
pub const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Default iteration budget for the iterative methods.
pub const DEFAULT_MAX_ITERATIONS: usize = 1_000_000;

/// Solver backend selector for [`solve`] / [`solve_sparse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Direct dense LU solve of the balance equations. Exact to rounding;
    /// `O(n³)` time, `O(n²)` memory.
    Lu,
    /// Grassmann–Taksar–Heyman elimination on the uniformized chain.
    /// Subtraction-free, the most robust choice on stiff chains; same
    /// asymptotic cost as LU. The default.
    #[default]
    Gth,
    /// Power iteration on the uniformized chain. Matrix-free: `O(nnz)` per
    /// step on a sparse generator, but the step count grows with the
    /// chain's stiffness (the uniformization constant is dominated by the
    /// fastest rate).
    Power,
    /// Gauss–Seidel sweeps directly on the balance equations `πG = 0`,
    /// normalizing each sweep. `O(nnz)` per sweep and robust to stiffness
    /// (each state is relaxed against its own exit rate), making it the
    /// method of choice for large sparse-assembled generators.
    Iterative,
}

/// Diagnostics of one stationary solve — the telemetry layer's view of
/// what the solver did, alongside the distribution itself.
///
/// Produced by [`solve_with_stats`] / [`solve_sparse_with_stats`]. Direct
/// methods ([`Method::Lu`], [`Method::Gth`]) report zero sweeps; the
/// residual `‖πG‖_∞` is always computed a posteriori on the input
/// representation, so it is an independent accuracy certificate rather
/// than the solver's own stopping estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    method: Method,
    sweeps: usize,
    residual: f64,
    escalation: Vec<(Method, String)>,
}

impl SolveStats {
    /// The backend that produced the distribution.
    #[must_use]
    pub fn method(&self) -> Method {
        self.method
    }

    /// Iteration sweeps performed (0 for the direct methods).
    #[must_use]
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Final residual `‖πG‖_∞` of the returned distribution.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// The escalation path: backends tried and rejected (with the reason)
    /// before [`Self::method`] produced an acceptable distribution. Empty
    /// for the single-method entry points and for fallback solves where the
    /// first backend succeeded.
    #[must_use]
    pub fn escalation(&self) -> &[(Method, String)] {
        &self.escalation
    }

    /// Whether the solve had to escalate past its first-choice backend.
    #[must_use]
    pub fn escalated(&self) -> bool {
        !self.escalation.is_empty()
    }
}

/// Solves `πG = 0`, `Σπ = 1` with the selected backend.
///
/// This is the unified entry point; the per-algorithm free functions remain
/// for algorithm-specific tuning. [`Method::Power`] and [`Method::Iterative`]
/// run with [`DEFAULT_TOLERANCE`] and [`DEFAULT_MAX_ITERATIONS`].
///
/// # Errors
///
/// Propagates the selected backend's failure modes: singular systems for
/// [`Method::Lu`], degenerate elimination for [`Method::Gth`],
/// non-convergence for the iterative methods.
pub fn solve(generator: &Generator, method: Method) -> Result<DVector, CtmcError> {
    Ok(solve_inner(generator, method)?.0)
}

/// As [`solve`], additionally reporting sweep count and final residual.
///
/// # Errors
///
/// As [`solve`].
pub fn solve_with_stats(
    generator: &Generator,
    method: Method,
) -> Result<(DVector, SolveStats), CtmcError> {
    let (pi, sweeps) = solve_inner(generator, method)?;
    let stats = SolveStats {
        method,
        sweeps,
        residual: residual(generator, &pi),
        escalation: Vec::new(),
    };
    Ok((pi, stats))
}

fn solve_inner(generator: &Generator, method: Method) -> Result<(DVector, usize), CtmcError> {
    match method {
        Method::Lu => Ok((solve_lu(generator)?, 0)),
        Method::Gth => Ok((solve_gth(generator)?, 0)),
        Method::Power => Ok((
            solve_power(generator, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS)?,
            // The dense power path does not count its own steps; callers
            // who need the count use the sparse entry point.
            0,
        )),
        Method::Iterative => solve_sparse_inner(
            &SparseGenerator::from_generator(generator),
            Method::Iterative,
        ),
    }
}

/// Solves `πG = 0`, `Σπ = 1` on a sparse generator with the selected
/// backend.
///
/// [`Method::Power`] and [`Method::Iterative`] run entirely on the CSR
/// representation (`O(nnz)` per sweep); [`Method::Lu`] and [`Method::Gth`]
/// have no sparse formulation and densify first, which costs `O(n²)` memory
/// — they are intended for cross-checks at moderate sizes.
///
/// # Errors
///
/// As [`solve`], plus [`CtmcError::InvalidParameter`] if the chain has an
/// absorbing state or no transitions (the iterative methods need every
/// state to have a positive exit rate).
pub fn solve_sparse(generator: &SparseGenerator, method: Method) -> Result<DVector, CtmcError> {
    Ok(solve_sparse_inner(generator, method)?.0)
}

/// As [`solve_sparse`], additionally reporting sweep count and final
/// residual — the diagnostics the experiment harness records per task.
///
/// # Errors
///
/// As [`solve_sparse`].
pub fn solve_sparse_with_stats(
    generator: &SparseGenerator,
    method: Method,
) -> Result<(DVector, SolveStats), CtmcError> {
    let (pi, sweeps) = solve_sparse_inner(generator, method)?;
    let stats = SolveStats {
        method,
        sweeps,
        residual: residual_sparse(generator, &pi),
        escalation: Vec::new(),
    };
    Ok((pi, stats))
}

fn solve_sparse_inner(
    generator: &SparseGenerator,
    method: Method,
) -> Result<(DVector, usize), CtmcError> {
    match method {
        Method::Lu => Ok((solve_lu(&generator.to_generator()?)?, 0)),
        Method::Gth => Ok((solve_gth(&generator.to_generator()?)?, 0)),
        Method::Power => sparse_power(generator, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS),
        Method::Iterative => {
            sparse_gauss_seidel(generator, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS)
        }
    }
}

/// Ordered backend chain tried by [`solve_with_fallback`]: direct LU first
/// (fast, exact on well-conditioned chains), GTH second (subtraction-free,
/// survives stiffness), power iteration last (needs only that the
/// uniformized chain converges from a uniform start).
pub const FALLBACK_CHAIN: [Method; 3] = [Method::Lu, Method::Gth, Method::Power];

/// Ordered backend chain tried by [`solve_sparse_with_fallback`]. The
/// Gauss–Seidel pass slots in before power iteration: it is `O(nnz)` per
/// sweep and relaxes each state against its own exit rate, so it degrades
/// less on stiff chains.
pub const SPARSE_FALLBACK_CHAIN: [Method; 4] =
    [Method::Lu, Method::Gth, Method::Iterative, Method::Power];

/// Relative slack of the a-posteriori residual guard applied by the
/// fallback chains: a candidate π is accepted only when
/// `‖πG‖∞ ≤ slack · max(1, max exit rate)`.
const FALLBACK_RESIDUAL_SLACK: f64 = 1e-8;

/// Why a candidate distribution is unacceptable, or `None` if it passes
/// every guard (finite, nonnegative, sums to 1, small scaled residual).
fn distribution_flaw(pi: &DVector, residual: f64, scale: f64) -> Option<String> {
    for (i, x) in pi.iter().enumerate() {
        if !x.is_finite() {
            return Some(format!("non-finite probability {x} at state {i}"));
        }
        if x < 0.0 {
            return Some(format!("negative probability {x} at state {i}"));
        }
    }
    let sum = pi.sum();
    if (sum - 1.0).abs() > 1e-8 {
        return Some(format!("probability mass {sum} != 1"));
    }
    let bound = FALLBACK_RESIDUAL_SLACK * scale.max(1.0);
    if residual.is_nan() || residual > bound {
        return Some(format!("residual {residual:e} exceeds bound {bound:e}"));
    }
    None
}

fn run_fallback(
    methods: &[Method],
    scale: f64,
    mut attempt: impl FnMut(Method) -> Result<(DVector, usize), CtmcError>,
    residual_of: impl Fn(&DVector) -> f64,
) -> Result<(DVector, SolveStats), CtmcError> {
    let mut escalation: Vec<(Method, String)> = Vec::new();
    for &method in methods {
        match attempt(method) {
            Ok((pi, sweeps)) => {
                let res = residual_of(&pi);
                match distribution_flaw(&pi, res, scale) {
                    None => {
                        return Ok((
                            pi,
                            SolveStats {
                                method,
                                sweeps,
                                residual: res,
                                escalation,
                            },
                        ))
                    }
                    Some(flaw) => escalation.push((method, flaw)),
                }
            }
            Err(err) => escalation.push((method, err.to_string())),
        }
    }
    Err(CtmcError::FallbackExhausted {
        attempts: escalation
            .into_iter()
            .map(|(m, e)| (format!("{m:?}"), e))
            .collect(),
    })
}

fn max_abs_diagonal(generator: &Generator) -> f64 {
    let m = generator.matrix();
    (0..generator.n_states())
        .map(|i| m[(i, i)].abs())
        .fold(0.0, f64::max)
}

/// Solves `πG = 0`, `Σπ = 1`, escalating through [`FALLBACK_CHAIN`] until a
/// backend produces an acceptable distribution.
///
/// A backend is rejected — and the next one tried — when it errors
/// (`Singular`, degenerate elimination, `NotConverged`, …) or when its
/// result fails the validation guard: every entry finite and nonnegative,
/// mass summing to 1, and residual `‖πG‖∞` within a slack scaled by the
/// chain's fastest rate. The winning method and the full escalation path
/// (with per-method rejection reasons) are recorded in the returned
/// [`SolveStats`].
///
/// Unlike the single-method entry points this succeeds on chains the direct
/// paths reject — e.g. LU declares a reducible chain `Singular`, but power
/// iteration still converges to *a* stationary distribution (for a
/// reducible chain the result is the uniform-start mixture over closed
/// classes, not a unique limit; callers needing uniqueness should check
/// irreducibility via [`solve_checked`]).
///
/// # Errors
///
/// Returns [`CtmcError::FallbackExhausted`] listing every attempted method
/// and its rejection reason if no backend produces an acceptable
/// distribution.
pub fn solve_with_fallback(generator: &Generator) -> Result<(DVector, SolveStats), CtmcError> {
    run_fallback(
        &FALLBACK_CHAIN,
        max_abs_diagonal(generator),
        |method| solve_inner(generator, method),
        |pi| residual(generator, pi),
    )
}

/// Sparse twin of [`solve_with_fallback`], escalating through
/// [`SPARSE_FALLBACK_CHAIN`].
///
/// The direct backends densify first (as in [`solve_sparse`]); the
/// iterative backends run entirely on the CSR storage.
///
/// # Errors
///
/// As [`solve_with_fallback`].
pub fn solve_sparse_with_fallback(
    generator: &SparseGenerator,
) -> Result<(DVector, SolveStats), CtmcError> {
    run_fallback(
        &SPARSE_FALLBACK_CHAIN,
        generator.max_exit_rate(),
        |method| solve_sparse_inner(generator, method),
        |pi| residual_sparse(generator, pi),
    )
}

/// Power iteration `π ← π(I + G/Λ)` on the uniformized chain, matrix-free
/// over the CSR storage.
fn sparse_power(
    generator: &SparseGenerator,
    tolerance: f64,
    max_iterations: usize,
) -> Result<(DVector, usize), CtmcError> {
    let n = generator.n_states();
    let lambda = UNIFORMIZATION_MARGIN * generator.max_exit_rate();
    if lambda <= 0.0 {
        return Err(CtmcError::InvalidParameter {
            reason: "cannot uniformize a chain with no transitions".to_owned(),
        });
    }
    let mut pi = DVector::constant(n, 1.0 / n as f64);
    for sweep in 1..=max_iterations {
        let next = generator.uniformized_step(&pi, lambda);
        let update = (&next - &pi).norm_inf();
        pi = next;
        if update <= tolerance {
            return Ok((sanitize(pi)?, sweep));
        }
    }
    Err(CtmcError::Numerical(
        dpm_linalg::LinalgError::NotConverged {
            iterations: max_iterations,
            residual: residual_sparse(generator, &pi),
        },
    ))
}

/// Gauss–Seidel on the balance equations: sweep
/// `π_i ← (Σ_{j≠i} π_j G_{ji}) / exit_i` over the rows of `Gᵀ`,
/// renormalizing each sweep.
///
/// Unlike iterating the uniformized chain, the relaxation divides by each
/// state's own exit rate, so convergence does not degrade when rates span
/// many orders of magnitude (the instant-rate surrogate makes SYS
/// generators exactly that stiff).
fn sparse_gauss_seidel(
    generator: &SparseGenerator,
    tolerance: f64,
    max_iterations: usize,
) -> Result<(DVector, usize), CtmcError> {
    let n = generator.n_states();
    for i in 0..n {
        if generator.exit_rate(i) <= 0.0 {
            return Err(CtmcError::InvalidParameter {
                reason: format!(
                    "state {i} has zero exit rate; the iterative solver requires an irreducible chain"
                ),
            });
        }
    }
    let transpose = generator.csr().transpose();
    let mut pi = DVector::constant(n, 1.0 / n as f64);
    let mut previous = pi.clone();
    for sweep in 1..=max_iterations {
        for i in 0..n {
            let mut inflow = 0.0;
            for (j, rate) in transpose.row(i) {
                if j != i {
                    inflow += rate * pi[j];
                }
            }
            pi[i] = inflow / generator.exit_rate(i);
        }
        let sum = pi.sum();
        if !(sum.is_finite() && sum > 0.0) {
            return Err(CtmcError::Numerical(
                dpm_linalg::LinalgError::InvalidInput {
                    reason: format!("Gauss–Seidel sweep produced probability mass {sum}"),
                },
            ));
        }
        pi.scale_mut(1.0 / sum);
        let update = (&pi - &previous).norm_inf();
        if update <= tolerance {
            return Ok((sanitize(pi)?, sweep));
        }
        previous = pi.clone();
    }
    Err(CtmcError::Numerical(
        dpm_linalg::LinalgError::NotConverged {
            iterations: max_iterations,
            residual: residual_sparse(generator, &pi),
        },
    ))
}

/// Residual `‖πG‖_∞` over the sparse representation.
///
/// # Panics
///
/// Panics if `pi.len() != generator.n_states()`.
#[must_use]
pub fn residual_sparse(generator: &SparseGenerator, pi: &DVector) -> f64 {
    generator.csr().vec_mul(pi).norm_inf()
}

/// Solves `πG = 0`, `Σπ = 1` by replacing the last balance equation with the
/// normalization constraint and LU-factorizing.
///
/// # Errors
///
/// Returns [`CtmcError::Numerical`] if the linear system is singular, which
/// for a validated generator indicates a reducible chain.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{stationary, Generator};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = Generator::builder(2).rate(0, 1, 1.0).rate(1, 0, 3.0).build()?;
/// let pi = stationary::solve_lu(&g)?;
/// assert!((pi[0] - 0.75).abs() < 1e-12);
/// assert!((pi[1] - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_lu(generator: &Generator) -> Result<DVector, CtmcError> {
    let n = generator.n_states();
    // πG = 0  ⟺  Gᵀ πᵀ = 0. Replace the last row of Gᵀ with 1s and solve
    // against e_{n-1} to impose Σπ = 1.
    let gt = generator.matrix().transpose();
    let mut a = gt;
    for c in 0..n {
        a[(n - 1, c)] = 1.0;
    }
    let mut b = DVector::zeros(n);
    b[n - 1] = 1.0;
    let pi = a.lu()?.solve(&b)?;
    sanitize(pi)
}

/// Solves for the stationary distribution with the numerically stable GTH
/// elimination (via uniformization).
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] for a chain with no transitions,
/// or [`CtmcError::Numerical`] if elimination degenerates (reducible chain).
pub fn solve_gth(generator: &Generator) -> Result<DVector, CtmcError> {
    let (dtmc, _) = generator.uniformize(UNIFORMIZATION_MARGIN)?;
    dtmc.stationary_gth()
}

/// Solves for the stationary distribution by power iteration on the
/// uniformized chain.
///
/// # Errors
///
/// Returns [`CtmcError::Numerical`] if iteration does not converge within
/// `max_iterations`.
pub fn solve_power(
    generator: &Generator,
    tolerance: f64,
    max_iterations: usize,
) -> Result<DVector, CtmcError> {
    let (dtmc, _) = generator.uniformize(UNIFORMIZATION_MARGIN)?;
    dtmc.stationary_power(tolerance, max_iterations)
}

/// Verifies irreducibility, then solves with GTH (the most robust method).
///
/// # Errors
///
/// Returns [`CtmcError::Reducible`] for reducible chains, otherwise as
/// [`solve_gth`].
pub fn solve_checked(generator: &Generator) -> Result<DVector, CtmcError> {
    let classes = graph::communicating_classes(generator);
    if classes.len() != 1 {
        return Err(CtmcError::Reducible {
            classes: classes.len(),
        });
    }
    solve_gth(generator)
}

/// Residual `‖πG‖_∞` of a candidate stationary vector — a cheap a-posteriori
/// accuracy check used by tests and benches.
///
/// # Panics
///
/// Panics if `pi.len() != generator.n_states()`.
#[must_use]
pub fn residual(generator: &Generator, pi: &DVector) -> f64 {
    generator.matrix().vec_mul(pi).norm_inf()
}

/// Expected long-run cost rate `π · c` for per-state cost rates `c`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn long_run_average(pi: &DVector, cost_rates: &DVector) -> f64 {
    pi.dot(cost_rates)
}

/// Long-run average of per-state cost rates `c` for a *unichain* chain
/// (a single recurrent class plus arbitrarily many transient states),
/// obtained from the gain/bias equations `c − g·1 + G v = 0`, `v_0 = 0`.
///
/// Unlike [`long_run_average`] this does not need the chain to be
/// irreducible — policies that make parts of a decision process
/// unreachable still have a well-defined average cost.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] on a length mismatch and
/// [`CtmcError::Numerical`] if the equations are singular (multichain).
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{stationary, Generator};
/// use dpm_linalg::DVector;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// // State 0 is transient: 0 -> 1 <-> 2.
/// let g = Generator::builder(3)
///     .rate(0, 1, 1.0)
///     .rate(1, 2, 1.0)
///     .rate(2, 1, 1.0)
///     .build()?;
/// let costs = DVector::from_vec(vec![100.0, 2.0, 4.0]);
/// // Long run: half the time in 1, half in 2; state 0 never returns.
/// let avg = stationary::unichain_average(&g, &costs)?;
/// assert!((avg - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn unichain_average(generator: &Generator, costs: &DVector) -> Result<f64, CtmcError> {
    let n = generator.n_states();
    if costs.len() != n {
        return Err(CtmcError::InvalidParameter {
            reason: format!("cost vector length {} != {n}", costs.len()),
        });
    }
    // Unknowns x = (g, v_1, ..., v_{n-1}) with v_0 = 0; equation per state:
    //   -g + Σ_j G_ij v_j = -c_i
    let mut a = dpm_linalg::DMatrix::zeros(n, n);
    let mut b = DVector::zeros(n);
    for i in 0..n {
        a[(i, 0)] = -1.0;
        for j in 1..n {
            a[(i, j)] = generator.rate(i, j);
        }
        b[i] = -costs[i];
    }
    let x = a.lu().map_err(CtmcError::Numerical)?.solve(&b)?;
    Ok(x[0])
}

/// Per-state long-run average cost (the *gain vector*) for an arbitrary —
/// possibly multichain — finite chain.
///
/// For a state in a closed (recurrent) communicating class the gain is the
/// class's stationary average of `costs`; for a transient state it is the
/// absorption-probability-weighted mixture of the reachable classes' gains,
/// obtained by solving `G_TT g_T = −G_TR g_R`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] on a length mismatch and
/// propagates solver failures.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{stationary, Generator};
/// use dpm_linalg::DVector;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// // State 0 splits between two absorbing states with different costs.
/// let g = Generator::builder(3)
///     .rate(0, 1, 1.0)
///     .rate(0, 2, 3.0)
///     .build()?;
/// let costs = DVector::from_vec(vec![0.0, 8.0, 4.0]);
/// let gains = stationary::gain_vector(&g, &costs)?;
/// // P(absorb in 1) = 1/4, P(absorb in 2) = 3/4.
/// assert!((gains[0] - (0.25 * 8.0 + 0.75 * 4.0)).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn gain_vector(generator: &Generator, costs: &DVector) -> Result<DVector, CtmcError> {
    let n = generator.n_states();
    if costs.len() != n {
        return Err(CtmcError::InvalidParameter {
            reason: format!("cost vector length {} != {n}", costs.len()),
        });
    }
    let classes = graph::communicating_classes(generator);
    // A class is closed iff no transition leaves it.
    let mut closed = vec![true; classes.len()];
    for (from, to, _) in generator.transitions() {
        if classes.class_of(from) != classes.class_of(to) {
            closed[classes.class_of(from)] = false;
        }
    }

    let mut gains = DVector::zeros(n);
    let mut is_recurrent = vec![false; n];
    for (c, &is_closed) in closed.iter().enumerate() {
        if !is_closed {
            continue;
        }
        let members = classes.members(c);
        let gain = if members.len() == 1 {
            costs[members[0]]
        } else {
            // Restrict the generator to the closed class (self-contained by
            // closedness) and solve its stationary distribution.
            let mut b = Generator::builder(members.len());
            for (local_from, &from) in members.iter().enumerate() {
                for (local_to, &to) in members.iter().enumerate() {
                    if from != to {
                        let r = generator.rate(from, to);
                        if r > 0.0 {
                            b.add_rate(local_from, local_to, r);
                        }
                    }
                }
            }
            let sub = b.build()?;
            // Closed-class sub-generators inherit whatever conditioning the
            // policy induced; escalate through the fallback chain rather
            // than letting one ill-conditioned class abort the evaluation.
            let (pi, _) = solve_with_fallback(&sub)?;
            members
                .iter()
                .enumerate()
                .map(|(local, &global)| pi[local] * costs[global])
                .sum()
        };
        for &state in members {
            gains[state] = gain;
            is_recurrent[state] = true;
        }
    }

    // Transient states: G_TT g_T = -G_TR g_R.
    let transient: Vec<usize> = (0..n).filter(|&i| !is_recurrent[i]).collect();
    if !transient.is_empty() {
        let t = transient.len();
        let mut a = dpm_linalg::DMatrix::zeros(t, t);
        let mut b = DVector::zeros(t);
        for (row, &i) in transient.iter().enumerate() {
            for (col, &j) in transient.iter().enumerate() {
                a[(row, col)] = generator.rate(i, j);
            }
            let mut rhs = 0.0;
            for j in 0..n {
                if is_recurrent[j] && j != i {
                    rhs -= generator.rate(i, j) * gains[j];
                }
            }
            b[row] = rhs;
        }
        let g_t = a.lu().map_err(CtmcError::Numerical)?.solve(&b)?;
        for (row, &i) in transient.iter().enumerate() {
            gains[i] = g_t[row];
        }
    }

    Ok(gains)
}

fn sanitize(mut pi: DVector) -> Result<DVector, CtmcError> {
    // Clamp tiny negative round-off and renormalize.
    for x in pi.as_mut_slice() {
        if *x < 0.0 {
            if *x < -1e-8 {
                return Err(CtmcError::Numerical(
                    dpm_linalg::LinalgError::InvalidInput {
                        reason: format!("stationary solve produced negative probability {x}"),
                    },
                ));
            }
            *x = 0.0;
        }
    }
    pi.normalize_l1().map_err(CtmcError::Numerical)?;
    Ok(pi)
}

/// Builds the generator of an M/M/1/K queue — used by tests to compare the
/// numeric solvers against closed forms.
///
/// State `i` holds `i` customers; arrivals at rate `lambda` (blocked at
/// `K`), services at rate `mu`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] if `capacity == 0` or a rate is
/// not positive.
pub fn mm1k_generator(lambda: f64, mu: f64, capacity: usize) -> Result<Generator, CtmcError> {
    if capacity == 0 {
        return Err(CtmcError::InvalidParameter {
            reason: "queue capacity must be at least 1".to_owned(),
        });
    }
    if lambda <= 0.0 || mu <= 0.0 {
        return Err(CtmcError::InvalidParameter {
            reason: format!("rates must be positive, got lambda={lambda}, mu={mu}"),
        });
    }
    let mut b = Generator::builder(capacity + 1);
    for i in 0..capacity {
        b.add_rate(i, i + 1, lambda);
        b.add_rate(i + 1, i, mu);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::birth_death;

    fn three_state() -> Generator {
        Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 1.0)
            .rate(2, 0, 4.0)
            .rate(1, 0, 0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn lu_satisfies_balance() {
        let g = three_state();
        let pi = solve_lu(&g).unwrap();
        assert!(residual(&g, &pi) < 1e-12);
        assert!((pi.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_solvers_agree() {
        let g = three_state();
        let lu = solve_lu(&g).unwrap();
        let gth = solve_gth(&g).unwrap();
        let pow = solve_power(&g, 1e-14, 1_000_000).unwrap();
        assert!((&lu - &gth).norm_inf() < 1e-10);
        assert!((&lu - &pow).norm_inf() < 1e-8);
    }

    #[test]
    fn matches_mm1k_closed_form() {
        let lambda = 0.4;
        let mu = 1.0;
        let k = 6;
        let g = mm1k_generator(lambda, mu, k).unwrap();
        let pi = solve_gth(&g).unwrap();
        let closed = birth_death::Mm1k::new(lambda, mu, k).unwrap();
        for i in 0..=k {
            assert!(
                (pi[i] - closed.probability(i)).abs() < 1e-12,
                "state {i}: {} vs {}",
                pi[i],
                closed.probability(i)
            );
        }
    }

    #[test]
    fn gth_is_stable_on_stiff_chain() {
        // Rates spanning 8 orders of magnitude.
        let g = Generator::builder(3)
            .rate(0, 1, 1e-4)
            .rate(1, 2, 1e4)
            .rate(2, 0, 1.0)
            .build()
            .unwrap();
        let pi = solve_gth(&g).unwrap();
        assert!(residual(&g, &pi) < 1e-9);
    }

    #[test]
    fn checked_rejects_reducible() {
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .rate(1, 2, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            solve_checked(&g),
            Err(CtmcError::Reducible { classes: 2 })
        ));
    }

    #[test]
    fn checked_accepts_irreducible() {
        let pi = solve_checked(&three_state()).unwrap();
        assert!((pi.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_run_average_weights_costs() {
        let pi = DVector::from_vec(vec![0.25, 0.75]);
        let c = DVector::from_vec(vec![40.0, 0.0]);
        assert_eq!(long_run_average(&pi, &c), 10.0);
    }

    #[test]
    fn mm1k_generator_validates() {
        assert!(mm1k_generator(0.0, 1.0, 3).is_err());
        assert!(mm1k_generator(1.0, 1.0, 0).is_err());
    }
}

#[cfg(test)]
mod unified_api_tests {
    use super::*;

    fn three_state() -> Generator {
        Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 1.0)
            .rate(2, 0, 4.0)
            .rate(1, 0, 0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn all_methods_agree_dense() {
        let g = three_state();
        let reference = solve(&g, Method::Gth).unwrap();
        for method in [Method::Lu, Method::Power, Method::Iterative] {
            let pi = solve(&g, method).unwrap();
            assert!(
                (&pi - &reference).norm_inf() < 1e-8,
                "{method:?} diverges from GTH"
            );
        }
    }

    #[test]
    fn all_methods_agree_sparse() {
        let g = three_state();
        let sparse = SparseGenerator::from_generator(&g);
        let reference = solve_gth(&g).unwrap();
        for method in [Method::Lu, Method::Gth, Method::Power, Method::Iterative] {
            let pi = solve_sparse(&sparse, method).unwrap();
            assert!(
                (&pi - &reference).norm_inf() < 1e-8,
                "sparse {method:?} diverges from dense GTH"
            );
        }
    }

    #[test]
    fn default_method_is_gth() {
        assert_eq!(Method::default(), Method::Gth);
    }

    #[test]
    fn iterative_handles_stiff_chain() {
        // Rates spanning 8 orders of magnitude — the regime where GS on the
        // balance equations must not degrade.
        let g = Generator::builder(3)
            .rate(0, 1, 1e-4)
            .rate(1, 2, 1e4)
            .rate(2, 0, 1.0)
            .build()
            .unwrap();
        let sparse = SparseGenerator::from_generator(&g);
        let pi = solve_sparse(&sparse, Method::Iterative).unwrap();
        let reference = solve_gth(&g).unwrap();
        assert!((&pi - &reference).norm_inf() < 1e-8);
        assert!(residual_sparse(&sparse, &pi) < 1e-7);
    }

    #[test]
    fn iterative_matches_mm1k_closed_form() {
        let lambda = 0.4;
        let mu = 1.0;
        let k = 40;
        let g = mm1k_generator(lambda, mu, k).unwrap();
        let pi = solve(&g, Method::Iterative).unwrap();
        let closed = birth_death::Mm1k::new(lambda, mu, k).unwrap();
        for i in 0..=k {
            assert!((pi[i] - closed.probability(i)).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn iterative_rejects_absorbing_state() {
        let g = SparseGenerator::from_transitions(2, &[(0, 1, 1.0)]).unwrap();
        assert!(matches!(
            solve_sparse(&g, Method::Iterative),
            Err(CtmcError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn power_rejects_empty_chain() {
        let g = SparseGenerator::from_transitions(2, &[]).unwrap();
        assert!(matches!(
            solve_sparse(&g, Method::Power),
            Err(CtmcError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn stats_report_sweeps_and_residual() {
        let g = three_state();
        let sparse = SparseGenerator::from_generator(&g);
        for method in [Method::Power, Method::Iterative] {
            let (pi, stats) = solve_sparse_with_stats(&sparse, method).unwrap();
            assert_eq!(stats.method(), method);
            assert!(stats.sweeps() > 0, "{method:?} reported no sweeps");
            assert!(stats.residual() < 1e-8, "{method:?}: {}", stats.residual());
            assert!((stats.residual() - residual_sparse(&sparse, &pi)).abs() < 1e-15);
        }
    }

    #[test]
    fn direct_methods_report_zero_sweeps() {
        let g = three_state();
        let sparse = SparseGenerator::from_generator(&g);
        for method in [Method::Lu, Method::Gth] {
            let (_, stats) = solve_sparse_with_stats(&sparse, method).unwrap();
            assert_eq!(stats.sweeps(), 0);
            assert!(stats.residual() < 1e-10);
        }
        let (_, dense_stats) = solve_with_stats(&g, Method::Lu).unwrap();
        assert_eq!(dense_stats.sweeps(), 0);
        assert!(dense_stats.residual() < 1e-10);
    }

    #[test]
    fn stats_distribution_matches_plain_solve() {
        let g = three_state();
        let sparse = SparseGenerator::from_generator(&g);
        let plain = solve_sparse(&sparse, Method::Iterative).unwrap();
        let (with_stats, _) = solve_sparse_with_stats(&sparse, Method::Iterative).unwrap();
        assert_eq!(plain, with_stats);
        let dense_plain = solve(&g, Method::Iterative).unwrap();
        let (dense_with, stats) = solve_with_stats(&g, Method::Iterative).unwrap();
        assert_eq!(dense_plain, dense_with);
        assert!(stats.sweeps() > 0);
    }

    use crate::birth_death;
}

#[cfg(test)]
mod fallback_tests {
    use super::*;

    fn three_state() -> Generator {
        Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 1.0)
            .rate(2, 0, 4.0)
            .rate(1, 0, 0.5)
            .build()
            .unwrap()
    }

    /// Two disjoint 2-state recurrent classes: the LU system is singular
    /// and GTH elimination degenerates, but a stationary distribution
    /// (a mixture over the classes) still exists.
    fn reducible_two_classes() -> Generator {
        Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 2.0)
            .rate(2, 3, 3.0)
            .rate(3, 2, 1.0)
            .build()
            .unwrap()
    }

    /// Two 2-state clusters tied by 1e-9 coupling rates: irreducible, but
    /// the subdominant mode decays so slowly that Gauss–Seidel cannot
    /// converge within its budget.
    fn near_reducible() -> Generator {
        Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 2.0)
            .rate(2, 3, 3.0)
            .rate(3, 2, 1.0)
            .rate(1, 2, 1e-9)
            .rate(2, 1, 1e-9)
            .build()
            .unwrap()
    }

    fn assert_valid_distribution(pi: &DVector) {
        for x in pi.iter() {
            assert!(x.is_finite() && x >= 0.0, "bad probability {x}");
        }
        assert!((pi.sum() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn well_conditioned_chain_takes_first_method() {
        let g = three_state();
        let (pi, stats) = solve_with_fallback(&g).unwrap();
        assert_eq!(stats.method(), Method::Lu);
        assert!(!stats.escalated());
        assert!((&pi - &solve_gth(&g).unwrap()).norm_inf() < 1e-10);
    }

    #[test]
    fn reducible_chain_escalates_past_singular_lu() {
        let g = reducible_two_classes();
        // The direct path rejects this outright...
        assert!(matches!(
            solve(&g, Method::Lu),
            Err(CtmcError::Numerical(
                dpm_linalg::LinalgError::Singular { .. }
            ))
        ));
        // ...but the fallback chain still produces a stationary mixture.
        let (pi, stats) = solve_with_fallback(&g).unwrap();
        assert_valid_distribution(&pi);
        assert!(residual(&g, &pi) < 1e-8);
        assert!(stats.escalated());
        let tried: Vec<Method> = stats.escalation().iter().map(|(m, _)| *m).collect();
        assert!(tried.contains(&Method::Lu), "escalation {tried:?}");
        assert_ne!(stats.method(), Method::Lu);
    }

    #[test]
    fn near_reducible_chain_defeats_iterative_but_not_fallback() {
        let g = near_reducible();
        let sparse = SparseGenerator::from_generator(&g);
        // The iterative path alone gives up with the final residual in the
        // error (small: "almost converged", not diverged).
        match solve_sparse(&sparse, Method::Iterative) {
            Err(CtmcError::Numerical(dpm_linalg::LinalgError::NotConverged {
                residual, ..
            })) => assert!(
                residual.is_finite() && residual < 1.0,
                "residual {residual}"
            ),
            other => panic!("expected NotConverged, got {other:?}"),
        }
        // The fallback chain solves it directly (LU handles 1e-9 coupling).
        let (pi, stats) = solve_sparse_with_fallback(&sparse).unwrap();
        assert_valid_distribution(&pi);
        assert!(residual_sparse(&sparse, &pi) < 1e-10);
        assert_eq!(stats.method(), Method::Lu);
    }

    #[test]
    fn stiff_chain_solves_within_scaled_residual_bound() {
        // Rate ratio 1e9.
        let g = Generator::builder(3)
            .rate(0, 1, 1e-4)
            .rate(1, 2, 1e5)
            .rate(2, 0, 1.0)
            .build()
            .unwrap();
        let (pi, stats) = solve_with_fallback(&g).unwrap();
        assert_valid_distribution(&pi);
        assert!(stats.residual() <= FALLBACK_RESIDUAL_SLACK * 1e5 * 1.05);
        let sparse = SparseGenerator::from_generator(&g);
        let (pi_s, _) = solve_sparse_with_fallback(&sparse).unwrap();
        assert!((&pi - &pi_s).norm_inf() < 1e-8);
    }

    #[test]
    fn exhaustion_reports_every_attempt() {
        // An absorbing two-state chain has stationary π = (0, 1); LU finds
        // it, so force exhaustion with an empty chain instead: no
        // transitions means no method can make progress.
        let g = SparseGenerator::from_transitions(3, &[]).unwrap();
        let err = solve_sparse_with_fallback(&g).unwrap_err();
        match err {
            CtmcError::FallbackExhausted { attempts } => {
                assert_eq!(attempts.len(), SPARSE_FALLBACK_CHAIN.len());
                for (method, reason) in &attempts {
                    assert!(!method.is_empty() && !reason.is_empty());
                }
            }
            other => panic!("expected FallbackExhausted, got {other:?}"),
        }
    }

    #[test]
    fn gain_vector_survives_reducible_closed_classes() {
        let g = reducible_two_classes();
        let c = DVector::from_vec(vec![2.0, 4.0, 0.0, 8.0]);
        let gains = gain_vector(&g, &c).unwrap();
        // Class {0,1}: π = (2/3, 1/3) → gain 8/3; class {2,3}: π = (1/4, 3/4) → 6.
        assert!((gains[0] - 8.0 / 3.0).abs() < 1e-10);
        assert!((gains[2] - 6.0).abs() < 1e-10);
    }
}

#[cfg(test)]
mod unichain_tests {
    use super::*;

    #[test]
    fn unichain_average_matches_irreducible_solution() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 3.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![4.0, 0.0]);
        let via_pi = long_run_average(&solve_lu(&g).unwrap(), &c);
        let via_gain = unichain_average(&g, &c).unwrap();
        assert!((via_pi - via_gain).abs() < 1e-12);
    }

    #[test]
    fn unichain_average_ignores_transient_costs() {
        let g = Generator::builder(3)
            .rate(0, 1, 5.0)
            .rate(1, 2, 1.0)
            .rate(2, 1, 1.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![1e9, 1.0, 3.0]);
        assert!((unichain_average(&g, &c).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unichain_average_of_absorbing_state() {
        let g = Generator::builder(2).rate(0, 1, 2.0).build().unwrap();
        let c = DVector::from_vec(vec![7.0, 1.5]);
        assert!((unichain_average(&g, &c).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unichain_average_validates_length() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        assert!(unichain_average(&g, &DVector::zeros(3)).is_err());
    }

    #[test]
    fn unichain_average_rejects_multichain() {
        // Two disjoint recurrent classes: 0<->1 and 2<->3.
        let g = Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .rate(2, 3, 1.0)
            .rate(3, 2, 1.0)
            .build()
            .unwrap();
        assert!(unichain_average(&g, &DVector::zeros(4)).is_err());
    }
}

#[cfg(test)]
mod gain_vector_tests {
    use super::*;

    #[test]
    fn gain_vector_matches_unichain_average_on_unichain_chains() {
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(1, 2, 2.0)
            .rate(2, 1, 1.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![5.0, 1.0, 4.0]);
        let gains = gain_vector(&g, &c).unwrap();
        let scalar = unichain_average(&g, &c).unwrap();
        for i in 0..3 {
            assert!((gains[i] - scalar).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn gain_vector_separates_disjoint_classes() {
        let g = Generator::builder(4)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .rate(2, 3, 1.0)
            .rate(3, 2, 3.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![2.0, 4.0, 0.0, 8.0]);
        let gains = gain_vector(&g, &c).unwrap();
        assert!((gains[0] - 3.0).abs() < 1e-10);
        assert!((gains[1] - 3.0).abs() < 1e-10);
        // Class {2, 3}: pi = (3/4, 1/4); gain = 2.
        assert!((gains[2] - 2.0).abs() < 1e-10);
        assert!((gains[3] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn transient_gains_weight_absorption_probabilities() {
        // 0 -> 1 (rate 1), 0 -> 2 (rate 3); both absorbing.
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(0, 2, 3.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![100.0, 8.0, 4.0]);
        let gains = gain_vector(&g, &c).unwrap();
        assert!((gains[0] - 5.0).abs() < 1e-10);
        assert_eq!(gains[1], 8.0);
        assert_eq!(gains[2], 4.0);
    }

    #[test]
    fn chained_transient_states_propagate() {
        // 0 -> 1 -> 2 (absorbing, cost 7).
        let g = Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 5.0)
            .build()
            .unwrap();
        let c = DVector::from_vec(vec![0.0, 0.0, 7.0]);
        let gains = gain_vector(&g, &c).unwrap();
        assert!((gains[0] - 7.0).abs() < 1e-10);
        assert!((gains[1] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn gain_vector_validates_length() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        assert!(gain_vector(&g, &DVector::zeros(3)).is_err());
    }
}
