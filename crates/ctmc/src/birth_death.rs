//! Closed-form results for birth–death queues.
//!
//! The service-queue model of the paper is an M/M/1/Q queue extended with
//! transfer states. The plain M/M/1/K closed forms here serve as ground
//! truth for the numeric solvers and the event-driven simulator.

use crate::CtmcError;

/// Analytic M/M/1/K queue: Poisson arrivals at rate `λ` (blocked when `K`
/// customers are present), exponential service at rate `μ`.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::birth_death::Mm1k;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let q = Mm1k::new(0.5, 1.0, 4)?;
/// // Utilization below 1: most mass near empty.
/// assert!(q.probability(0) > q.probability(4));
/// // Little's law: L = λ_eff · W.
/// let little = q.effective_arrival_rate() * q.mean_waiting_time();
/// assert!((q.mean_customers() - little).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1k {
    lambda: f64,
    mu: f64,
    capacity: usize,
    /// Probability of an empty system, precomputed.
    p0: f64,
}

impl Mm1k {
    /// Creates the analytic queue model.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidParameter`] if `capacity == 0` or either
    /// rate is not positive and finite.
    pub fn new(lambda: f64, mu: f64, capacity: usize) -> Result<Self, CtmcError> {
        if capacity == 0 {
            return Err(CtmcError::InvalidParameter {
                reason: "capacity must be at least 1".to_owned(),
            });
        }
        if !(lambda > 0.0 && lambda.is_finite() && mu > 0.0 && mu.is_finite()) {
            return Err(CtmcError::InvalidParameter {
                reason: format!("rates must be positive and finite: lambda={lambda}, mu={mu}"),
            });
        }
        let rho = lambda / mu;
        let p0 = if (rho - 1.0).abs() < 1e-12 {
            1.0 / (capacity as f64 + 1.0)
        } else {
            (1.0 - rho) / (1.0 - rho.powi(capacity as i32 + 1))
        };
        Ok(Mm1k {
            lambda,
            mu,
            capacity,
            p0,
        })
    }

    /// Arrival rate `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service rate `μ`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Capacity `K` (maximum number of customers in the system).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offered load `ρ = λ/μ`.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Stationary probability of exactly `i` customers in the system.
    ///
    /// Returns `0.0` for `i > K`.
    #[must_use]
    pub fn probability(&self, i: usize) -> f64 {
        if i > self.capacity {
            return 0.0;
        }
        self.p0 * self.rho().powi(i as i32)
    }

    /// Probability that an arriving customer is blocked (system full).
    #[must_use]
    pub fn blocking_probability(&self) -> f64 {
        self.probability(self.capacity)
    }

    /// Effective (accepted) arrival rate `λ(1 - P_block)`.
    #[must_use]
    pub fn effective_arrival_rate(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }

    /// Mean number of customers in the system, `L = Σ i·π_i`.
    #[must_use]
    pub fn mean_customers(&self) -> f64 {
        (0..=self.capacity)
            .map(|i| i as f64 * self.probability(i))
            .sum()
    }

    /// Mean time an accepted customer spends in the system (Little's law,
    /// `W = L / λ_eff`).
    #[must_use]
    pub fn mean_waiting_time(&self) -> f64 {
        self.mean_customers() / self.effective_arrival_rate()
    }

    /// Server utilization `1 - π_0`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        1.0 - self.probability(0)
    }

    /// Long-run throughput (service completions per unit time), which equals
    /// the effective arrival rate in steady state.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.mu * self.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        let q = Mm1k::new(0.7, 1.0, 5).unwrap();
        let total: f64 = (0..=5).map(|i| q.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_rho_equal_one() {
        let q = Mm1k::new(1.0, 1.0, 4).unwrap();
        for i in 0..=4 {
            assert!((q.probability(i) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn beyond_capacity_has_zero_mass() {
        let q = Mm1k::new(0.5, 1.0, 3).unwrap();
        assert_eq!(q.probability(4), 0.0);
    }

    #[test]
    fn blocking_matches_last_state() {
        let q = Mm1k::new(2.0, 1.0, 2).unwrap();
        assert!((q.blocking_probability() - q.probability(2)).abs() < 1e-15);
        // Overloaded queue: blocking is substantial.
        assert!(q.blocking_probability() > 0.5);
    }

    #[test]
    fn throughput_equals_effective_arrivals() {
        let q = Mm1k::new(0.8, 1.3, 7).unwrap();
        assert!((q.throughput() - q.effective_arrival_rate()).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mm1k::new(0.9, 1.1, 6).unwrap();
        let l = q.mean_customers();
        let w = q.mean_waiting_time();
        assert!((l - q.effective_arrival_rate() * w).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Mm1k::new(0.0, 1.0, 3).is_err());
        assert!(Mm1k::new(1.0, -1.0, 3).is_err());
        assert!(Mm1k::new(1.0, 1.0, 0).is_err());
        assert!(Mm1k::new(f64::NAN, 1.0, 3).is_err());
    }

    #[test]
    fn light_load_concentrates_at_empty() {
        let q = Mm1k::new(0.01, 1.0, 10).unwrap();
        assert!(q.probability(0) > 0.98);
        assert!(q.mean_customers() < 0.02);
    }
}
