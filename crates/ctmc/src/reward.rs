//! Markov processes with rewards (paper Section II).
//!
//! A reward structure attaches a *reward rate* `r_{i,i}` (earned per unit
//! time while occupying state `i`) and a *transition reward* `r_{i,j}`
//! (earned instantaneously on each `i → j` jump). The paper's *earning
//! rate* combines them:
//!
//! ```text
//! r_i = r_{i,i} + Σ_{j≠i} s_{i,j} · r_{i,j}
//! ```
//!
//! The expected total reward over a horizon obeys the linear ODE system of
//! Eqn. 2.5, `dv/dt = r + G v`, integrated here with classic fixed-step
//! RK4. (The paper minimizes *cost*; cost is simply negated reward, and the
//! MDP layer adopts the cost convention.)

use dpm_linalg::{DMatrix, DVector};

use crate::{stationary, CtmcError, Generator};

/// A continuous-time Markov process with reward rates and transition
/// rewards.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{Generator, RewardProcess};
/// use dpm_linalg::{DMatrix, DVector};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = Generator::builder(2).rate(0, 1, 1.0).rate(1, 0, 3.0).build()?;
/// // Earn 4/unit-time in state 0, nothing in state 1, no jump rewards.
/// let mrp = RewardProcess::new(
///     g,
///     DVector::from_vec(vec![4.0, 0.0]),
///     DMatrix::zeros(2, 2),
/// )?;
/// // pi = (3/4, 1/4), so the long-run rate is 3.
/// assert!((mrp.average_reward()? - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RewardProcess {
    generator: Generator,
    occupancy_rewards: DVector,
    transition_rewards: DMatrix,
}

impl RewardProcess {
    /// Creates a reward process over `generator`.
    ///
    /// `occupancy_rewards[i]` is `r_{i,i}`; `transition_rewards[(i, j)]` is
    /// `r_{i,j}` (the diagonal of `transition_rewards` is ignored).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidParameter`] if the shapes do not match
    /// the chain or any reward is non-finite.
    pub fn new(
        generator: Generator,
        occupancy_rewards: DVector,
        transition_rewards: DMatrix,
    ) -> Result<Self, CtmcError> {
        let n = generator.n_states();
        if occupancy_rewards.len() != n {
            return Err(CtmcError::InvalidParameter {
                reason: format!("occupancy reward length {} != {n}", occupancy_rewards.len()),
            });
        }
        if transition_rewards.shape() != (n, n) {
            return Err(CtmcError::InvalidParameter {
                reason: format!(
                    "transition reward shape {:?} != ({n}, {n})",
                    transition_rewards.shape()
                ),
            });
        }
        if !occupancy_rewards.is_finite() || !transition_rewards.is_finite() {
            return Err(CtmcError::InvalidParameter {
                reason: "rewards must be finite".to_owned(),
            });
        }
        Ok(RewardProcess {
            generator,
            occupancy_rewards,
            transition_rewards,
        })
    }

    /// The underlying chain.
    #[must_use]
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// The earning-rate vector `r_i = r_{i,i} + Σ_{j≠i} s_{i,j} r_{i,j}`.
    #[must_use]
    pub fn earning_rates(&self) -> DVector {
        let n = self.generator.n_states();
        DVector::from_fn(n, |i| {
            let mut r = self.occupancy_rewards[i];
            for j in 0..n {
                if j != i {
                    r += self.generator.rate(i, j) * self.transition_rewards[(i, j)];
                }
            }
            r
        })
    }

    /// Long-run average reward per unit time, `π · r` (the limiting average
    /// reward of Section II, identical for every start state of an
    /// irreducible chain).
    ///
    /// # Errors
    ///
    /// Propagates stationary-solver failures (e.g. reducible chains).
    pub fn average_reward(&self) -> Result<f64, CtmcError> {
        let (pi, _) = stationary::Solver::new(stationary::Method::Gth)
            .check_irreducible()
            .solve(&self.generator)?;
        Ok(pi.dot(&self.earning_rates()))
    }

    /// Expected total reward `v_i(t)` accumulated over `[0, t]` from every
    /// start state, integrating Eqn. 2.5 with fixed-step RK4.
    ///
    /// The step count is chosen so each step resolves the fastest rate in
    /// the chain.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidParameter`] for a negative or non-finite
    /// horizon.
    pub fn expected_total_reward(&self, t: f64) -> Result<DVector, CtmcError> {
        if !(t >= 0.0 && t.is_finite()) {
            return Err(CtmcError::InvalidParameter {
                reason: format!("horizon {t} must be finite and non-negative"),
            });
        }
        let n = self.generator.n_states();
        // dpm-lint: allow(float_eq, reason = "zero-horizon fast path: t == 0.0 exactly means no time elapses")
        if t == 0.0 {
            return Ok(DVector::zeros(n));
        }
        let r = self.earning_rates();
        let g = self.generator.matrix();
        // Resolve the stiffest timescale: ~20 steps per mean holding time,
        // at least 1000 steps overall.
        let fastest = self.generator.max_exit_rate().max(1e-9);
        let steps = ((t * fastest * 20.0).ceil() as usize).clamp(1_000, 2_000_000);
        let h = t / steps as f64;
        let deriv = |v: &DVector| -> DVector {
            let mut d = g.mul_vec(v);
            d += &r;
            d
        };
        let mut v = DVector::zeros(n);
        for _ in 0..steps {
            let k1 = deriv(&v);
            let mut v2 = v.clone();
            v2.axpy(h / 2.0, &k1);
            let k2 = deriv(&v2);
            let mut v3 = v.clone();
            v3.axpy(h / 2.0, &k2);
            let k3 = deriv(&v3);
            let mut v4 = v.clone();
            v4.axpy(h, &k3);
            let k4 = deriv(&v4);
            v.axpy(h / 6.0, &k1);
            v.axpy(h / 3.0, &k2);
            v.axpy(h / 3.0, &k3);
            v.axpy(h / 6.0, &k4);
        }
        Ok(v)
    }

    /// Expected discounted reward `∫ e^{-αt} … dt` over an infinite horizon
    /// for discount rate `α > 0`: the solution of `(αI − G) v = r`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidParameter`] for a non-positive `α` and
    /// propagates linear-solver failures.
    pub fn discounted_reward(&self, alpha: f64) -> Result<DVector, CtmcError> {
        if !(alpha > 0.0 && alpha.is_finite()) {
            return Err(CtmcError::InvalidParameter {
                reason: format!("discount rate {alpha} must be positive and finite"),
            });
        }
        let n = self.generator.n_states();
        let a = &DMatrix::identity(n).scaled(alpha) - self.generator.matrix();
        let v = a.lu()?.solve(&self.earning_rates())?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Generator {
        Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 3.0)
            .build()
            .unwrap()
    }

    #[test]
    fn earning_rates_combine_occupancy_and_jumps() {
        let g = two_state();
        let mrp = RewardProcess::new(
            g,
            DVector::from_vec(vec![10.0, 0.0]),
            DMatrix::from_rows(&[&[0.0, 5.0], &[2.0, 0.0]]).unwrap(),
        )
        .unwrap();
        let r = mrp.earning_rates();
        // r_0 = 10 + 1*5, r_1 = 0 + 3*2.
        assert_eq!(r.as_slice(), &[15.0, 6.0]);
    }

    #[test]
    fn average_reward_weights_by_stationary() {
        let mrp = RewardProcess::new(
            two_state(),
            DVector::from_vec(vec![4.0, 0.0]),
            DMatrix::zeros(2, 2),
        )
        .unwrap();
        assert!((mrp.average_reward().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_reward_grows_linearly_for_large_t() {
        let mrp = RewardProcess::new(
            two_state(),
            DVector::from_vec(vec![4.0, 0.0]),
            DMatrix::zeros(2, 2),
        )
        .unwrap();
        let g = mrp.average_reward().unwrap();
        let v10 = mrp.expected_total_reward(10.0).unwrap();
        let v11 = mrp.expected_total_reward(11.0).unwrap();
        // After burn-in, v(t+1) - v(t) ~ average reward for every start.
        for i in 0..2 {
            assert!(((v11[i] - v10[i]) - g).abs() < 1e-6);
        }
    }

    #[test]
    fn total_reward_at_zero_is_zero() {
        let mrp = RewardProcess::new(
            two_state(),
            DVector::from_vec(vec![4.0, 0.0]),
            DMatrix::zeros(2, 2),
        )
        .unwrap();
        assert_eq!(mrp.expected_total_reward(0.0).unwrap(), DVector::zeros(2));
    }

    #[test]
    fn single_state_total_reward_is_rate_times_time() {
        let g = Generator::from_matrix(DMatrix::zeros(1, 1)).unwrap();
        let mrp =
            RewardProcess::new(g, DVector::from_vec(vec![2.5]), DMatrix::zeros(1, 1)).unwrap();
        let v = mrp.expected_total_reward(4.0).unwrap();
        assert!((v[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn discounted_reward_satisfies_fixed_point() {
        let mrp = RewardProcess::new(
            two_state(),
            DVector::from_vec(vec![4.0, 1.0]),
            DMatrix::zeros(2, 2),
        )
        .unwrap();
        let alpha = 0.5;
        let v = mrp.discounted_reward(alpha).unwrap();
        // alpha v = r + G v
        let lhs = v.scaled(alpha);
        let mut rhs = mrp.generator().matrix().mul_vec(&v);
        rhs += &mrp.earning_rates();
        assert!((&lhs - &rhs).norm_inf() < 1e-10);
    }

    #[test]
    fn discounted_reward_approaches_total_as_alpha_vanishes() {
        // For small alpha, alpha * v_dis ~ average reward.
        let mrp = RewardProcess::new(
            two_state(),
            DVector::from_vec(vec![4.0, 0.0]),
            DMatrix::zeros(2, 2),
        )
        .unwrap();
        let alpha = 1e-6;
        let v = mrp.discounted_reward(alpha).unwrap();
        let g = mrp.average_reward().unwrap();
        assert!((v[0] * alpha - g).abs() < 1e-4);
    }

    #[test]
    fn validates_shapes_and_parameters() {
        let g = two_state();
        assert!(RewardProcess::new(g.clone(), DVector::zeros(3), DMatrix::zeros(2, 2)).is_err());
        assert!(RewardProcess::new(g.clone(), DVector::zeros(2), DMatrix::zeros(3, 3)).is_err());
        assert!(RewardProcess::new(
            g.clone(),
            DVector::from_vec(vec![f64::NAN, 0.0]),
            DMatrix::zeros(2, 2)
        )
        .is_err());
        let mrp = RewardProcess::new(g, DVector::zeros(2), DMatrix::zeros(2, 2)).unwrap();
        assert!(mrp.expected_total_reward(-1.0).is_err());
        assert!(mrp.discounted_reward(0.0).is_err());
    }
}
