//! Graph structure of Markov chains: communicating classes, irreducibility
//! and connectivity (paper Definitions 2.3–2.6).
//!
//! States are vertices; a directed edge `i → j` exists whenever the
//! transition rate `s_{i,j}` is positive. Two states *communicate* when each
//! is accessible from the other; the communicating classes are exactly the
//! strongly connected components of this digraph, computed here with an
//! iterative Tarjan algorithm (no recursion, so deep chains cannot overflow
//! the stack).

use crate::{Generator, SparseGenerator};

/// The communicating-class decomposition of a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classes {
    /// `class_of[i]` is the index of the class containing state `i`.
    class_of: Vec<usize>,
    /// Members of each class, in ascending state order.
    members: Vec<Vec<usize>>,
}

impl Classes {
    /// Number of communicating classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if there are no classes (empty chain).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Class index of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn class_of(&self, state: usize) -> usize {
        self.class_of[state]
    }

    /// Members of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Iterates over all classes.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.members.iter().map(Vec::as_slice)
    }
}

/// Adjacency lists of the transition digraph (positive-rate edges only).
fn adjacency(generator: &Generator) -> Vec<Vec<usize>> {
    let n = generator.n_states();
    let mut adj = vec![Vec::new(); n];
    for (from, to, _) in generator.transitions() {
        adj[from].push(to);
    }
    adj
}

/// Computes the communicating classes (strongly connected components) of the
/// chain with an iterative Tarjan algorithm.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{graph, Generator};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// // 0 <-> 1 communicate; 2 is absorbing and only reachable from 1.
/// let g = Generator::builder(3)
///     .rate(0, 1, 1.0)
///     .rate(1, 0, 1.0)
///     .rate(1, 2, 1.0)
///     .build()?;
/// let classes = graph::communicating_classes(&g);
/// assert_eq!(classes.len(), 2);
/// assert_eq!(classes.class_of(0), classes.class_of(1));
/// assert_ne!(classes.class_of(0), classes.class_of(2));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn communicating_classes(generator: &Generator) -> Classes {
    classes_of_adjacency(generator.n_states(), &adjacency(generator))
}

/// Sparse twin of [`communicating_classes`]: the same iterative Tarjan
/// decomposition over a CSR-backed generator, without densifying.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{graph, SparseGenerator};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = SparseGenerator::from_transitions(3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)])?;
/// assert_eq!(graph::communicating_classes_sparse(&g).len(), 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn communicating_classes_sparse(generator: &SparseGenerator) -> Classes {
    let n = generator.n_states();
    let mut adj = vec![Vec::new(); n];
    for (from, to, _) in generator.transitions() {
        adj[from].push(to);
    }
    classes_of_adjacency(n, &adj)
}

fn classes_of_adjacency(n: usize, adj: &[Vec<usize>]) -> Classes {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut class_of = vec![UNVISITED; n];
    let mut members: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: each frame is (vertex, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let class_id = members.len();
                    let mut component = Vec::new();
                    loop {
                        // dpm-lint: allow(no_panic, reason = "Tarjan's invariant: the stack holds the current SCC until its root pops it")
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        class_of[w] = class_id;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    members.push(component);
                }
            }
        }
    }

    Classes { class_of, members }
}

/// Returns `true` if the chain is irreducible (a single communicating
/// class, Definition 2.5).
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{graph, Generator};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = Generator::builder(2).rate(0, 1, 1.0).rate(1, 0, 2.0).build()?;
/// assert!(graph::is_irreducible(&g));
/// let h = Generator::builder(2).rate(0, 1, 1.0).build()?;
/// assert!(!graph::is_irreducible(&h));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn is_irreducible(generator: &Generator) -> bool {
    communicating_classes(generator).len() == 1
}

/// Returns the set of states reachable from `start` (including `start`).
///
/// # Panics
///
/// Panics if `start` is out of range.
#[must_use]
pub fn reachable_from(generator: &Generator, start: usize) -> Vec<bool> {
    let n = generator.n_states();
    assert!(start < n, "state {start} out of range for {n} states");
    let adj = adjacency(generator);
    let mut seen = vec![false; n];
    let mut queue = vec![start];
    seen[start] = true;
    while let Some(v) = queue.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                queue.push(w);
            }
        }
    }
    seen
}

/// Returns `true` if the transition graph is weakly connected — the paper's
/// "connected Markov process" (Definition 2.6), treating edges as
/// undirected.
#[must_use]
pub fn is_connected(generator: &Generator) -> bool {
    let n = generator.n_states();
    if n == 0 {
        return true;
    }
    let mut adj = vec![Vec::new(); n];
    for (from, to, _) in generator.transitions() {
        adj[from].push(to);
        adj[to].push(from);
    }
    let mut seen = vec![false; n];
    let mut queue = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = queue.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                count += 1;
                queue.push(w);
            }
        }
    }
    count == n
}

/// Classifies each state as recurrent (`true`) or transient (`false`) in the
/// finite-chain sense: a state is recurrent iff its communicating class has
/// no transition leaving the class (Definition 2.3 specialized to finite
/// chains, where every closed class is positive recurrent).
#[must_use]
pub fn recurrent_states(generator: &Generator) -> Vec<bool> {
    let classes = communicating_classes(generator);
    let n = generator.n_states();
    let mut class_is_closed = vec![true; classes.len()];
    for (from, to, _) in generator.transitions() {
        if classes.class_of(from) != classes.class_of(to) {
            class_is_closed[classes.class_of(from)] = false;
        }
    }
    (0..n)
        .map(|i| class_is_closed[classes.class_of(i)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(edges: &[(usize, usize)], n: usize) -> Generator {
        let mut b = Generator::builder(n);
        for &(i, j) in edges {
            b.add_rate(i, j, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_ring_is_one_class() {
        let g = chain(&[(0, 1), (1, 2), (2, 0)], 3);
        let c = communicating_classes(&g);
        assert_eq!(c.len(), 1);
        assert_eq!(c.members(0), &[0, 1, 2]);
        assert!(is_irreducible(&g));
    }

    #[test]
    fn two_rings_with_bridge() {
        let g = chain(&[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)], 4);
        let c = communicating_classes(&g);
        assert_eq!(c.len(), 2);
        assert_eq!(c.class_of(0), c.class_of(1));
        assert_eq!(c.class_of(2), c.class_of(3));
        assert_ne!(c.class_of(0), c.class_of(2));
        assert!(!is_irreducible(&g));
        // Weakly connected even though not strongly.
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_state_breaks_connectivity() {
        let g = chain(&[(0, 1), (1, 0)], 3);
        assert!(!is_connected(&g));
        let c = communicating_classes(&g);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reachability() {
        let g = chain(&[(0, 1), (1, 2)], 4);
        let r = reachable_from(&g, 0);
        assert_eq!(r, vec![true, true, true, false]);
        let r2 = reachable_from(&g, 2);
        assert_eq!(r2, vec![false, false, true, false]);
    }

    #[test]
    fn recurrent_and_transient_classification() {
        // 0 -> 1 <-> 2 : state 0 is transient, {1, 2} recurrent.
        let g = chain(&[(0, 1), (1, 2), (2, 1)], 3);
        assert_eq!(recurrent_states(&g), vec![false, true, true]);
    }

    #[test]
    fn absorbing_state_is_recurrent() {
        let g = chain(&[(0, 1)], 2);
        assert_eq!(recurrent_states(&g), vec![false, true]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A 20k-state ring exercises the iterative Tarjan on a deep path.
        let n = 20_000;
        let mut b = Generator::builder(n);
        for i in 0..n {
            b.add_rate(i, (i + 1) % n, 1.0);
        }
        let g = b.build().unwrap();
        assert!(is_irreducible(&g));
    }

    #[test]
    fn classes_iter_visits_all() {
        let g = chain(&[(0, 1), (1, 0), (2, 3), (3, 2)], 4);
        let c = communicating_classes(&g);
        let total: usize = c.iter().map(<[usize]>::len).sum();
        assert_eq!(total, 4);
        assert!(!c.is_empty());
    }
}
