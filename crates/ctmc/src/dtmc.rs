use std::fmt;

use dpm_linalg::{DMatrix, DVector};

use crate::CtmcError;

/// Validation slack for stochastic rows.
const ROW_SUM_TOL: f64 = 1e-9;

/// A discrete-time Markov chain with a validated (row-)stochastic transition
/// matrix.
///
/// Used directly by the DAC'98 discrete-time baseline formulation and
/// internally by uniformization-based CTMC algorithms.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::Dtmc;
/// use dpm_linalg::DMatrix;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let p = Dtmc::from_matrix(DMatrix::from_rows(&[
///     &[0.5, 0.5],
///     &[0.25, 0.75],
/// ]).map_err(dpm_ctmc::CtmcError::from)?)?;
/// let pi = p.stationary_gth()?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    matrix: DMatrix,
}

impl Dtmc {
    /// Validates `matrix` as a row-stochastic transition matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidStochastic`] if the matrix is not square,
    /// has entries outside `[0, 1]`, or has a row not summing to one.
    pub fn from_matrix(matrix: DMatrix) -> Result<Self, CtmcError> {
        if !matrix.is_square() || matrix.nrows() == 0 {
            return Err(CtmcError::InvalidStochastic {
                reason: format!(
                    "transition matrix must be square and non-empty, got {}x{}",
                    matrix.nrows(),
                    matrix.ncols()
                ),
            });
        }
        for i in 0..matrix.nrows() {
            let row = matrix.row(i);
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(CtmcError::InvalidStochastic {
                    reason: format!("row {i} sums to {sum}, expected 1"),
                });
            }
            for (j, &p) in row.iter().enumerate() {
                if !(0.0..=1.0 + ROW_SUM_TOL).contains(&p) {
                    return Err(CtmcError::InvalidStochastic {
                        reason: format!("probability {p} at ({i}, {j}) outside [0, 1]"),
                    });
                }
            }
        }
        Ok(Dtmc { matrix })
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.matrix.nrows()
    }

    /// One-step transition probability from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn probability(&self, i: usize, j: usize) -> f64 {
        self.matrix[(i, j)]
    }

    /// Borrows the transition matrix.
    #[must_use]
    pub fn matrix(&self) -> &DMatrix {
        &self.matrix
    }

    /// Advances a distribution one step: `π' = π P`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.n_states()`.
    #[must_use]
    pub fn step(&self, pi: &DVector) -> DVector {
        self.matrix.vec_mul(pi)
    }

    /// Stationary distribution by the Grassmann–Taksar–Heyman (GTH)
    /// elimination, which is subtraction-free and therefore numerically
    /// stable even for stiff chains.
    ///
    /// Requires the chain to be irreducible; on a reducible chain the result
    /// is the stationary distribution of the class containing the last
    /// state, which is usually not what you want — callers should check
    /// irreducibility first (see [`crate::graph::is_irreducible`]).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Numerical`] if a normalization sum degenerates
    /// to zero (which happens only on reducible chains).
    pub fn stationary_gth(&self) -> Result<DVector, CtmcError> {
        let n = self.n_states();
        let mut p = self.matrix.clone();
        // Eliminate states n-1 down to 1.
        for k in (1..n).rev() {
            let s: f64 = (0..k).map(|j| p[(k, j)]).sum();
            if s <= 0.0 {
                return Err(CtmcError::Numerical(
                    dpm_linalg::LinalgError::InvalidInput {
                        reason: format!(
                            "GTH elimination degenerate at state {k} (reducible chain?)"
                        ),
                    },
                ));
            }
            for i in 0..k {
                p[(i, k)] /= s;
            }
            for i in 0..k {
                let pik = p[(i, k)];
                // dpm-lint: allow(float_eq, reason = "exact structural-zero skip: only true zeros may be dropped from the elimination")
                if pik != 0.0 {
                    for j in 0..k {
                        let delta = pik * p[(k, j)];
                        p[(i, j)] += delta;
                    }
                }
            }
        }
        // Back substitution.
        let mut pi = DVector::zeros(n);
        pi[0] = 1.0;
        for k in 1..n {
            let mut sum = 0.0;
            for i in 0..k {
                sum += pi[i] * p[(i, k)];
            }
            pi[k] = sum;
        }
        pi.normalize_l1().map_err(CtmcError::Numerical)?;
        Ok(pi)
    }

    /// Stationary distribution by power iteration from the uniform
    /// distribution.
    ///
    /// Requires irreducibility and aperiodicity (a chain produced by
    /// [`crate::Generator::uniformize`] with margin > 1 is always
    /// aperiodic).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Numerical`] wrapping
    /// [`dpm_linalg::LinalgError::NotConverged`] if the iteration budget is
    /// exhausted.
    pub fn stationary_power(
        &self,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<DVector, CtmcError> {
        let n = self.n_states();
        let mut pi = DVector::constant(n, 1.0 / n as f64);
        let mut residual = f64::INFINITY;
        for _ in 0..max_iterations {
            let next = self.step(&pi);
            residual = (&next - &pi).norm_inf();
            pi = next;
            if residual <= tolerance {
                return Ok(pi);
            }
        }
        Err(CtmcError::Numerical(
            dpm_linalg::LinalgError::NotConverged {
                iterations: max_iterations,
                residual,
            },
        ))
    }

    /// Expected discounted total cost `v = c + β P v` for discount
    /// `β ∈ [0, 1)`, solved directly.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidParameter`] if `beta` is outside
    /// `[0, 1)` or `costs` has the wrong length, and propagates numerical
    /// failures.
    pub fn discounted_value(&self, costs: &DVector, beta: f64) -> Result<DVector, CtmcError> {
        if !(0.0..1.0).contains(&beta) {
            return Err(CtmcError::InvalidParameter {
                reason: format!("discount factor {beta} must be in [0, 1)"),
            });
        }
        let n = self.n_states();
        if costs.len() != n {
            return Err(CtmcError::InvalidParameter {
                reason: format!("cost vector length {} != {n}", costs.len()),
            });
        }
        // (I - beta P) v = c
        let a = &DMatrix::identity(n) - &self.matrix.scaled(beta);
        let v = a.lu()?.solve(costs)?;
        Ok(v)
    }
}

impl fmt::Display for Dtmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dtmc ({} states)\n{}", self.n_states(), self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Dtmc {
        Dtmc::from_matrix(DMatrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap()).unwrap()
    }

    #[test]
    fn validates_row_sums() {
        let m = DMatrix::from_rows(&[&[0.5, 0.4], &[0.5, 0.5]]).unwrap();
        assert!(matches!(
            Dtmc::from_matrix(m),
            Err(CtmcError::InvalidStochastic { .. })
        ));
    }

    #[test]
    fn validates_entry_range() {
        let m = DMatrix::from_rows(&[&[1.5, -0.5], &[0.5, 0.5]]).unwrap();
        assert!(Dtmc::from_matrix(m).is_err());
    }

    #[test]
    fn step_advances_distribution() {
        let p = two_state();
        let pi = DVector::from_vec(vec![1.0, 0.0]);
        let next = p.step(&pi);
        assert_eq!(next.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn gth_matches_hand_computed_stationary() {
        // pi P = pi with P as in two_state(): pi = (1/3, 2/3).
        let pi = two_state().stationary_gth().unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn power_matches_gth() {
        let p = two_state();
        let gth = p.stationary_gth().unwrap();
        let pow = p.stationary_power(1e-14, 100_000).unwrap();
        assert!((&gth - &pow).norm_inf() < 1e-10);
    }

    #[test]
    fn gth_handles_three_state_ring() {
        let p = Dtmc::from_matrix(
            DMatrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]).unwrap(),
        )
        .unwrap();
        let pi = p.stationary_gth().unwrap();
        for i in 0..3 {
            assert!((pi[i] - 1.0 / 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn power_method_reports_non_convergence_on_periodic_chain() {
        // Period-2 chain: power iteration from a non-stationary start point
        // oscillates. Uniform start is actually stationary here, so perturb
        // via an asymmetric chain with slow mixing and tiny budget instead.
        let p =
            Dtmc::from_matrix(DMatrix::from_rows(&[&[0.999, 0.001], &[0.0005, 0.9995]]).unwrap())
                .unwrap();
        assert!(p.stationary_power(1e-15, 3).is_err());
    }

    #[test]
    fn discounted_value_solves_fixed_point() {
        let p = two_state();
        let c = DVector::from_vec(vec![1.0, 2.0]);
        let beta = 0.9;
        let v = p.discounted_value(&c, beta).unwrap();
        let rhs = &c + &p.step_value(&v, beta);
        assert!((&v - &rhs).norm_inf() < 1e-10);
    }

    #[test]
    fn discounted_value_validates_inputs() {
        let p = two_state();
        let c = DVector::from_vec(vec![1.0, 2.0]);
        assert!(p.discounted_value(&c, 1.0).is_err());
        assert!(p.discounted_value(&DVector::zeros(3), 0.5).is_err());
    }

    impl Dtmc {
        /// Test helper: `β P v`.
        fn step_value(&self, v: &DVector, beta: f64) -> DVector {
            self.matrix.mul_vec(v).scaled(beta)
        }
    }
}
