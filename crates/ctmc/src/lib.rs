//! Continuous-time Markov chains (CTMCs) and Markov reward processes.
//!
//! This crate provides the stochastic-process substrate of the `dpm`
//! workspace, following Section II of Qiu & Pedram (DAC 1999):
//!
//! * [`Generator`] — a validated transition-rate (generator) matrix **G**
//!   (Eqns. 2.1–2.4): off-diagonal entries non-negative, rows summing to
//!   zero;
//! * [`SparseGenerator`] — the same invariants over compressed sparse row
//!   storage, for SYS-level chains whose transition count grows linearly in
//!   the state count;
//! * [`stationary`] — limiting-distribution solvers (`πG = 0`, `Σπ = 1`,
//!   Theorem 2.1) behind the unified [`stationary::Solver`] builder: direct
//!   LU, the numerically stable Grassmann–Taksar–Heyman elimination, power
//!   iteration on the uniformized chain, matrix-free Gauss–Seidel on the
//!   balance equations, and the ILU(0)-preconditioned Krylov tier
//!   (BiCGSTAB, restarted GMRES) for very large sparse chains
//!   ([`stationary::Method`]);
//! * [`graph`] — communicating classes (Definitions 2.3–2.6) via Tarjan's
//!   strongly-connected-components algorithm, irreducibility and
//!   connectivity checks;
//! * [`transient`] — transient state probabilities by uniformization;
//! * [`reward`] — Markov processes with reward rates and transition rewards
//!   (the `r_{i,i}` / `r_{i,j}` structure of Section II and Eqn. 2.5);
//! * [`Dtmc`] — discrete-time chains (used by uniformization, GTH, and the
//!   DAC'98 discrete-time baseline);
//! * [`birth_death`] — closed-form M/M/1/K results used as ground truth in
//!   tests.
//!
//! # Examples
//!
//! A two-state machine that breaks at rate 1 and is repaired at rate 3
//! spends 3/4 of its time up:
//!
//! ```
//! use dpm_ctmc::{Generator, stationary};
//!
//! # fn main() -> Result<(), dpm_ctmc::CtmcError> {
//! let g = Generator::builder(2)
//!     .rate(0, 1, 1.0) // up -> down
//!     .rate(1, 0, 3.0) // down -> up
//!     .build()?;
//! let (pi, _) = stationary::Solver::new(stationary::Method::Lu).solve(&g)?;
//! assert!((pi[0] - 0.75).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod birth_death;
mod dtmc;
mod error;
mod generator;
pub mod graph;
pub mod hitting;
pub mod reward;
pub mod sparse;
pub mod stationary;
pub mod transient;

pub use dtmc::Dtmc;
pub use error::CtmcError;
pub use generator::{Generator, GeneratorBuilder};
pub use reward::RewardProcess;
pub use sparse::SparseGenerator;
