use std::fmt;

use dpm_linalg::DMatrix;

use crate::CtmcError;

/// Validation slack for generator rows: row sums must be within this of zero,
/// relative to the largest rate magnitude in the row.
pub(crate) const ROW_SUM_TOL: f64 = 1e-9;

/// A validated transition-rate (generator) matrix of a continuous-time
/// Markov chain (paper Eqns. 2.1–2.4).
///
/// Invariants enforced at construction:
///
/// * square, with at least one state;
/// * all entries finite;
/// * off-diagonal entries (transition rates `s_{i,j}`) non-negative;
/// * each row sums to zero — the diagonal holds `-Σ_{j≠i} s_{i,j}`
///   (the paper writes the diagonal as `-s_{i,i}` with
///   `s_{i,i} = Σ_{j≠i} s_{i,j}`, Eqn. 2.4).
///
/// # Examples
///
/// ```
/// use dpm_ctmc::Generator;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = Generator::builder(2).rate(0, 1, 2.0).rate(1, 0, 5.0).build()?;
/// assert_eq!(g.rate(0, 1), 2.0);
/// assert_eq!(g.exit_rate(0), 2.0);
/// assert_eq!(g.matrix()[(0, 0)], -2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    matrix: DMatrix,
}

impl Generator {
    /// Starts building a generator for a chain with `n_states` states.
    #[must_use]
    pub fn builder(n_states: usize) -> GeneratorBuilder {
        GeneratorBuilder::new(n_states)
    }

    /// Validates an existing matrix as a generator.
    ///
    /// The diagonal must already contain the negated exit rates; use
    /// [`Generator::from_off_diagonal`] to have the diagonal filled in.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidGenerator`] if any invariant fails.
    pub fn from_matrix(matrix: DMatrix) -> Result<Self, CtmcError> {
        if !matrix.is_square() || matrix.nrows() == 0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!(
                    "generator must be square and non-empty, got {}x{}",
                    matrix.nrows(),
                    matrix.ncols()
                ),
            });
        }
        if !matrix.is_finite() {
            return Err(CtmcError::InvalidGenerator {
                reason: "generator contains non-finite entries".to_owned(),
            });
        }
        let n = matrix.nrows();
        for i in 0..n {
            let row = matrix.row(i);
            let scale = row.iter().fold(1.0f64, |m, x| m.max(x.abs()));
            let sum: f64 = row.iter().sum();
            if sum.abs() > ROW_SUM_TOL * scale {
                return Err(CtmcError::InvalidGenerator {
                    reason: format!("row {i} sums to {sum:e}, expected 0"),
                });
            }
            for (j, &x) in row.iter().enumerate() {
                if j != i && x < 0.0 {
                    return Err(CtmcError::InvalidGenerator {
                        reason: format!("negative off-diagonal rate {x} at ({i}, {j})"),
                    });
                }
            }
            if row[i] > 0.0 {
                return Err(CtmcError::InvalidGenerator {
                    reason: format!("positive diagonal entry {} at state {i}", row[i]),
                });
            }
        }
        Ok(Generator { matrix })
    }

    /// Builds a generator from a matrix of off-diagonal rates, overwriting
    /// the diagonal with the negated row sums.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidGenerator`] if the matrix is not square,
    /// contains non-finite entries, or has negative off-diagonal rates.
    pub fn from_off_diagonal(mut rates: DMatrix) -> Result<Self, CtmcError> {
        if !rates.is_square() || rates.nrows() == 0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!(
                    "generator must be square and non-empty, got {}x{}",
                    rates.nrows(),
                    rates.ncols()
                ),
            });
        }
        let n = rates.nrows();
        for i in 0..n {
            rates[(i, i)] = 0.0;
            let sum: f64 = rates.row(i).iter().sum();
            rates[(i, i)] = -sum;
        }
        Generator::from_matrix(rates)
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.matrix.nrows()
    }

    /// Transition rate `s_{i,j}` from state `i` to state `j` (`i ≠ j`), or
    /// the diagonal entry `-exit_rate(i)` when `i == j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.matrix[(i, j)]
    }

    /// Total exit rate of state `i` (the paper's `s_{i,i}`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn exit_rate(&self, i: usize) -> f64 {
        -self.matrix[(i, i)]
    }

    /// Largest exit rate over all states — the minimal valid uniformization
    /// constant.
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        (0..self.n_states())
            .map(|i| self.exit_rate(i))
            .fold(0.0, f64::max)
    }

    /// Borrows the underlying matrix.
    #[must_use]
    pub fn matrix(&self) -> &DMatrix {
        &self.matrix
    }

    /// Consumes the generator, returning the underlying matrix.
    #[must_use]
    pub fn into_matrix(self) -> DMatrix {
        self.matrix
    }

    /// Iterates over the non-zero off-diagonal transitions as
    /// `(from, to, rate)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n_states();
        (0..n).flat_map(move |i| {
            (0..n).filter_map(move |j| {
                let r = self.matrix[(i, j)];
                if i != j && r > 0.0 {
                    Some((i, j, r))
                } else {
                    None
                }
            })
        })
    }

    /// Uniformizes the chain: returns the discrete-time transition matrix
    /// `P = I + G/Λ` and the uniformization constant `Λ`.
    ///
    /// `Λ` is chosen as `max_exit_rate * margin`; `margin` must be ≥ 1 and
    /// a small slack (e.g. 1.02) guarantees strictly positive self-loop
    /// probabilities, which makes the uniformized chain aperiodic.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidParameter`] if `margin < 1` or every
    /// state is absorbing (`max_exit_rate == 0`).
    pub fn uniformize(&self, margin: f64) -> Result<(crate::Dtmc, f64), CtmcError> {
        if margin < 1.0 {
            return Err(CtmcError::InvalidParameter {
                reason: format!("uniformization margin {margin} must be >= 1"),
            });
        }
        let lambda = self.max_exit_rate() * margin;
        if lambda <= 0.0 {
            return Err(CtmcError::InvalidParameter {
                reason: "cannot uniformize a chain with no transitions".to_owned(),
            });
        }
        let n = self.n_states();
        let p = DMatrix::from_fn(n, n, |i, j| {
            let base = if i == j { 1.0 } else { 0.0 };
            base + self.matrix[(i, j)] / lambda
        });
        let dtmc = crate::Dtmc::from_matrix(p)?;
        Ok((dtmc, lambda))
    }
}

impl fmt::Display for Generator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Generator ({} states)\n{}", self.n_states(), self.matrix)
    }
}

/// Incremental builder for [`Generator`] matrices.
///
/// Rates added with [`GeneratorBuilder::rate`] accumulate, so parallel
/// transitions between the same pair of states merge naturally. The diagonal
/// is filled in by [`GeneratorBuilder::build`].
#[derive(Debug, Clone)]
pub struct GeneratorBuilder {
    n_states: usize,
    rates: DMatrix,
    error: Option<CtmcError>,
}

impl GeneratorBuilder {
    /// Creates a builder for a chain with `n_states` states.
    #[must_use]
    pub fn new(n_states: usize) -> Self {
        GeneratorBuilder {
            n_states,
            rates: DMatrix::zeros(n_states, n_states),
            error: None,
        }
    }

    /// Adds `rate` to the transition rate from state `from` to state `to`.
    ///
    /// Errors (out-of-range states, negative or non-finite rates, self
    /// loops) are deferred and reported by [`GeneratorBuilder::build`].
    #[must_use]
    pub fn rate(mut self, from: usize, to: usize, rate: f64) -> Self {
        self.add_rate(from, to, rate);
        self
    }

    /// Non-consuming variant of [`GeneratorBuilder::rate`] for use in loops.
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        if from >= self.n_states || to >= self.n_states {
            self.error = Some(CtmcError::StateOutOfRange {
                state: from.max(to),
                n_states: self.n_states,
            });
        } else if from == to {
            self.error = Some(CtmcError::InvalidGenerator {
                reason: format!("explicit self-loop rate at state {from}; diagonals are derived"),
            });
        } else if !rate.is_finite() || rate < 0.0 {
            self.error = Some(CtmcError::InvalidGenerator {
                reason: format!("rate {rate} from {from} to {to} must be finite and >= 0"),
            });
        } else {
            self.rates[(from, to)] += rate;
        }
        self
    }

    /// Finalizes the generator, computing the diagonal.
    ///
    /// # Errors
    ///
    /// Returns the first error recorded while adding rates, or a validation
    /// error from [`Generator::from_off_diagonal`].
    pub fn build(self) -> Result<Generator, CtmcError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Generator::from_off_diagonal(self.rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_rates() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(0, 1, 2.0)
            .rate(1, 0, 4.0)
            .build()
            .unwrap();
        assert_eq!(g.rate(0, 1), 3.0);
        assert_eq!(g.exit_rate(0), 3.0);
        assert_eq!(g.exit_rate(1), 4.0);
        assert_eq!(g.max_exit_rate(), 4.0);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let err = Generator::builder(2).rate(0, 5, 1.0).build().unwrap_err();
        assert!(matches!(err, CtmcError::StateOutOfRange { state: 5, .. }));
    }

    #[test]
    fn builder_rejects_self_loop() {
        let err = Generator::builder(2).rate(1, 1, 1.0).build().unwrap_err();
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
    }

    #[test]
    fn builder_rejects_negative_rate() {
        let err = Generator::builder(2).rate(0, 1, -1.0).build().unwrap_err();
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
    }

    #[test]
    fn builder_reports_first_error() {
        let err = Generator::builder(2)
            .rate(0, 1, -1.0)
            .rate(0, 9, 1.0)
            .build()
            .unwrap_err();
        // Negative rate came first.
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
    }

    #[test]
    fn from_matrix_validates_row_sums() {
        let m = DMatrix::from_rows(&[&[-1.0, 2.0], &[1.0, -1.0]]).unwrap();
        assert!(Generator::from_matrix(m).is_err());
    }

    #[test]
    fn from_matrix_validates_sign_pattern() {
        let m = DMatrix::from_rows(&[&[1.0, -1.0], &[0.0, 0.0]]).unwrap();
        assert!(Generator::from_matrix(m).is_err());
    }

    #[test]
    fn from_matrix_rejects_empty_and_non_square() {
        assert!(Generator::from_matrix(DMatrix::zeros(0, 0)).is_err());
        assert!(Generator::from_matrix(DMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn from_off_diagonal_fills_diagonal() {
        let m = DMatrix::from_rows(&[&[99.0, 2.0], &[3.0, 77.0]]).unwrap();
        let g = Generator::from_off_diagonal(m).unwrap();
        assert_eq!(g.matrix()[(0, 0)], -2.0);
        assert_eq!(g.matrix()[(1, 1)], -3.0);
    }

    #[test]
    fn transitions_iterates_nonzero() {
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(2, 0, 5.0)
            .build()
            .unwrap();
        let ts: Vec<_> = g.transitions().collect();
        assert_eq!(ts, vec![(0, 1, 1.0), (2, 0, 5.0)]);
    }

    #[test]
    fn uniformize_produces_stochastic_matrix() {
        let g = Generator::builder(2)
            .rate(0, 1, 2.0)
            .rate(1, 0, 6.0)
            .build()
            .unwrap();
        let (p, lambda) = g.uniformize(1.02).unwrap();
        assert!((lambda - 6.0 * 1.02).abs() < 1e-12);
        // Self-loop probabilities strictly positive thanks to the margin.
        assert!(p.probability(1, 1) > 0.0);
    }

    #[test]
    fn uniformize_rejects_bad_margin_and_absorbing_chain() {
        let g = Generator::builder(2).rate(0, 1, 1.0).build().unwrap();
        assert!(g.uniformize(0.5).is_err());
        // A zero matrix is a valid generator (every state absorbing) but
        // cannot be uniformized.
        let all_absorbing = Generator::from_matrix(DMatrix::zeros(2, 2)).unwrap();
        assert!(all_absorbing.uniformize(1.02).is_err());
    }

    #[test]
    fn absorbing_state_has_zero_exit_rate() {
        let g = Generator::builder(2).rate(0, 1, 1.5).build().unwrap();
        assert_eq!(g.exit_rate(1), 0.0);
    }

    #[test]
    fn display_mentions_state_count() {
        let g = Generator::builder(2).rate(0, 1, 1.0).build().unwrap();
        assert!(g.to_string().contains("2 states"));
    }
}
