use std::error::Error;
use std::fmt;

use dpm_linalg::LinalgError;

/// Error type for CTMC construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// A matrix failed generator-matrix validation (Eqns. 2.1–2.4).
    InvalidGenerator {
        /// What was violated and where.
        reason: String,
    },
    /// A matrix failed stochastic-matrix validation.
    InvalidStochastic {
        /// What was violated and where.
        reason: String,
    },
    /// The chain is reducible where an irreducible chain is required
    /// (Theorem 2.1 needs irreducibility for a unique limiting distribution).
    Reducible {
        /// Number of communicating classes found.
        classes: usize,
    },
    /// A state index was out of range.
    StateOutOfRange {
        /// Offending index.
        state: usize,
        /// Number of states in the chain.
        n_states: usize,
    },
    /// A numerical step failed in the underlying linear algebra.
    Numerical(LinalgError),
    /// An analysis parameter was invalid (negative time, bad tolerance, ...).
    InvalidParameter {
        /// Explanation.
        reason: String,
    },
    /// Every backend in a stationary-solver fallback chain was tried and
    /// rejected. Each entry is `(method, why it was rejected)` in the order
    /// the chain escalated.
    FallbackExhausted {
        /// The attempted methods with their rejection reasons.
        attempts: Vec<(String, String)>,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::InvalidGenerator { reason } => {
                write!(f, "invalid generator matrix: {reason}")
            }
            CtmcError::InvalidStochastic { reason } => {
                write!(f, "invalid stochastic matrix: {reason}")
            }
            CtmcError::Reducible { classes } => write!(
                f,
                "chain is reducible ({classes} communicating classes); limiting distribution is not unique"
            ),
            CtmcError::StateOutOfRange { state, n_states } => {
                write!(f, "state {state} out of range for chain with {n_states} states")
            }
            CtmcError::Numerical(e) => write!(f, "numerical failure: {e}"),
            CtmcError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            CtmcError::FallbackExhausted { attempts } => {
                write!(f, "all stationary solver fallbacks failed:")?;
                for (method, reason) in attempts {
                    write!(f, " [{method}: {reason}]")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for CtmcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CtmcError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CtmcError {
    fn from(e: LinalgError) -> Self {
        CtmcError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let err = CtmcError::Reducible { classes: 3 };
        assert!(err.to_string().contains('3'));
        let err = CtmcError::StateOutOfRange {
            state: 7,
            n_states: 4,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn wraps_linalg_error_with_source() {
        let inner = LinalgError::Singular { pivot: 0 };
        let err = CtmcError::from(inner.clone());
        assert_eq!(err, CtmcError::Numerical(inner));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CtmcError>();
    }
}
