//! Transient analysis by uniformization.
//!
//! The state distribution of a CTMC at time `t` is
//! `π(t) = Σ_k Poisson(Λt; k) · π(0) Pᵏ` where `P = I + G/Λ` is the
//! uniformized chain. The Poisson weights are computed outward from the
//! mode (a simplified Fox–Glynn scheme) so the sum neither under- nor
//! overflows even for large `Λt`, and the series is truncated once the
//! captured probability mass reaches `1 − ε`.

use dpm_linalg::DVector;

use crate::{CtmcError, Generator};

/// Default truncation error for the Poisson series.
pub const DEFAULT_EPSILON: f64 = 1e-12;

/// Poisson weights `{k: w_k}` over a contiguous range `[left, left+len)`,
/// normalized to sum to one, covering all but `epsilon` of the mass.
#[derive(Debug, Clone, PartialEq)]
struct PoissonWindow {
    left: usize,
    weights: Vec<f64>,
}

fn poisson_window(rate: f64, epsilon: f64) -> PoissonWindow {
    debug_assert!(rate >= 0.0);
    // dpm-lint: allow(float_eq, reason = "exact degenerate-case fast path: a zero uniformization rate has a closed form")
    if rate == 0.0 {
        return PoissonWindow {
            left: 0,
            weights: vec![1.0],
        };
    }
    let mode = rate.floor() as usize;
    // Unnormalized weights relative to the mode; ratios
    // w_{k+1}/w_k = rate/(k+1) keep everything in range.
    let mut right_weights = vec![1.0f64];
    let mut k = mode;
    loop {
        // dpm-lint: allow(no_panic, reason = "right_weights is seeded with one element before this loop")
        let next = right_weights.last().expect("non-empty") * rate / (k + 1) as f64;
        if next < epsilon * 1e-3 {
            break;
        }
        right_weights.push(next);
        k += 1;
        if k > mode + 10_000_000 {
            break;
        }
    }
    // Weights for indices mode-1, mode-2, ... until they become negligible.
    let mut left_weights = Vec::new();
    let mut w = 1.0f64;
    let mut j = mode;
    while j > 0 {
        // w_{j-1} = w_j * j / rate
        w *= j as f64 / rate;
        if w < epsilon * 1e-3 {
            break;
        }
        left_weights.push(w);
        j -= 1;
    }
    // Assemble: left part reversed, then the mode and right part.
    let mut weights: Vec<f64> = left_weights.into_iter().rev().collect();
    let first = mode - weights.len();
    weights.extend(right_weights);
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    PoissonWindow {
        left: first,
        weights,
    }
}

/// Computes the transient distribution `π(t)` from the initial distribution
/// `pi0`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] for negative `t`, a `pi0` of the
/// wrong length or not summing to one, or a chain with no transitions (for
/// which `π(t) = π(0)` trivially — pass `t = 0` instead).
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{transient, Generator};
/// use dpm_linalg::DVector;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = Generator::builder(2).rate(0, 1, 1.0).rate(1, 0, 1.0).build()?;
/// let pi0 = DVector::from_vec(vec![1.0, 0.0]);
/// let pi = transient::distribution_at(&g, &pi0, 50.0)?;
/// // Long horizon: converged to the (1/2, 1/2) stationary distribution.
/// assert!((pi[0] - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn distribution_at(generator: &Generator, pi0: &DVector, t: f64) -> Result<DVector, CtmcError> {
    distribution_at_with(generator, pi0, t, DEFAULT_EPSILON)
}

/// As [`distribution_at`] with an explicit truncation error `epsilon`.
///
/// # Errors
///
/// See [`distribution_at`]; additionally rejects non-positive `epsilon`.
pub fn distribution_at_with(
    generator: &Generator,
    pi0: &DVector,
    t: f64,
    epsilon: f64,
) -> Result<DVector, CtmcError> {
    let n = generator.n_states();
    if pi0.len() != n {
        return Err(CtmcError::InvalidParameter {
            reason: format!("initial distribution length {} != {n}", pi0.len()),
        });
    }
    if (pi0.sum() - 1.0).abs() > 1e-9 || pi0.iter().any(|p| p < -1e-12) {
        return Err(CtmcError::InvalidParameter {
            reason: "initial distribution must be a probability vector".to_owned(),
        });
    }
    if !(t >= 0.0 && t.is_finite()) {
        return Err(CtmcError::InvalidParameter {
            reason: format!("time {t} must be finite and non-negative"),
        });
    }
    if epsilon <= 0.0 || epsilon.is_nan() {
        return Err(CtmcError::InvalidParameter {
            reason: format!("epsilon {epsilon} must be positive"),
        });
    }
    // dpm-lint: allow(float_eq, reason = "exact degenerate-case fast paths: zero horizon or a chain with no transitions")
    if t == 0.0 || generator.max_exit_rate() == 0.0 {
        return Ok(pi0.clone());
    }

    let (dtmc, lambda) = generator.uniformize(1.0)?;
    let window = poisson_window(lambda * t, epsilon);

    let mut current = pi0.clone();
    // Advance to the left edge of the window.
    for _ in 0..window.left {
        current = dtmc.step(&current);
    }
    let mut result = DVector::zeros(n);
    for (offset, &w) in window.weights.iter().enumerate() {
        if offset > 0 {
            current = dtmc.step(&current);
        }
        result.axpy(w, &current);
    }
    // Weights were normalized, so result is a distribution up to rounding.
    result.normalize_l1().map_err(CtmcError::Numerical)?;
    Ok(result)
}

/// Probability of being in state `j` at time `t` having started in state
/// `i` — the paper's `p_{i⇒j}(t)`.
///
/// # Errors
///
/// As [`distribution_at`], plus [`CtmcError::StateOutOfRange`] for a bad
/// start state.
pub fn transition_probability(
    generator: &Generator,
    from: usize,
    to: usize,
    t: f64,
) -> Result<f64, CtmcError> {
    let n = generator.n_states();
    if from >= n || to >= n {
        return Err(CtmcError::StateOutOfRange {
            state: from.max(to),
            n_states: n,
        });
    }
    let mut pi0 = DVector::zeros(n);
    pi0[from] = 1.0;
    let pi = distribution_at(generator, &pi0, t)?;
    Ok(pi[to])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_window_sums_to_one() {
        for rate in [0.1, 1.0, 7.3, 100.0, 3000.0] {
            let w = poisson_window(rate, 1e-12);
            let total: f64 = w.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "rate {rate}");
        }
    }

    #[test]
    fn poisson_window_mode_has_largest_weight() {
        let rate = 25.7;
        let w = poisson_window(rate, 1e-12);
        let mode = rate.floor() as usize;
        let mode_weight = w.weights[mode - w.left];
        assert!(w.weights.iter().all(|&x| x <= mode_weight + 1e-15));
    }

    #[test]
    fn zero_rate_window_is_point_mass() {
        let w = poisson_window(0.0, 1e-12);
        assert_eq!(w.left, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn two_state_matches_closed_form() {
        // 0 -> 1 at rate a, 1 -> 0 at rate b: p_{0->1}(t) closed form.
        let a = 2.0;
        let b = 3.0;
        let g = Generator::builder(2)
            .rate(0, 1, a)
            .rate(1, 0, b)
            .build()
            .unwrap();
        for &t in &[0.05, 0.3, 1.0, 4.0] {
            let numeric = transition_probability(&g, 0, 1, t).unwrap();
            let exact = a / (a + b) * (1.0 - (-(a + b) * t).exp());
            assert!(
                (numeric - exact).abs() < 1e-9,
                "t={t}: {numeric} vs {exact}"
            );
        }
    }

    #[test]
    fn time_zero_returns_initial() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        let pi0 = DVector::from_vec(vec![0.3, 0.7]);
        let pi = distribution_at(&g, &pi0, 0.0).unwrap();
        assert_eq!(pi, pi0);
    }

    #[test]
    fn long_horizon_converges_to_stationary() {
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(1, 2, 2.0)
            .rate(2, 0, 3.0)
            .build()
            .unwrap();
        let pi0 = DVector::from_vec(vec![1.0, 0.0, 0.0]);
        let transient = distribution_at(&g, &pi0, 200.0).unwrap();
        let stationary = crate::stationary::Solver::new(crate::stationary::Method::Gth)
            .solve(&g)
            .unwrap()
            .0;
        assert!((&transient - &stationary).norm_inf() < 1e-9);
    }

    #[test]
    fn distribution_stays_normalized_along_the_way() {
        let g = Generator::builder(2)
            .rate(0, 1, 10.0)
            .rate(1, 0, 0.1)
            .build()
            .unwrap();
        let pi0 = DVector::from_vec(vec![1.0, 0.0]);
        for &t in &[0.01, 0.1, 1.0, 10.0] {
            let pi = distribution_at(&g, &pi0, t).unwrap();
            assert!((pi.sum() - 1.0).abs() < 1e-12);
            assert!(pi.iter().all(|p| p >= 0.0));
        }
    }

    #[test]
    fn validates_inputs() {
        let g = Generator::builder(2)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        let pi0 = DVector::from_vec(vec![1.0, 0.0]);
        assert!(distribution_at(&g, &pi0, -1.0).is_err());
        assert!(distribution_at(&g, &DVector::zeros(2), 1.0).is_err());
        assert!(distribution_at(&g, &DVector::zeros(3), 1.0).is_err());
        assert!(distribution_at_with(&g, &pi0, 1.0, 0.0).is_err());
        assert!(transition_probability(&g, 0, 5, 1.0).is_err());
    }

    #[test]
    fn absorbing_chain_accumulates_in_absorbing_state() {
        let g = Generator::builder(2).rate(0, 1, 1.0).build().unwrap();
        let p = transition_probability(&g, 0, 1, 3.0).unwrap();
        let exact = 1.0 - (-3.0f64).exp();
        assert!((p - exact).abs() < 1e-9);
    }
}
