//! First-passage (hitting) times and the embedded jump chain.
//!
//! Power-management questions like "starting asleep with an empty queue,
//! how long until the provider is serving again?" are first-passage
//! questions on the policy-induced chain. For a CTMC with generator `G`
//! and target set `T`, the expected hitting times `h` solve
//!
//! ```text
//! h_i = 0                      for i ∈ T,
//! Σ_j G_{i,j} h_j = −1         for i ∉ T.
//! ```

use dpm_linalg::{DMatrix, DVector};

use crate::{CtmcError, Dtmc, Generator};

/// Expected time to first reach any state in `targets`, from every state.
///
/// States that cannot reach the target set get `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] if `targets` is empty or
/// contains an out-of-range state, and propagates solver failures.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{hitting, Generator};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// // 0 -> 1 at rate 2, 1 -> 2 at rate 4: E[time 0 to 2] = 1/2 + 1/4.
/// let g = Generator::builder(3)
///     .rate(0, 1, 2.0)
///     .rate(1, 2, 4.0)
///     .build()?;
/// let h = hitting::expected_hitting_times(&g, &[2])?;
/// assert!((h[0] - 0.75).abs() < 1e-12);
/// assert!((h[1] - 0.25).abs() < 1e-12);
/// assert_eq!(h[2], 0.0);
/// # Ok(())
/// # }
/// ```
pub fn expected_hitting_times(
    generator: &Generator,
    targets: &[usize],
) -> Result<DVector, CtmcError> {
    let n = generator.n_states();
    if targets.is_empty() {
        return Err(CtmcError::InvalidParameter {
            reason: "target set must be non-empty".to_owned(),
        });
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(CtmcError::StateOutOfRange {
                state: t,
                n_states: n,
            });
        }
        is_target[t] = true;
    }
    // Split off the states that can reach the target at all.
    let mut can_reach = is_target.clone();
    // Reverse reachability by fixed point (small chains; O(n·edges)).
    loop {
        let mut changed = false;
        for (from, to, _) in generator.transitions() {
            if can_reach[to] && !can_reach[from] {
                can_reach[from] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let interior: Vec<usize> = (0..n).filter(|&i| !is_target[i] && can_reach[i]).collect();
    let mut h = DVector::from_fn(n, |i| if can_reach[i] { 0.0 } else { f64::INFINITY });
    if interior.is_empty() {
        return Ok(h);
    }
    let col_of: Vec<Option<usize>> = {
        let mut map = vec![None; n];
        for (c, &i) in interior.iter().enumerate() {
            map[i] = Some(c);
        }
        map
    };
    let k = interior.len();
    let mut a = DMatrix::zeros(k, k);
    let b = DVector::constant(k, -1.0);
    for (row, &i) in interior.iter().enumerate() {
        for (j, &col_slot) in col_of.iter().enumerate() {
            let rate = generator.rate(i, j);
            if let Some(col) = col_slot {
                a[(row, col)] = rate;
            }
            // Transitions into target states contribute h_j = 0 and need
            // no matrix entry. Transitions into states that cannot reach
            // the target make the unconditional expectation diverge; those
            // rows are detected and marked infinite below.
        }
    }
    // States from which the target is not reached almost surely have
    // infinite expected hitting time: that happens exactly when some path
    // escapes to a state that cannot reach the target.
    let mut diverges = vec![false; k];
    for (row, &i) in interior.iter().enumerate() {
        for (j, &reaches) in can_reach.iter().enumerate() {
            if generator.rate(i, j) > 0.0 && i != j && !reaches {
                diverges[row] = true;
            }
        }
    }
    // Propagate divergence backwards through interior transitions.
    loop {
        let mut changed = false;
        for (row, &i) in interior.iter().enumerate() {
            if diverges[row] {
                continue;
            }
            for (col, &j) in interior.iter().enumerate() {
                if diverges[col] && generator.rate(i, j) > 0.0 && i != j {
                    diverges[row] = true;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let solvable: Vec<usize> = (0..k).filter(|&r| !diverges[r]).collect();
    if solvable.len() < k {
        // Re-solve on the convergent subset only.
        let sub_col: Vec<Option<usize>> = {
            let mut map = vec![None; k];
            for (c, &r) in solvable.iter().enumerate() {
                map[r] = Some(c);
            }
            map
        };
        let m = solvable.len();
        if m > 0 {
            let mut sa = DMatrix::zeros(m, m);
            let sb = DVector::constant(m, -1.0);
            for (srow, &r) in solvable.iter().enumerate() {
                for c in 0..k {
                    if let Some(scol) = sub_col[c] {
                        sa[(srow, scol)] = a[(r, c)];
                    }
                }
            }
            let sh = sa.lu().map_err(CtmcError::Numerical)?.solve(&sb)?;
            for (srow, &r) in solvable.iter().enumerate() {
                h[interior[r]] = sh[srow];
            }
        }
        for (row, &i) in interior.iter().enumerate() {
            if diverges[row] {
                h[i] = f64::INFINITY;
            }
        }
        return Ok(h);
    }
    let solved = a.lu().map_err(CtmcError::Numerical)?.solve(&b)?;
    for (row, &i) in interior.iter().enumerate() {
        h[i] = solved[row];
    }
    Ok(h)
}

/// Probability of reaching `targets` before `avoid`, from every state.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidParameter`] for empty/overlapping sets or
/// out-of-range states, and propagates solver failures.
pub fn hitting_probabilities(
    generator: &Generator,
    targets: &[usize],
    avoid: &[usize],
) -> Result<DVector, CtmcError> {
    let n = generator.n_states();
    if targets.is_empty() {
        return Err(CtmcError::InvalidParameter {
            reason: "target set must be non-empty".to_owned(),
        });
    }
    let mut kind = vec![0u8; n]; // 0 interior, 1 target, 2 avoid
    for &t in targets {
        if t >= n {
            return Err(CtmcError::StateOutOfRange {
                state: t,
                n_states: n,
            });
        }
        kind[t] = 1;
    }
    for &x in avoid {
        if x >= n {
            return Err(CtmcError::StateOutOfRange {
                state: x,
                n_states: n,
            });
        }
        if kind[x] == 1 {
            return Err(CtmcError::InvalidParameter {
                reason: format!("state {x} is both target and avoided"),
            });
        }
        kind[x] = 2;
    }
    let interior: Vec<usize> = (0..n).filter(|&i| kind[i] == 0).collect();
    let col_of: Vec<Option<usize>> = {
        let mut map = vec![None; n];
        for (c, &i) in interior.iter().enumerate() {
            map[i] = Some(c);
        }
        map
    };
    let k = interior.len();
    let mut p = DVector::from_fn(n, |i| if kind[i] == 1 { 1.0 } else { 0.0 });
    if k == 0 {
        return Ok(p);
    }
    // Σ_j G_{i,j} p_j = 0 for interior i, with boundary values fixed. An
    // interior state with zero exit rate never reaches the target.
    let mut a = DMatrix::zeros(k, k);
    let mut b = DVector::zeros(k);
    for (row, &i) in interior.iter().enumerate() {
        // dpm-lint: allow(float_eq, reason = "exact test for an absorbing state: exit rates are sums of validated non-negative rates")
        if generator.exit_rate(i) == 0.0 {
            // Absorbing interior state: p = 0 (equation p_i = 0).
            a[(row, row)] = 1.0;
            continue;
        }
        for j in 0..n {
            let rate = generator.rate(i, j);
            match col_of[j] {
                Some(col) => a[(row, col)] = rate,
                None => {
                    if kind[j] == 1 && i != j {
                        b[row] -= rate; // move known p_j = 1 across
                    }
                }
            }
        }
    }
    let solved = a.lu().map_err(CtmcError::Numerical)?.solve(&b)?;
    for (row, &i) in interior.iter().enumerate() {
        p[i] = solved[row].clamp(0.0, 1.0);
    }
    Ok(p)
}

/// The embedded (jump) chain of a CTMC: transition probabilities
/// `P_{i,j} = s_{i,j} / s_i` at jump epochs. Absorbing states get a
/// self-loop.
///
/// # Errors
///
/// Propagates stochastic-matrix validation (cannot fail for a valid
/// generator).
///
/// # Examples
///
/// ```
/// use dpm_ctmc::{hitting, Generator};
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = Generator::builder(2).rate(0, 1, 3.0).rate(1, 0, 5.0).build()?;
/// let jump = hitting::embedded_chain(&g)?;
/// assert_eq!(jump.probability(0, 1), 1.0);
/// # Ok(())
/// # }
/// ```
pub fn embedded_chain(generator: &Generator) -> Result<Dtmc, CtmcError> {
    let n = generator.n_states();
    let m = DMatrix::from_fn(n, n, |i, j| {
        let exit = generator.exit_rate(i);
        // dpm-lint: allow(float_eq, reason = "exact test for an absorbing state: exit rates are sums of validated non-negative rates")
        if exit == 0.0 {
            // Absorbing: self-loop in the jump chain.
            if i == j {
                1.0
            } else {
                0.0
            }
        } else if i == j {
            0.0
        } else {
            generator.rate(i, j) / exit
        }
    });
    Dtmc::from_matrix(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_hitting_time_adds_means() {
        let g = Generator::builder(3)
            .rate(0, 1, 2.0)
            .rate(1, 2, 4.0)
            .build()
            .unwrap();
        let h = expected_hitting_times(&g, &[2]).unwrap();
        assert!((h[0] - 0.75).abs() < 1e-12);
        assert!((h[1] - 0.25).abs() < 1e-12);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn hitting_time_with_detour() {
        // 0 -> 1 (rate 1) or 0 -> 2 (rate 1); 1 -> 2 at rate 1.
        // h_0 = 1/2 + (1/2) h_1, h_1 = 1.
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(0, 2, 1.0)
            .rate(1, 2, 1.0)
            .build()
            .unwrap();
        let h = expected_hitting_times(&g, &[2]).unwrap();
        assert!((h[0] - 1.0).abs() < 1e-12);
        assert!((h[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_states_get_infinity() {
        // 2 cannot reach 0.
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        let h = expected_hitting_times(&g, &[0]).unwrap();
        assert!(h[1].is_finite());
        assert!(h[2].is_infinite());
    }

    #[test]
    fn escape_route_makes_expectation_infinite() {
        // From 1 the chain may fall into absorbing 2, never reaching 0.
        let g = Generator::builder(3)
            .rate(1, 0, 1.0)
            .rate(1, 2, 1.0)
            .build()
            .unwrap();
        let h = expected_hitting_times(&g, &[0]).unwrap();
        assert_eq!(h[0], 0.0);
        assert!(h[1].is_infinite());
        assert!(h[2].is_infinite());
    }

    #[test]
    fn hitting_time_validates() {
        let g = Generator::builder(2).rate(0, 1, 1.0).build().unwrap();
        assert!(expected_hitting_times(&g, &[]).is_err());
        assert!(expected_hitting_times(&g, &[5]).is_err());
    }

    #[test]
    fn hitting_probability_gamblers_ruin() {
        // Symmetric walk on 0..4 with absorbing ends: P(hit 4 before 0 | start 2) = 1/2.
        let mut b = Generator::builder(5);
        for i in 1..4 {
            b.add_rate(i, i - 1, 1.0);
            b.add_rate(i, i + 1, 1.0);
        }
        let g = b.build().unwrap();
        let p = hitting_probabilities(&g, &[4], &[0]).unwrap();
        assert!((p[2] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
        assert!((p[3] - 0.75).abs() < 1e-12);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[4], 1.0);
    }

    #[test]
    fn hitting_probability_validates() {
        let g = Generator::builder(2).rate(0, 1, 1.0).build().unwrap();
        assert!(hitting_probabilities(&g, &[], &[0]).is_err());
        assert!(hitting_probabilities(&g, &[1], &[1]).is_err());
        assert!(hitting_probabilities(&g, &[9], &[]).is_err());
    }

    #[test]
    fn embedded_chain_normalizes_rates() {
        let g = Generator::builder(3)
            .rate(0, 1, 1.0)
            .rate(0, 2, 3.0)
            .rate(1, 0, 5.0)
            .rate(2, 0, 5.0)
            .build()
            .unwrap();
        let jump = embedded_chain(&g).unwrap();
        assert!((jump.probability(0, 1) - 0.25).abs() < 1e-12);
        assert!((jump.probability(0, 2) - 0.75).abs() < 1e-12);
        assert_eq!(jump.probability(1, 0), 1.0);
    }

    #[test]
    fn embedded_chain_handles_absorbing() {
        let g = Generator::builder(2).rate(0, 1, 2.0).build().unwrap();
        let jump = embedded_chain(&g).unwrap();
        assert_eq!(jump.probability(1, 1), 1.0);
    }
}
