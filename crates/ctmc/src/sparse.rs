//! Sparse (CSR-backed) generator matrices.
//!
//! A SYS-level generator for a power-managed system has a handful of
//! transitions per state — an arrival, a departure, and the mode switches —
//! so its nonzero count grows linearly in the state count while the dense
//! representation grows quadratically. [`SparseGenerator`] keeps the same
//! invariants as the dense [`Generator`] (off-diagonal rates non-negative,
//! rows summing to zero) over a [`CsrMatrix`], and the solvers in
//! [`crate::stationary`] operate on it without ever materializing a dense
//! matrix.

use dpm_linalg::{CsrMatrix, DVector};

use crate::{CtmcError, Generator};

/// A validated transition-rate matrix in compressed sparse row storage.
///
/// Construction enforces the generator-matrix conditions (Eqns. 2.1–2.4 of
/// the paper): off-diagonal entries are non-negative and finite, and each
/// diagonal entry is the negated sum of its row's off-diagonal entries.
///
/// # Examples
///
/// ```
/// use dpm_ctmc::SparseGenerator;
///
/// # fn main() -> Result<(), dpm_ctmc::CtmcError> {
/// let g = SparseGenerator::from_transitions(2, &[(0, 1, 1.0), (1, 0, 3.0)])?;
/// assert_eq!(g.rate(0, 1), 1.0);
/// assert_eq!(g.exit_rate(1), 3.0);
/// assert_eq!(g.nnz(), 4); // two rates + two diagonal entries
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGenerator {
    /// Full generator including diagonal entries.
    csr: CsrMatrix,
    /// Exit rates, `exit[i] = -G[i][i]`.
    exit: Vec<f64>,
}

impl SparseGenerator {
    /// Builds a sparse generator from off-diagonal `(from, to, rate)`
    /// transitions; diagonal entries are derived. Duplicate transitions
    /// accumulate, matching [`GeneratorBuilder::add_rate`] semantics.
    ///
    /// [`GeneratorBuilder::add_rate`]: crate::GeneratorBuilder::add_rate
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateOutOfRange`] for an index `>= n_states` and
    /// [`CtmcError::InvalidGenerator`] for a self-loop, a negative rate, or
    /// a non-finite rate.
    pub fn from_transitions(
        n_states: usize,
        transitions: &[(usize, usize, f64)],
    ) -> Result<SparseGenerator, CtmcError> {
        let mut triplets = Vec::with_capacity(2 * transitions.len() + n_states);
        let mut exit = vec![0.0f64; n_states];
        for &(from, to, rate) in transitions {
            if from >= n_states || to >= n_states {
                return Err(CtmcError::StateOutOfRange {
                    state: from.max(to),
                    n_states,
                });
            }
            if from == to {
                return Err(CtmcError::InvalidGenerator {
                    reason: format!("self-loop rate at state {from}; diagonals are derived"),
                });
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err(CtmcError::InvalidGenerator {
                    reason: format!(
                        "rate {rate} on transition {from} -> {to} must be finite and non-negative"
                    ),
                });
            }
            if rate > 0.0 {
                triplets.push((from, to, rate));
                exit[from] += rate;
            }
        }
        for (i, &e) in exit.iter().enumerate() {
            if e > 0.0 {
                triplets.push((i, i, -e));
            }
        }
        let csr = CsrMatrix::from_triplets(n_states, n_states, &triplets)
            .map_err(CtmcError::Numerical)?;
        Ok(SparseGenerator { csr, exit })
    }

    /// Converts a dense generator, keeping only its nonzero entries.
    #[must_use]
    pub fn from_generator(generator: &Generator) -> SparseGenerator {
        let csr = CsrMatrix::from_dense(generator.matrix());
        let exit = (0..generator.n_states())
            .map(|i| generator.exit_rate(i))
            .collect();
        SparseGenerator { csr, exit }
    }

    /// Materializes the dense equivalent. `O(n²)` memory — intended for the
    /// dense-only solvers ([`crate::stationary::Method::Lu`] /
    /// [`crate::stationary::Method::Gth`]) and for tests; defeats the point
    /// of sparsity at scale.
    ///
    /// # Errors
    ///
    /// Propagates dense generator validation, which cannot fail for a
    /// `SparseGenerator` built through the checked constructors.
    pub fn to_generator(&self) -> Result<Generator, CtmcError> {
        Generator::from_matrix(self.csr.to_dense())
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.csr.nrows()
    }

    /// Number of stored entries (off-diagonal transitions plus diagonals).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    /// The transition rate from `i` to `j` (`i != j`), or the diagonal entry
    /// if `i == j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.csr.get(i, j)
    }

    /// Total exit rate of state `i`, `-G[i][i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn exit_rate(&self, i: usize) -> f64 {
        self.exit[i]
    }

    /// The largest exit rate, used as the uniformization constant base.
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().copied().fold(0.0, f64::max)
    }

    /// The underlying CSR matrix (diagonal included).
    #[must_use]
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// Iterates over the off-diagonal transitions `(from, to, rate)` with
    /// `rate > 0`.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.csr.iter().filter(|&(i, j, rate)| i != j && rate > 0.0)
    }

    /// One uniformized step `π ← π P` with `P = I + G/Λ`, computed
    /// matrix-free as `π + (πG)/Λ`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.n_states()` or `lambda <= 0`.
    #[must_use]
    pub fn uniformized_step(&self, pi: &DVector, lambda: f64) -> DVector {
        assert!(lambda > 0.0, "uniformization constant must be positive");
        let mut next = self.csr.vec_mul(pi);
        next.scale_mut(1.0 / lambda);
        next.axpy(1.0, pi);
        next
    }

    /// Maximum absolute row sum — zero (to tolerance) for a valid generator.
    #[must_use]
    pub fn max_row_sum_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.n_states() {
            let sum: f64 = self.csr.row(i).map(|(_, v)| v).sum();
            max = max.max(sum.abs());
        }
        max
    }

    /// Internal consistency check used by tests.
    #[cfg(test)]
    pub(crate) fn is_consistent(&self) -> bool {
        self.exit.len() == self.n_states()
            && self.csr.is_square()
            && self.max_row_sum_error()
                <= crate::generator::ROW_SUM_TOL * (1.0 + self.max_exit_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_state() -> SparseGenerator {
        SparseGenerator::from_transitions(3, &[(0, 1, 2.0), (1, 2, 1.0), (2, 0, 4.0), (1, 0, 0.5)])
            .unwrap()
    }

    #[test]
    fn rates_and_exits_match_construction() {
        let g = three_state();
        assert_eq!(g.rate(0, 1), 2.0);
        assert_eq!(g.rate(1, 0), 0.5);
        assert_eq!(g.rate(0, 2), 0.0);
        assert_eq!(g.exit_rate(1), 1.5);
        assert_eq!(g.rate(1, 1), -1.5);
        assert_eq!(g.max_exit_rate(), 4.0);
        assert!(g.is_consistent());
    }

    #[test]
    fn duplicate_transitions_accumulate() {
        let g = SparseGenerator::from_transitions(2, &[(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(g.rate(0, 1), 3.0);
        assert_eq!(g.exit_rate(0), 3.0);
    }

    #[test]
    fn rejects_invalid_transitions() {
        assert!(matches!(
            SparseGenerator::from_transitions(2, &[(0, 2, 1.0)]),
            Err(CtmcError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            SparseGenerator::from_transitions(2, &[(1, 1, 1.0)]),
            Err(CtmcError::InvalidGenerator { .. })
        ));
        assert!(matches!(
            SparseGenerator::from_transitions(2, &[(0, 1, -1.0)]),
            Err(CtmcError::InvalidGenerator { .. })
        ));
        assert!(matches!(
            SparseGenerator::from_transitions(2, &[(0, 1, f64::NAN)]),
            Err(CtmcError::InvalidGenerator { .. })
        ));
    }

    #[test]
    fn dense_round_trip_preserves_rates() {
        let g = three_state();
        let dense = g.to_generator().unwrap();
        let back = SparseGenerator::from_generator(&dense);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.rate(i, j) - back.rate(i, j)).abs() < 1e-15);
            }
            assert!((g.exit_rate(i) - dense.exit_rate(i)).abs() < 1e-15);
        }
    }

    #[test]
    fn transitions_iterate_off_diagonal_only() {
        let g = three_state();
        let mut ts: Vec<_> = g.transitions().collect();
        ts.sort_by_key(|&(i, j, _)| (i, j));
        assert_eq!(ts, vec![(0, 1, 2.0), (1, 0, 0.5), (1, 2, 1.0), (2, 0, 4.0)]);
    }

    #[test]
    fn uniformized_step_preserves_mass() {
        let g = three_state();
        let pi = DVector::from_vec(vec![0.2, 0.3, 0.5]);
        let lambda = 1.05 * g.max_exit_rate();
        let next = g.uniformized_step(&pi, lambda);
        assert!((next.sum() - 1.0).abs() < 1e-12);
        assert!(next.iter().all(|p| p >= 0.0));
    }

    #[test]
    fn zero_rate_transitions_are_dropped() {
        let g =
            SparseGenerator::from_transitions(3, &[(0, 1, 1.0), (1, 2, 0.0), (1, 0, 1.0)]).unwrap();
        // (1, 2) contributes nothing; state 2 is absorbing with no row.
        assert_eq!(g.exit_rate(2), 0.0);
        assert_eq!(g.nnz(), 4);
    }

    #[test]
    fn empty_generator_is_valid() {
        let g = SparseGenerator::from_transitions(2, &[]).unwrap();
        assert_eq!(g.nnz(), 0);
        assert!(g.is_consistent());
    }
}
