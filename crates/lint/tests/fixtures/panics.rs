//! Planted library-path panics: four findings when checked as library
//! code, none when checked as a binary.

fn explosive(v: Option<u32>, w: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = w.expect("present");
    if a > b {
        panic!("boom");
    }
    unreachable!()
}
