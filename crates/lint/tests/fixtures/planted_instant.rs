//! CI smoke fixture: a planted wall-clock read. `dpm-lint --deny` over
//! this file must exit nonzero; see scripts/ci.sh.

pub fn timestamp() -> std::time::Instant {
    std::time::Instant::now()
}
