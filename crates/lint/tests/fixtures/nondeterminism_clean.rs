//! The same tokens in prose, strings and test code: zero findings.
//! `Instant`, `SystemTime` and `HashMap` in doc comments are prose.

const LABEL: &str = "Instant HashMap SystemTime thread_rng env::var";

// A plain comment mentioning from_entropy must not fire either.

fn deterministic() -> &'static str {
    LABEL
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::time::Instant;

    fn helper() -> bool {
        let started = Instant::now();
        let mut seen = HashSet::new();
        seen.insert(1);
        started.elapsed().as_nanos() > 0 && !seen.is_empty()
    }
}
