//! Correctly annotated exceptions: zero findings, three allows used.

use std::time::Instant; // dpm-lint: allow(nondeterminism, reason = "fixture: trailing allow on its own line")

// dpm-lint: allow(nondeterminism, reason = "fixture: standalone allow binds the next code line")
fn stamp() -> Instant {
    Instant::now() // dpm-lint: allow(nondeterminism, reason = "fixture: second trailing allow")
}
