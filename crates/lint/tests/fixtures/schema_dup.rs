//! Planted schema-registry violations: a duplicated id, a stale version
//! left behind after a bump, and an id used outside any const.

pub const FORMAT: &str = "dpm-dup/v1";
pub const FORMAT_AGAIN: &str = "dpm-dup/v1";

pub const NEW: &str = "dpm-stale/v2";
pub const OLD: &str = "dpm-stale/v1";

fn loose() -> &'static str {
    "dpm-loose/v1"
}
