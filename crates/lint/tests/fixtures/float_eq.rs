//! Planted float-equality comparisons: three findings.

fn compare(x: f64, y: f64) -> bool {
    let exact = x == 1.0;
    let negated = y != 0.5;
    let constant = x == f64::EPSILON;
    let integer_ok = (x as u64) == 3;
    let tolerant_ok = (x - y).abs() < 1e-9;
    exact || negated || constant || integer_ok || tolerant_ok
}
