//! One planted swallowed Result; the write!/writeln! discards are the
//! infallible fmt::Write-into-String idiom and stay clean.

use std::fmt::Write as _;

fn discard(r: Result<u32, String>) {
    let _ = r;
}

fn formatting(out: &mut String) {
    let _ = write!(out, "ok");
    let _ = writeln!(out, "ok");
}
