//! Planted float-bit-keyed ordered containers: three findings, one
//! allowed occurrence, and integer/string keys that must stay clean.

use std::collections::{BTreeMap, BTreeSet};

struct F64Bits(u64);

fn planted() {
    let by_weight: BTreeMap<F64Bits, usize> = BTreeMap::new();
    let turbofish = BTreeMap::<OrderedFloat<f64>, usize>::new();
    let frontier: BTreeSet<WeightBits> = BTreeSet::new();
    // dpm-lint: allow(float_ord_key, reason = "fixture: keys are quantized before to_bits, so bit order equals numeric order")
    let allowed: BTreeMap<F64Bits, usize> = BTreeMap::new();
    let clean_value: BTreeMap<u64, f64> = BTreeMap::new();
    let clean_key: BTreeSet<String> = BTreeSet::new();
}
