//! Planted determinism-taint violations; every marked line is a finding.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

fn timestamps() -> u64 {
    let start = Instant::now();
    drop(start);
    let stamp = SystemTime::now();
    drop(stamp);
    0
}

fn hash_order(map: HashMap<u32, u32>) -> usize {
    map.len()
}

fn os_entropy() {
    let rng = rand::thread_rng();
    drop(rng);
}

fn environment() -> Option<String> {
    std::env::var("DPM_MODE").ok()
}
