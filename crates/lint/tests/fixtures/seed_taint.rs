//! Planted seed-provenance violations: literal and arithmetic seeds at
//! RNG sinks, one audited exemption, and one properly derived seed.

fn literal_seed() {
    let rng = ChaCha8Rng::seed_from_u64(42);
    drop(rng);
}

fn arithmetic_seed(root: u64, index: u64) {
    let rng = ChaCha8Rng::seed_from_u64(root ^ index);
    drop(rng);
}

fn sim_literal() {
    let cfg = SimConfig::new(7);
    drop(cfg);
}

fn audited_key() {
    let mut key = [0u8; 32];
    key[0] = 1;
    let rng = ChaCha8Rng::from_seed(key); // dpm-lint: allow(seed_provenance, reason = "fixture: audited fixed key")
    drop(rng);
}

fn derived(root: u64, point: u64, rep: u64) {
    let rng = ChaCha8Rng::seed_from_u64(derive_seed(root, point, rep));
    drop(rng);
}
