//! Fixture for `--fix-unused-allows`: two stale allows (one standalone,
//! one trailing) bracketing one genuinely used allow that must survive.

// dpm-lint: allow(no_panic, reason = "nothing on this line panics")
fn quiet() -> u64 {
    7
}

fn timed() {
    let t = Instant::now(); // dpm-lint: allow(nondeterminism, reason = "bench-only timer")
    drop(t); // dpm-lint: allow(no_panic, reason = "stale trailing allow")
}
