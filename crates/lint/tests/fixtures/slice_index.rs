//! Planted slice indexing: three findings when checked under
//! crates/harness/src, none elsewhere (the rule is scoped to the
//! supervisory layer).

fn index(values: &[f64], i: usize) -> f64 {
    let direct = values[i];
    let chained = values.as_ref()[0];
    let safe = values.get(i).copied().unwrap_or(0.0);
    let array = [0u8; 4];
    direct + chained + safe + f64::from(array[0])
}
