//! Directive-hygiene violations: three invalid allows and one unused.

fn noop() {}

// dpm-lint: allow(nondeterminism)
// dpm-lint: allow(nondeterminism, reason = "")
// dpm-lint: allow(made_up_rule, reason = "not a rule")
// dpm-lint: allow(no_panic, reason = "nothing below panics, so this is unused")
