//! Per-rule positive/negative checks over the planted fixtures in
//! `tests/fixtures/` (a directory the workspace walker never enters, so
//! the planted violations cannot leak into the self-check).

use dpm_lint::engine::{check_source, FileOutcome};
use dpm_lint::{rules, FileKind};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn check(name: &str, kind: FileKind, rel: &str) -> FileOutcome {
    check_source(rel, kind, &fixture(name))
}

fn rule_names(outcome: &FileOutcome) -> Vec<&'static str> {
    outcome.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn nondeterminism_fixture_yields_only_nondeterminism_findings() {
    let out = check(
        "nondeterminism.rs",
        FileKind::Library,
        "crates/core/src/f.rs",
    );
    assert_eq!(out.findings.len(), 8, "{:#?}", out.findings);
    assert!(out.findings.iter().all(|f| f.rule == rules::NONDETERMINISM));
    assert_eq!(out.allows_used, 0);
}

#[test]
fn nondeterminism_clean_fixture_is_finding_free() {
    let out = check(
        "nondeterminism_clean.rs",
        FileKind::Library,
        "crates/core/src/f.rs",
    );
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
    assert_eq!(out.allows_used, 0);
}

#[test]
fn panic_fixture_fires_in_libraries_but_not_binaries() {
    let lib = check("panics.rs", FileKind::Library, "crates/core/src/f.rs");
    assert_eq!(
        rule_names(&lib),
        vec![rules::NO_PANIC; 4],
        "{:#?}",
        lib.findings
    );
    let bin = check("panics.rs", FileKind::Bin, "crates/core/src/bin/f.rs");
    assert!(bin.findings.is_empty(), "{:#?}", bin.findings);
}

#[test]
fn float_eq_fixture_counts_exact_comparisons_only() {
    let out = check("float_eq.rs", FileKind::Library, "crates/core/src/f.rs");
    assert_eq!(
        rule_names(&out),
        vec![rules::FLOAT_EQ; 3],
        "{:#?}",
        out.findings
    );
}

#[test]
fn swallowed_fixture_exempts_infallible_formatting() {
    let out = check("swallowed.rs", FileKind::Library, "crates/core/src/f.rs");
    assert_eq!(
        rule_names(&out),
        vec![rules::SWALLOWED_ERROR],
        "{:#?}",
        out.findings
    );
}

#[test]
fn slice_index_fixture_fires_only_in_the_harness_library() {
    let harness = check(
        "slice_index.rs",
        FileKind::Library,
        "crates/harness/src/f.rs",
    );
    assert_eq!(
        rule_names(&harness),
        vec![rules::SLICE_INDEX; 3],
        "{:#?}",
        harness.findings
    );
    let elsewhere = check("slice_index.rs", FileKind::Library, "crates/core/src/f.rs");
    assert!(elsewhere.findings.is_empty(), "{:#?}", elsewhere.findings);
}

#[test]
fn float_key_fixture_counts_bit_pattern_keys_and_honors_allows() {
    let out = check("float_key.rs", FileKind::Library, "crates/core/src/f.rs");
    assert_eq!(
        rule_names(&out),
        vec![rules::FLOAT_ORD_KEY; 3],
        "{:#?}",
        out.findings
    );
    assert_eq!(out.allows_used, 1);
}

#[test]
fn allow_fixture_suppresses_everything_with_reasons() {
    let out = check("allows.rs", FileKind::Library, "crates/core/src/f.rs");
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
    assert_eq!(out.allows_used, 3);
}

#[test]
fn allow_hygiene_fixture_flags_bad_and_unused_directives() {
    let out = check(
        "allow_hygiene.rs",
        FileKind::Library,
        "crates/core/src/f.rs",
    );
    let names = rule_names(&out);
    assert_eq!(
        names.iter().filter(|r| **r == rules::INVALID_ALLOW).count(),
        3,
        "{:#?}",
        out.findings
    );
    assert_eq!(
        names.iter().filter(|r| **r == rules::UNUSED_ALLOW).count(),
        1,
        "{:#?}",
        out.findings
    );
    assert_eq!(out.findings.len(), 4);
}

#[test]
fn planted_instant_fixture_trips_the_deny_gate_input() {
    let out = check(
        "planted_instant.rs",
        FileKind::Library,
        "crates/core/src/f.rs",
    );
    assert!(!out.findings.is_empty());
    assert!(out.findings.iter().all(|f| f.rule == rules::NONDETERMINISM));
}

#[test]
fn seed_taint_fixture_flags_only_the_underived_seeds() {
    let out = check("seed_taint.rs", FileKind::Library, "crates/core/src/f.rs");
    assert_eq!(
        rule_names(&out),
        vec![rules::SEED_PROVENANCE; 3],
        "{:#?}",
        out.findings
    );
    // One allow with a reason suppresses the audited ChaCha8 key site.
    assert_eq!(out.allows_used, 1);
    let bin = check("seed_taint.rs", FileKind::Bin, "crates/core/src/bin/f.rs");
    assert!(
        !bin.findings
            .iter()
            .any(|f| f.rule == rules::SEED_PROVENANCE),
        "{:#?}",
        bin.findings
    );
}

#[test]
fn schema_dup_fixture_flags_duplicates_stale_versions_and_loose_ids() {
    let out = check("schema_dup.rs", FileKind::Library, "crates/core/src/f.rs");
    let schema: Vec<&str> = out
        .findings
        .iter()
        .filter(|f| f.rule == rules::SCHEMA_REGISTRY)
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        schema.iter().any(|m| m.contains("duplicate definition")),
        "{schema:#?}"
    );
    assert!(
        schema.iter().any(|m| m.contains("stale schema id")),
        "{schema:#?}"
    );
    assert!(
        schema.iter().any(|m| m.contains("outside a const/static")),
        "{schema:#?}"
    );
}

#[test]
fn reports_render_deterministically() {
    let render = |_: ()| {
        let out = check(
            "nondeterminism.rs",
            FileKind::Library,
            "crates/core/src/f.rs",
        );
        dpm_lint::Report {
            findings: out.findings,
            files_scanned: 1,
            allows_used: out.allows_used,
            allows_by_rule: out.allows_by_rule,
            schema_registry: vec![dpm_lint::report::SchemaEntry {
                base: "dpm-fixture".to_owned(),
                version: 1,
                path: "crates/core/src/f.rs".to_owned(),
                line: 1,
            }],
            panic_reachability: vec![dpm_lint::report::PanicSite {
                path: "crates/core/src/f.rs".to_owned(),
                line: 3,
                rule: rules::NO_PANIC,
                function: "f".to_owned(),
                reachable_from: vec!["serve".to_owned()],
            }],
        }
        .render_json()
    };
    let first = render(());
    assert_eq!(first, render(()));
    assert!(first.contains("\"schema\": \"dpm-lint/v2\""), "{first}");
    assert!(first.contains("\"nondeterminism\": 8"), "{first}");
    // counts_by_rule is zero-filled: rules with no findings serialize as 0.
    assert!(first.contains("\"seed_provenance\": 0"), "{first}");
    assert!(first.contains("\"schema_registry\": 0"), "{first}");
    assert!(first.contains("\"reachable_from\": ["), "{first}");
    assert!(first.contains("\"serve\""), "{first}");
    assert!(first.contains("\"base\": \"dpm-fixture\""), "{first}");
}
