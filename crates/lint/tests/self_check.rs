//! The workspace must lint clean: every deliberate exception carries a
//! reasoned allow, and the walker only visits governed first-party code.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_finding_free() {
    let report = dpm_lint::check_workspace(&workspace_root()).expect("workspace walk");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean:\n{}",
        report.render_human()
    );
}

#[test]
fn every_surviving_allow_is_actually_used() {
    // `check_workspace` already folds unused allows into findings
    // (`unused_allow`), so finding-free + a positive use count means every
    // annotation in the tree both parses and suppresses something.
    let report = dpm_lint::check_workspace(&workspace_root()).expect("workspace walk");
    assert!(
        report.allows_used > 0,
        "expected reasoned allows in the tree"
    );
}

#[test]
fn walker_skips_ungoverned_trees() {
    let files = dpm_lint::walk::workspace_files(&workspace_root()).expect("workspace walk");
    for file in &files {
        assert!(
            !file.rel.starts_with("vendor/") && !file.rel.starts_with("target/"),
            "third-party or generated file scanned: {}",
            file.rel
        );
        assert!(
            !file.rel.contains("/tests/") && !file.rel.contains("/fixtures/"),
            "test-only file scanned: {}",
            file.rel
        );
    }
    assert!(files.iter().any(|f| f.rel == "crates/harness/src/pool.rs"));
    assert!(files.iter().any(|f| f.rel == "src/lib.rs"));
    let mut sorted: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
    sorted.sort_unstable();
    let order: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
    assert_eq!(order, sorted, "walk order must be deterministic");
}

#[test]
fn binaries_are_classified_as_bin() {
    use dpm_lint::walk::classify;
    use dpm_lint::FileKind;
    assert_eq!(
        classify("crates/bench/src/bin/ablate_solvers.rs"),
        FileKind::Bin
    );
    assert_eq!(classify("src/main.rs"), FileKind::Bin);
    assert_eq!(classify("crates/harness/src/pool.rs"), FileKind::Library);
}
