//! Property tests: blanking preserves source shape.
//!
//! Every downstream consumer — rule matching, the item parser, the
//! byte-offset call scanner, `--fix-unused-allows`'s column recovery —
//! assumes the blanked view is the source with comment bodies and literal
//! contents replaced by spaces *char-for-char*: same line count, same
//! per-line char length, hence identical line numbers and (for ASCII
//! sources) identical byte offsets. Fuzz that invariant over adversarial
//! token soups: unterminated strings, raw strings with hash guards,
//! nested block comments, lifetimes next to char literals, multi-line
//! literals — the lexer must keep shape on all of them, even the ones
//! rustc would reject.

use dpm_lint::lexer::LexedFile;
use dpm_lint::parse::BlankedText;
use proptest::prelude::*;

/// Lexically spicy fragments; indices into this pool are the generated
/// value, so every regression is reproducible from the seed.
const TOKENS: &[&str] = &[
    "fn main() {",
    "}",
    "let x = 1;",
    "\"plain string\"",
    "\"escaped \\\" quote\"",
    "\"unterminated",
    "r\"raw\"",
    "r#\"raw with \"quotes\" inside\"#",
    "r#\"multi\nline raw\"#",
    "// line comment with \" quote",
    "/* block */",
    "/* nested /* deep */ still open",
    "/* spans\ntwo lines */",
    "'c'",
    "'\\n'",
    "&'static str",
    "b\"bytes\"",
    "#[cfg(test)]",
    "mod tests {",
    "let s = \"caf\u{e9} \u{3bb}\";",
    "seed_from_u64(42)",
    "\n",
    "\n\n",
    "    ",
];

fn source() -> impl Strategy<Value = String> {
    prop::collection::vec(0..TOKENS.len(), 0..40)
        .prop_map(|picks| picks.into_iter().map(|i| TOKENS[i]).collect::<String>())
}

/// Same pool minus the non-ASCII fragment, for the byte-exactness check.
fn ascii_source() -> impl Strategy<Value = String> {
    source().prop_map(|src| {
        src.split('\n')
            .map(|line| if line.is_ascii() { line } else { "" })
            .collect::<Vec<_>>()
            .join("\n")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn blanking_preserves_line_count_and_char_lengths(src in source()) {
        let lexed = LexedFile::lex(&src);
        let text = BlankedText::new(&lexed);
        let original: Vec<&str> = src.split('\n').collect();
        let blanked: Vec<&str> = text.text.split('\n').collect();
        prop_assert_eq!(original.len(), blanked.len(), "line count changed");
        for (i, (o, b)) in original.iter().zip(&blanked).enumerate() {
            prop_assert_eq!(
                o.chars().count(),
                b.chars().count(),
                "line {} changed char length:\n  orig: {:?}\n  blank: {:?}",
                i + 1,
                o,
                b
            );
        }
    }

    #[test]
    fn blanked_lines_round_trip_through_line_of(src in source()) {
        let lexed = LexedFile::lex(&src);
        let text = BlankedText::new(&lexed);
        // The byte offset of each line start maps back to that 1-based
        // line — the contract the call scanner and taint pass lean on.
        let mut offset = 0usize;
        for (i, line) in text.text.split('\n').enumerate() {
            prop_assert_eq!(text.line_of(offset), i + 1);
            offset += line.len() + 1;
        }
    }

    #[test]
    fn recorded_comments_and_strings_cite_real_lines(src in source()) {
        let lexed = LexedFile::lex(&src);
        let lines = src.split('\n').count();
        for c in &lexed.comments {
            prop_assert!((1..=lines).contains(&c.line), "comment line {} of {lines}", c.line);
        }
        for s in &lexed.strings {
            prop_assert!((1..=lines).contains(&s.line), "string line {} of {lines}", s.line);
        }
    }

    #[test]
    fn ascii_sources_keep_byte_offsets_exactly(src in ascii_source()) {
        let lexed = LexedFile::lex(&src);
        let text = BlankedText::new(&lexed);
        prop_assert_eq!(src.len(), text.text.len(), "byte length changed");
        for (i, (o, b)) in src.bytes().zip(text.text.bytes()).enumerate() {
            prop_assert!(
                b == o || b == b' ',
                "byte {i} rewritten to non-space: {:?} -> {:?}",
                o as char,
                b as char
            );
        }
    }
}
