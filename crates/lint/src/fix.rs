//! Mechanical removal of `unused_allow` directives.
//!
//! Backs the `dpm-lint --fix-unused-allows` flag: given the lines whose
//! allow comments suppressed nothing (as reported by the engine), rewrite
//! the source with those comments gone. A standalone directive line is
//! deleted outright; a trailing directive is stripped back to the code
//! that precedes it.
//!
//! The comment's start column is recovered from the lexer rather than
//! re-tokenizing: the blanked line replaces comment text with spaces
//! char-for-char, so the directive comment begins at the first `//` in the
//! original line whose blanked counterpart is spaces from there to the end
//! of the line. String literals containing `//` cannot fool this — their
//! blanked form is also spaces, but the *comment* is always the last such
//! run, and a `//` inside a string is never followed by an all-blank tail
//! starting at the same column unless a real comment begins there.

use crate::lexer::LexedFile;
use std::collections::BTreeSet;

/// The char index where the trailing line comment of `original` begins,
/// validated against the blanked form (`blanked` must blank the comment to
/// spaces). Returns `None` when no comment is found.
fn comment_start(original: &str, blanked: &str) -> Option<usize> {
    let orig: Vec<char> = original.chars().collect();
    let blank: Vec<char> = blanked.chars().collect();
    if orig.len() != blank.len() {
        return None; // never happens for lexer output; refuse to guess
    }
    for i in 0..orig.len().saturating_sub(1) {
        let is_comment_open =
            orig[i] == '/' && orig[i + 1] == '/' && blank[i..].iter().all(|&c| c == ' ');
        if is_comment_open {
            return Some(i);
        }
    }
    None
}

/// Rewrites `source` with the line comments on the given 1-based `lines`
/// removed. Lines whose comment cannot be located are left untouched.
#[must_use]
pub fn remove_directives(source: &str, lines: &BTreeSet<usize>) -> String {
    let lexed = LexedFile::lex(source);
    let mut out: Vec<String> = Vec::new();
    for (idx, original) in source.lines().enumerate() {
        let line_no = idx + 1;
        if !lines.contains(&line_no) {
            out.push(original.to_owned());
            continue;
        }
        let blanked = lexed
            .lines
            .get(idx)
            .map_or_else(String::new, |l| l.code.clone());
        match comment_start(original, &blanked) {
            Some(at) => {
                let prefix: String = original.chars().take(at).collect();
                let prefix = prefix.trim_end();
                if !prefix.is_empty() {
                    out.push(prefix.to_owned());
                }
                // A bare directive line vanishes entirely.
            }
            None => out.push(original.to_owned()),
        }
    }
    let mut text = out.join("\n");
    if source.ends_with('\n') && !text.is_empty() {
        text.push('\n');
    }
    text
}

/// One line of a dry-run diff for a single file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffLine {
    /// A line removed outright (`- …`).
    Removed(usize, String),
    /// A line rewritten in place (`- old` / `+ new`).
    Rewritten(usize, String, String),
}

/// The per-line dry-run diff between `source` and its rewrite.
#[must_use]
pub fn diff_lines(source: &str, lines: &BTreeSet<usize>) -> Vec<DiffLine> {
    let lexed = LexedFile::lex(source);
    let mut out = Vec::new();
    for (idx, original) in source.lines().enumerate() {
        let line_no = idx + 1;
        if !lines.contains(&line_no) {
            continue;
        }
        let blanked = lexed
            .lines
            .get(idx)
            .map_or_else(String::new, |l| l.code.clone());
        if let Some(at) = comment_start(original, &blanked) {
            let prefix: String = original.chars().take(at).collect();
            let prefix = prefix.trim_end().to_owned();
            if prefix.is_empty() {
                out.push(DiffLine::Removed(line_no, original.to_owned()));
            } else {
                out.push(DiffLine::Rewritten(line_no, original.to_owned(), prefix));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::UNUSED_ALLOW;
    use crate::FileKind;

    /// The satellite's fixture: two unused allows (one standalone, one
    /// trailing) around one genuinely used allow that must survive.
    const FIXTURE: &str = include_str!("../tests/fixtures/unused_allows.rs");

    fn unused_lines(source: &str) -> BTreeSet<usize> {
        crate::check_source("crates/core/src/f.rs", FileKind::Library, source)
            .findings
            .iter()
            .filter(|f| f.rule == UNUSED_ALLOW)
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn fixture_rewrite_drops_only_the_unused_allows() {
        let lines = unused_lines(FIXTURE);
        assert_eq!(lines.len(), 2, "fixture plants exactly two unused allows");
        let fixed = remove_directives(FIXTURE, &lines);
        assert!(!fixed.contains("nothing on this line panics"));
        assert!(!fixed.contains("stale trailing allow"));
        assert!(
            fixed.contains("allow(nondeterminism"),
            "the used allow must survive:\n{fixed}"
        );
        // The rewrite converges: re-checking reports no unused allows.
        assert!(unused_lines(&fixed).is_empty(), "{fixed}");
    }

    #[test]
    fn trailing_directives_keep_their_code() {
        let src = "let x = 1; // dpm-lint: allow(no_panic, reason = \"stale\")\n";
        let fixed = remove_directives(src, &BTreeSet::from([1]));
        assert_eq!(fixed, "let x = 1;\n");
    }

    #[test]
    fn standalone_directive_lines_vanish() {
        let src = "fn f() {}\n// dpm-lint: allow(no_panic, reason = \"stale\")\nfn g() {}\n";
        let fixed = remove_directives(src, &BTreeSet::from([2]));
        assert_eq!(fixed, "fn f() {}\nfn g() {}\n");
    }

    #[test]
    fn string_literals_containing_slashes_do_not_truncate_code() {
        let src = "let url = \"http://x\"; // dpm-lint: allow(no_panic, reason = \"stale\")\n";
        let fixed = remove_directives(src, &BTreeSet::from([1]));
        assert_eq!(fixed, "let url = \"http://x\";\n");
    }

    #[test]
    fn diff_reports_removals_and_rewrites() {
        let src = "// dpm-lint: allow(no_panic, reason = \"stale\")\nlet x = 1; // dpm-lint: allow(float_eq, reason = \"stale\")\n";
        let diff = diff_lines(src, &BTreeSet::from([1, 2]));
        assert!(matches!(&diff[0], DiffLine::Removed(1, _)));
        assert!(matches!(&diff[1], DiffLine::Rewritten(2, _, new) if new == "let x = 1;"));
    }

    #[test]
    fn untargeted_lines_pass_through_byte_identical() {
        let src = "fn f() {}\n// a plain comment\n";
        assert_eq!(remove_directives(src, &BTreeSet::new()), src);
    }
}
