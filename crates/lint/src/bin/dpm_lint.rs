//! The `dpm-lint` command-line driver.
//!
//! ```text
//! dpm-lint [--root DIR] [--deny] [--json PATH] [--baseline PATH] \
//!          [--list-rules] [--fix-unused-allows [--apply]] [FILE...]
//! ```
//!
//! With no `FILE` operands the whole workspace under `--root` (default:
//! the current directory) is checked; with operands, exactly those files.
//! `--deny` turns findings into a nonzero exit status (the CI gate);
//! `--json` additionally writes the canonical-JSON report.
//!
//! `--baseline PATH` reads a previous `--json` report and fails the run on
//! drift: a rule whose *allow* count grew (exemptions accumulating
//! silently), a rule whose *finding* count grew past the recorded
//! `counts_by_rule` (new violations that were reasoned away at baseline
//! time), or a schema id whose version moved backwards. Counts at or below
//! the baseline pass (shrinkage is progress; refresh the baseline to lock
//! it in).
//!
//! `--fix-unused-allows` rewrites files whose allow directives suppressed
//! nothing. By default it prints the would-be changes as a diff and exits
//! nonzero if any exist; with `--apply` it writes each rewrite atomically
//! (temp file + rename) and exits zero.
//!
//! Exit status: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, drift past `--baseline`, or pending `--fix-unused-allows`
//! changes without `--apply`; 2 usage or I/O error.

use dpm_harness::Json;
use dpm_lint::{check_files, check_workspace, fix, rules, LintError, Report};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    list_rules: bool,
    fix_unused: bool,
    apply: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, LintError> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny: false,
        json: None,
        baseline: None,
        list_rules: false,
        fix_unused: false,
        apply: false,
        files: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                let value = iter
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a directory".to_owned()))?;
                opts.root = PathBuf::from(value);
            }
            "--json" => {
                let value = iter
                    .next()
                    .ok_or_else(|| LintError::Usage("--json needs a path".to_owned()))?;
                opts.json = Some(PathBuf::from(value));
            }
            "--baseline" => {
                let value = iter.next().ok_or_else(|| {
                    LintError::Usage("--baseline needs a JSON report path".to_owned())
                })?;
                opts.baseline = Some(PathBuf::from(value));
            }
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--fix-unused-allows" => opts.fix_unused = true,
            "--apply" => opts.apply = true,
            "--help" | "-h" => {
                return Err(LintError::Usage(
                    "dpm-lint [--root DIR] [--deny] [--json PATH] [--baseline PATH] \
                     [--list-rules] [--fix-unused-allows [--apply]] [FILE...]"
                        .to_owned(),
                ))
            }
            flag if flag.starts_with("--") => {
                return Err(LintError::Usage(format!("unknown flag `{flag}`")));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.apply && !opts.fix_unused {
        return Err(LintError::Usage(
            "--apply only makes sense with --fix-unused-allows".to_owned(),
        ));
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<Report, LintError> {
    if opts.files.is_empty() {
        check_workspace(&opts.root)
    } else {
        check_files(&opts.files)
    }
}

/// Compares the run against a previous `--json` report. Returns one
/// message per regression: an allow count or finding count that grew, or
/// a schema version that moved backwards.
fn baseline_drift(report: &Report, baseline_path: &Path) -> Result<Vec<String>, LintError> {
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| LintError::io(baseline_path, &e))?;
    let doc = Json::parse(&text).map_err(|e| {
        LintError::Usage(format!(
            "{}: not a dpm-lint JSON report: {e}",
            baseline_path.display()
        ))
    })?;
    let mut drift = Vec::new();
    for (rule, &now) in &report.allows_by_rule {
        let then = doc
            .get("allows_by_rule")
            .and_then(|allows| allows.get(rule))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        #[allow(clippy::cast_precision_loss)]
        if now as f64 > then {
            drift.push(format!(
                "allow({rule}) count grew {then} -> {now}; remove the new \
                 exemption or refresh the baseline"
            ));
        }
    }
    // Findings drift: the baseline's zero-filled counts are the ceiling.
    let mut finding_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &report.findings {
        *finding_counts.entry(f.rule).or_insert(0) += 1;
    }
    for rule in rules::all_rules() {
        let now = finding_counts.get(rule).copied().unwrap_or(0);
        let Some(then) = doc
            .get("counts_by_rule")
            .and_then(|counts| counts.get(rule))
            .and_then(Json::as_f64)
        else {
            continue; // rule unknown to the baseline (pre-v2 report)
        };
        #[allow(clippy::cast_precision_loss)]
        if now as f64 > then {
            drift.push(format!(
                "finding({rule}) count grew {then} -> {now}; fix the new \
                 violations or annotate them with reasons"
            ));
        }
    }
    // Schema monotonicity: versions never move backwards.
    if let Some(Json::Array(entries)) = doc.get("schema_registry") {
        let then_versions: BTreeMap<String, f64> = entries
            .iter()
            .filter_map(|e| {
                let base = e.get("base")?.as_str()?.to_owned();
                let version = e.get("version")?.as_f64()?;
                Some((base, version))
            })
            .collect();
        for entry in &report.schema_registry {
            if let Some(&then) = then_versions.get(&entry.base) {
                #[allow(clippy::cast_precision_loss)]
                if (entry.version as f64) < then {
                    drift.push(format!(
                        "schema `{}` regressed v{then} -> v{}; versions only move \
                         forward",
                        entry.base, entry.version
                    ));
                }
            }
        }
    }
    Ok(drift)
}

/// Applies (or previews) removal of every `unused_allow` directive the
/// report found. Returns the number of files with pending or applied
/// changes.
fn fix_unused_allows(opts: &Options, report: &Report) -> Result<usize, LintError> {
    let mut by_path: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for f in &report.findings {
        if f.rule == rules::UNUSED_ALLOW {
            by_path.entry(&f.path).or_default().insert(f.line);
        }
    }
    let mut touched = 0usize;
    for (rel, lines) in by_path {
        // Workspace runs report paths relative to --root; explicit file
        // operands are reported as given.
        let path = if opts.files.is_empty() {
            opts.root.join(rel)
        } else {
            PathBuf::from(rel)
        };
        let source = std::fs::read_to_string(&path).map_err(|e| LintError::io(&path, &e))?;
        if opts.apply {
            let fixed = fix::remove_directives(&source, &lines);
            let tmp = path.with_extension("rs.dpm-lint-fix");
            std::fs::write(&tmp, &fixed).map_err(|e| LintError::io(&tmp, &e))?;
            std::fs::rename(&tmp, &path).map_err(|e| LintError::io(&path, &e))?;
            println!("fixed {rel}: removed {} unused allow(s)", lines.len());
        } else {
            println!("--- {rel}");
            for change in fix::diff_lines(&source, &lines) {
                match change {
                    fix::DiffLine::Removed(line, old) => {
                        println!("@@ line {line}\n-{old}");
                    }
                    fix::DiffLine::Rewritten(line, old, new) => {
                        println!("@@ line {line}\n-{old}\n+{new}");
                    }
                }
            }
        }
        touched += 1;
    }
    Ok(touched)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("dpm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for (name, description) in rules::ALLOWABLE_RULES {
            println!("{name}: {description}");
        }
        return ExitCode::SUCCESS;
    }
    let report = match run(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dpm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.fix_unused {
        return match fix_unused_allows(&opts, &report) {
            Ok(0) => {
                println!("dpm-lint: no unused allows to fix");
                ExitCode::SUCCESS
            }
            Ok(_) if opts.apply => ExitCode::SUCCESS,
            Ok(n) => {
                println!("dpm-lint: {n} file(s) have unused allows; rerun with --apply to write");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("dpm-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    print!("{}", report.render_human());
    if let Some(json_path) = &opts.json {
        if let Err(e) = std::fs::write(json_path, report.render_json()) {
            eprintln!("dpm-lint: {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(baseline_path) = &opts.baseline {
        match baseline_drift(&report, baseline_path) {
            Ok(drift) if drift.is_empty() => {}
            Ok(drift) => {
                for line in &drift {
                    eprintln!("dpm-lint: baseline drift: {line}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("dpm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
