//! The `dpm-lint` command-line driver.
//!
//! ```text
//! dpm-lint [--root DIR] [--deny] [--json PATH] [--baseline PATH] \
//!          [--list-rules] [FILE...]
//! ```
//!
//! With no `FILE` operands the whole workspace under `--root` (default:
//! the current directory) is checked; with operands, exactly those files.
//! `--deny` turns findings into a nonzero exit status (the CI gate);
//! `--json` additionally writes the canonical-JSON report.
//!
//! `--baseline PATH` reads a previous `--json` report and fails the run
//! if any rule's *allow* count grew past it — allow drift: exemptions
//! accumulating silently even while the findings list stays empty. Counts
//! at or below the baseline pass (shrinkage is progress; refresh the
//! baseline to lock it in).
//!
//! Exit status: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny` or allow drift past `--baseline`, 2 usage or I/O error.

use dpm_harness::Json;
use dpm_lint::{check_files, check_workspace, rules, LintError, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    list_rules: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, LintError> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny: false,
        json: None,
        baseline: None,
        list_rules: false,
        files: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                let value = iter
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a directory".to_owned()))?;
                opts.root = PathBuf::from(value);
            }
            "--json" => {
                let value = iter
                    .next()
                    .ok_or_else(|| LintError::Usage("--json needs a path".to_owned()))?;
                opts.json = Some(PathBuf::from(value));
            }
            "--baseline" => {
                let value = iter.next().ok_or_else(|| {
                    LintError::Usage("--baseline needs a JSON report path".to_owned())
                })?;
                opts.baseline = Some(PathBuf::from(value));
            }
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(LintError::Usage(
                    "dpm-lint [--root DIR] [--deny] [--json PATH] [--baseline PATH] \
                     [--list-rules] [FILE...]"
                        .to_owned(),
                ))
            }
            flag if flag.starts_with("--") => {
                return Err(LintError::Usage(format!("unknown flag `{flag}`")));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<Report, LintError> {
    if opts.files.is_empty() {
        check_workspace(&opts.root)
    } else {
        check_files(&opts.files)
    }
}

/// Compares the run's per-rule allow counts against a previous `--json`
/// report. Returns one message per rule whose count *grew* — counts at or
/// below the baseline (including rules that vanished) pass.
fn baseline_drift(report: &Report, baseline_path: &Path) -> Result<Vec<String>, LintError> {
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| LintError::io(baseline_path, &e))?;
    let doc = Json::parse(&text).map_err(|e| {
        LintError::Usage(format!(
            "{}: not a dpm-lint JSON report: {e}",
            baseline_path.display()
        ))
    })?;
    let mut drift = Vec::new();
    for (rule, &now) in &report.allows_by_rule {
        let then = doc
            .get("allows_by_rule")
            .and_then(|allows| allows.get(rule))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        #[allow(clippy::cast_precision_loss)]
        if now as f64 > then {
            drift.push(format!(
                "allow({rule}) count grew {then} -> {now}; remove the new \
                 exemption or refresh the baseline"
            ));
        }
    }
    Ok(drift)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("dpm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for (name, description) in rules::ALLOWABLE_RULES {
            println!("{name}: {description}");
        }
        return ExitCode::SUCCESS;
    }
    let report = match run(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dpm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_human());
    if let Some(json_path) = &opts.json {
        if let Err(e) = std::fs::write(json_path, report.render_json()) {
            eprintln!("dpm-lint: {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(baseline_path) = &opts.baseline {
        match baseline_drift(&report, baseline_path) {
            Ok(drift) if drift.is_empty() => {}
            Ok(drift) => {
                for line in &drift {
                    eprintln!("dpm-lint: baseline drift: {line}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("dpm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
