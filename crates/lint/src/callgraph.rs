//! The approximate workspace call graph and panic-allow reachability.
//!
//! Edges are *name-matched*: inside each indexed function body, every
//! identifier followed by `(` that is not a keyword, a macro invocation
//! (`name!`), or a nested `fn` definition links the enclosing function to
//! every indexed function of that name. When the callee is written with an
//! explicit path qualifier (`Type::name(…)`) and some indexed function has
//! exactly that qualified name, the edge narrows to those candidates.
//!
//! This over-approximates real dispatch — same-named methods on different
//! types alias, trait calls fan out to every implementor — which is the
//! safe direction for the reachability question asked of it: an allow
//! classified *cold* truly has no name-plausible path from a hot root,
//! while *hot* means "possibly reachable", never a proof of a call chain.

use crate::report::PanicSite;
use crate::symbols::{FileUnit, SymbolIndex};
use std::collections::{BTreeMap, BTreeSet};

/// Keywords and primitive heads that look like calls after blanking.
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as", "fn",
    "let", "move", "ref", "mut", "pub", "use", "impl", "struct", "enum", "trait", "type", "where",
    "dyn", "box", "crate", "super", "static", "const", "extern", "mod", "unsafe", "async", "await",
    "true", "false", "Some", "None", "Ok", "Err",
];

/// One function's call site as scanned from its body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written (last path segment).
    pub name: String,
    /// Byte offset of the callee identifier in the file's blanked text.
    pub at: usize,
    /// Byte offset just past the call's opening `(`.
    pub args_at: usize,
}

/// The workspace call graph over [`SymbolIndex`] function nodes.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Per-function callee sets (indices into `SymbolIndex::fns`).
    pub callees: Vec<BTreeSet<usize>>,
    /// Per-function raw call sites (shared with the taint pass).
    pub sites: Vec<Vec<CallSite>>,
}

/// Scans one blanked body slice for call-shaped identifiers.
///
/// `base` is the slice's byte offset into the whole file, so returned
/// offsets address the file's blanked text directly.
#[must_use]
pub fn scan_calls(text: &str, base: usize) -> Vec<CallSite> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut prev_word: Option<(usize, usize)> = None;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let word = &text[start..i];
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let is_call = bytes.get(j) == Some(&b'(')
            && bytes.get(i) != Some(&b'!')
            && !NON_CALL_WORDS.contains(&word)
            && prev_word.is_none_or(|(s, e)| &text[s..e] != "fn");
        if is_call {
            out.push(CallSite {
                name: word.to_owned(),
                at: base + start,
                args_at: base + j + 1,
            });
        }
        prev_word = Some((start, i));
    }
    out
}

impl CallGraph {
    /// Builds the graph by scanning every indexed function's body.
    #[must_use]
    pub fn build(units: &[FileUnit], index: &SymbolIndex) -> CallGraph {
        let mut callees = Vec::with_capacity(index.fns.len());
        let mut sites = Vec::with_capacity(index.fns.len());
        for f in &index.fns {
            let Some((start, end)) = f.body else {
                callees.push(BTreeSet::new());
                sites.push(Vec::new());
                continue;
            };
            let text = &units[f.file].text.text;
            let body = &text[start.min(text.len())..end.min(text.len())];
            let found = scan_calls(body, start.min(text.len()));
            let mut edges = BTreeSet::new();
            for site in &found {
                let candidates = index.named(&site.name);
                if candidates.is_empty() {
                    continue;
                }
                // `Type::name(` narrows to functions qualified `Type::name`
                // when any exist; otherwise every same-named function links.
                let qualified = path_qualifier(text, site.at).and_then(|q| {
                    let qual = format!("{q}::{}", site.name);
                    let narrowed: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| index.fns[c].qual == qual)
                        .collect();
                    (!narrowed.is_empty()).then_some(narrowed)
                });
                match qualified {
                    Some(narrowed) => edges.extend(narrowed),
                    None => edges.extend(candidates.iter().copied()),
                }
            }
            callees.push(edges);
            sites.push(found);
        }
        CallGraph { callees, sites }
    }

    /// Every function reachable from `root` (inclusive) by following edges.
    #[must_use]
    pub fn reachable(&self, root: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            if let Some(edges) = self.callees.get(f) {
                stack.extend(edges.iter().copied());
            }
        }
        seen
    }
}

/// The `Foo` of `Foo::name(` at `at` (the identifier's offset), if any.
fn path_qualifier(text: &str, at: usize) -> Option<String> {
    let head = &text[..at];
    let rest = head.strip_suffix("::")?;
    let bytes = rest.as_bytes();
    let mut s = rest.len();
    while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
        s -= 1;
    }
    (s < rest.len()).then(|| rest[s..].to_owned())
}

/// One panic-class allow directive's location, as collected by the engine.
#[derive(Debug, Clone, Copy)]
pub struct AllowSite {
    /// Index of the owning file in the unit slice.
    pub file: usize,
    /// The allowed rule (`no_panic` or `slice_index`).
    pub rule: &'static str,
    /// 1-based line the allow binds to.
    pub line: usize,
}

/// Classifies every panic-class allow site against the hot-path roots:
/// functions named `serve` or prefixed `run_plan`/`run_solve_plan` — the
/// serving runtime and experiment-plan entry points whose crash is a run
/// lost, not a bug report.
#[must_use]
pub fn panic_reachability(
    units: &[FileUnit],
    index: &SymbolIndex,
    graph: &CallGraph,
    sites: &[AllowSite],
) -> Vec<PanicSite> {
    let mut roots: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (idx, f) in index.fns.iter().enumerate() {
        if f.name == "serve" || f.name.starts_with("run_plan") || f.name == "run_solve_plan" {
            roots
                .entry(f.qual.clone())
                .or_default()
                .extend(graph.reachable(idx));
        }
    }
    let mut out: Vec<PanicSite> = sites
        .iter()
        .map(|site| {
            let enclosing = index.enclosing_fn_at_line(site.file, site.line);
            let function = enclosing.map_or(String::new(), |f| index.fns[f].qual.clone());
            let reachable_from = enclosing.map_or_else(Vec::new, |f| {
                roots
                    .iter()
                    .filter(|(_, set)| set.contains(&f))
                    .map(|(qual, _)| qual.clone())
                    .collect()
            });
            PanicSite {
                path: units[site.file].rel.clone(),
                line: site.line,
                rule: site.rule,
                function,
                reachable_from,
            }
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::NO_PANIC;

    fn unit(rel: &str, src: &str) -> FileUnit {
        FileUnit::build(rel, crate::walk::classify(rel), src)
    }

    fn graph_of(units: &[FileUnit]) -> (SymbolIndex, CallGraph) {
        let index = SymbolIndex::build(units);
        let graph = CallGraph::build(units, &index);
        (index, graph)
    }

    #[test]
    fn calls_link_across_files_and_macros_do_not() {
        let units = vec![
            unit(
                "crates/a/src/lib.rs",
                "pub fn serve() {\n    helper();\n    println!(\"not a call\");\n}\n",
            ),
            unit("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ];
        let (index, graph) = graph_of(&units);
        let serve = index.named("serve")[0];
        let helper = index.named("helper")[0];
        assert!(graph.callees[serve].contains(&helper));
        assert!(graph.reachable(serve).contains(&helper));
    }

    #[test]
    fn nested_fn_definitions_are_not_call_sites() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub fn outer() {\n    fn inner(x: u64) {}\n}\npub fn inner(x: u64) {}\n",
        )];
        let (index, graph) = graph_of(&units);
        let outer = index.named("outer")[0];
        assert!(
            graph.callees[outer].is_empty(),
            "{:?}",
            graph.callees[outer]
        );
    }

    #[test]
    fn path_qualified_calls_narrow_to_the_matching_impl() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub fn serve() {\n    Pool::grow();\n}\n\
             pub struct Pool;\nimpl Pool {\n    pub fn grow() {}\n}\n\
             pub struct Heap;\nimpl Heap {\n    pub fn grow() {}\n}\n",
        )];
        let (index, graph) = graph_of(&units);
        let serve = index.named("serve")[0];
        let quals: Vec<&str> = graph.callees[serve]
            .iter()
            .map(|&c| index.fns[c].qual.as_str())
            .collect();
        assert_eq!(quals, vec!["Pool::grow"]);
    }

    #[test]
    fn unqualified_method_calls_fan_out_to_every_candidate() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub fn serve(p: Pool) {\n    p.grow();\n}\n\
             pub struct Pool;\nimpl Pool {\n    pub fn grow() {}\n}\n\
             pub struct Heap;\nimpl Heap {\n    pub fn grow() {}\n}\n",
        )];
        let (index, graph) = graph_of(&units);
        let serve = index.named("serve")[0];
        assert_eq!(graph.callees[serve].len(), 2, "over-approximate fan-out");
    }

    #[test]
    fn allows_are_classified_hot_or_cold_per_root() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub fn serve() {\n    hot();\n}\n\
             pub fn run_plan() {\n    hot();\n}\n\
             fn hot() {\n    let v = x.unwrap();\n}\n\
             fn cold() {\n    let v = y.unwrap();\n}\n",
        )];
        let (index, graph) = graph_of(&units);
        let sites = vec![
            AllowSite {
                file: 0,
                rule: NO_PANIC,
                line: 8,
            },
            AllowSite {
                file: 0,
                rule: NO_PANIC,
                line: 11,
            },
        ];
        let classified = panic_reachability(&units, &index, &graph, &sites);
        assert_eq!(classified[0].function, "hot");
        assert_eq!(classified[0].reachable_from, vec!["run_plan", "serve"]);
        assert_eq!(classified[1].function, "cold");
        assert!(classified[1].reachable_from.is_empty());
    }
}
