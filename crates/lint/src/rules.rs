//! The project-invariant rules and their matching logic.
//!
//! Every rule works on *blanked* lines from the [`crate::lexer`], so
//! comments, string literals and `#[cfg(test)]` spans can never produce a
//! match. Matching is lexical by design: the rules name concrete tokens
//! whose presence is the hazard (`Instant`, `.unwrap()`, `== 0.0`, …), so
//! a resolver is unnecessary and the checker stays dependency-free and
//! fast enough to run on every commit.

use crate::lexer::LexedFile;
use crate::report::Finding;
use crate::FileKind;

/// Determinism taint: wall-clock, hash-order and environment reads.
pub const NONDETERMINISM: &str = "nondeterminism";
/// Panics in library code: `unwrap`/`expect`/`panic!` and friends.
pub const NO_PANIC: &str = "no_panic";
/// Slice indexing in the harness supervisory layer.
pub const SLICE_INDEX: &str = "slice_index";
/// `==` / `!=` against floating-point literals.
pub const FLOAT_EQ: &str = "float_eq";
/// `let _ =` discarding a (probable) `Result`.
pub const SWALLOWED_ERROR: &str = "swallowed_error";
/// `BTreeMap`/`BTreeSet` keyed on float bit patterns.
pub const FLOAT_ORD_KEY: &str = "float_ord_key";
/// RNG seeds in library paths that do not flow from a tagged derivation
/// domain (`crates/harness/src/seed.rs`).
pub const SEED_PROVENANCE: &str = "seed_provenance";
/// Workspace schema-id registry violations: duplicate definitions, stale
/// versions after a bump, loose (non-const) occurrences, missing docs.
pub const SCHEMA_REGISTRY: &str = "schema_registry";
/// A malformed allow directive (bad grammar, unknown rule, empty reason).
pub const INVALID_ALLOW: &str = "invalid_allow";
/// An allow directive that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused_allow";

/// The rules an allow directive may name, with one-line descriptions.
pub const ALLOWABLE_RULES: &[(&str, &str)] = &[
    (
        NONDETERMINISM,
        "wall-clock (Instant/SystemTime), hash-order (HashMap/HashSet), OS entropy \
         (thread_rng/from_entropy) and environment (env::var) taint in deterministic paths",
    ),
    (
        NO_PANIC,
        "unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library code",
    ),
    (
        SLICE_INDEX,
        "slice indexing in crates/harness library code (the supervisory layer must not panic)",
    ),
    (FLOAT_EQ, "== or != against a floating-point literal"),
    (
        SWALLOWED_ERROR,
        "`let _ =` silently discarding a value (typically a Result)",
    ),
    (
        FLOAT_ORD_KEY,
        "BTreeMap/BTreeSet keyed on f64/f32 bit-pattern wrappers: bit order disagrees \
         with numeric order (sign bit, -0.0 vs 0.0, NaN payloads), so iteration and \
         range queries are not numerically ordered",
    ),
    (
        SEED_PROVENANCE,
        "an RNG sink (from_seed/seed_from_u64/SimConfig::new) fed by a literal or \
         arithmetic seed instead of a derive_* domain from crates/harness/src/seed.rs",
    ),
    (
        SCHEMA_REGISTRY,
        "a dpm-*/vN schema id defined more than once, left at a stale version after a \
         bump, used outside a const definition, or missing from the workspace docs",
    ),
];

/// Whether `name` is a rule an allow directive may reference.
#[must_use]
pub fn is_allowable_rule(name: &str) -> bool {
    ALLOWABLE_RULES.iter().any(|(n, _)| *n == name)
}

/// Every rule name the checker can emit, in sorted order — the key set the
/// report zero-fills `counts_by_rule` with so baseline comparisons see an
/// explicit `0` (not an absent key) for clean rules.
#[must_use]
pub fn all_rules() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = ALLOWABLE_RULES.iter().map(|(n, _)| *n).collect();
    names.push(INVALID_ALLOW);
    names.push(UNUSED_ALLOW);
    names.sort_unstable();
    names
}

/// A token pattern with word-boundary requirements.
struct TokenPattern {
    needle: &'static str,
    boundary_start: bool,
    boundary_end: bool,
    message: &'static str,
}

const NONDETERMINISM_PATTERNS: &[TokenPattern] = &[
    TokenPattern {
        needle: "Instant",
        boundary_start: true,
        boundary_end: true,
        message: "`std::time::Instant` reads the wall clock; deterministic paths must not",
    },
    TokenPattern {
        needle: "SystemTime",
        boundary_start: true,
        boundary_end: true,
        message: "`SystemTime` reads the wall clock; deterministic paths must not",
    },
    TokenPattern {
        needle: "thread_rng",
        boundary_start: true,
        boundary_end: true,
        message: "`thread_rng` is OS-seeded; use a seed derived from the experiment plan",
    },
    TokenPattern {
        needle: "from_entropy",
        boundary_start: true,
        boundary_end: true,
        message: "`from_entropy` is OS-seeded; use a seed derived from the experiment plan",
    },
    TokenPattern {
        needle: "HashMap",
        boundary_start: true,
        boundary_end: true,
        message: "`HashMap` iteration order is nondeterministic; use `BTreeMap`",
    },
    TokenPattern {
        needle: "HashSet",
        boundary_start: true,
        boundary_end: true,
        message: "`HashSet` iteration order is nondeterministic; use `BTreeSet`",
    },
    TokenPattern {
        needle: "env::var",
        boundary_start: true,
        boundary_end: false,
        message: "environment reads make results depend on the invoking shell",
    },
];

const NO_PANIC_PATTERNS: &[TokenPattern] = &[
    TokenPattern {
        needle: ".unwrap()",
        boundary_start: false,
        boundary_end: false,
        message: "`.unwrap()` panics in library code; return an error or annotate the invariant",
    },
    TokenPattern {
        needle: ".unwrap_err()",
        boundary_start: false,
        boundary_end: false,
        message:
            "`.unwrap_err()` panics in library code; return an error or annotate the invariant",
    },
    TokenPattern {
        needle: ".expect(",
        boundary_start: false,
        boundary_end: false,
        message: "`.expect(…)` panics in library code; return an error or annotate the invariant",
    },
    TokenPattern {
        needle: "panic!",
        boundary_start: true,
        boundary_end: false,
        message: "`panic!` in library code tears down the caller; return an error instead",
    },
    TokenPattern {
        needle: "unreachable!",
        boundary_start: true,
        boundary_end: false,
        message: "`unreachable!` panics if the impossible happens; return an error instead",
    },
    TokenPattern {
        needle: "todo!",
        boundary_start: true,
        boundary_end: false,
        message: "`todo!` must not survive into library code",
    },
    TokenPattern {
        needle: "unimplemented!",
        boundary_start: true,
        boundary_end: false,
        message: "`unimplemented!` must not survive into library code",
    },
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds word-bounded occurrences of `pat` in `code`, yielding 0-based
/// byte columns.
fn find_bounded(code: &str, pat: &TokenPattern) -> Vec<usize> {
    let bytes = code.as_bytes();
    code.match_indices(pat.needle)
        .filter(|(at, _)| {
            let ok_start = !pat.boundary_start
                || *at == 0
                || at.checked_sub(1).map(|p| bytes[p]).is_none_or(|b| {
                    !is_ident_byte(b) && b != b'.' // `.Instant` cannot occur; `.expect` has its own dot
                });
            let end = at + pat.needle.len();
            let ok_end =
                !pat.boundary_end || bytes.get(end).copied().is_none_or(|b| !is_ident_byte(b));
            ok_start && ok_end
        })
        .map(|(at, _)| at)
        .collect()
}

/// Runs every applicable token/shape rule over `file`, returning raw
/// (unsuppressed) findings with 1-based lines and columns.
#[must_use]
pub fn raw_findings(file: &LexedFile, kind: FileKind, rel_path: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let harness_library = kind == FileKind::Library && rel_path.starts_with("crates/harness/src");
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let code = line.code.as_str();
        for pat in NONDETERMINISM_PATTERNS {
            for col in find_bounded(code, pat) {
                out.push(Finding::new(
                    NONDETERMINISM,
                    rel_path,
                    lineno,
                    col + 1,
                    pat.message,
                ));
            }
        }
        if kind == FileKind::Library {
            for pat in NO_PANIC_PATTERNS {
                for col in find_bounded(code, pat) {
                    out.push(Finding::new(
                        NO_PANIC,
                        rel_path,
                        lineno,
                        col + 1,
                        pat.message,
                    ));
                }
            }
        }
        if harness_library {
            for col in slice_index_columns(code) {
                out.push(Finding::new(
                    SLICE_INDEX,
                    rel_path,
                    lineno,
                    col + 1,
                    "slice indexing can panic; use `.get(…)` or annotate the bound",
                ));
            }
        }
        for col in float_eq_columns(code) {
            out.push(Finding::new(
                FLOAT_EQ,
                rel_path,
                lineno,
                col + 1,
                "`==`/`!=` against a float literal; compare with a tolerance or annotate \
                 why exact equality is sound",
            ));
        }
        for col in swallowed_error_columns(code) {
            out.push(Finding::new(
                SWALLOWED_ERROR,
                rel_path,
                lineno,
                col + 1,
                "`let _ =` discards a value (typically a `Result`); handle it or annotate",
            ));
        }
        for col in float_ord_key_columns(code) {
            out.push(Finding::new(
                FLOAT_ORD_KEY,
                rel_path,
                lineno,
                col + 1,
                "ordered container keyed on float bits: bit order disagrees with numeric \
                 order; key on a quantized integer or annotate why bit order is sound",
            ));
        }
    }
    out
}

/// 0-based columns of `[` tokens that index a place expression.
fn slice_index_columns(code: &str) -> Vec<usize> {
    const PLACE_KEYWORDS: &[&str] = &[
        "return", "break", "in", "match", "if", "else", "as", "mut", "ref", "move", "let",
    ];
    let bytes = code.as_bytes();
    let mut cols = Vec::new();
    for (at, _) in code.match_indices('[') {
        let mut p = at;
        while p > 0 && bytes[p - 1] == b' ' {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let prev = bytes[p - 1];
        if prev == b')' || prev == b']' {
            cols.push(at);
            continue;
        }
        if is_ident_byte(prev) {
            let mut s = p - 1;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            let word = &code[s..p];
            if word.as_bytes().first().is_some_and(u8::is_ascii_digit) {
                continue; // `3[…]` cannot occur; digits start array sizes
            }
            if !PLACE_KEYWORDS.contains(&word) {
                cols.push(at);
            }
        }
    }
    cols
}

/// Whether the token ending just before byte `end` (exclusive) looks like
/// a float literal or a float-typed constant path.
fn float_before(code: &str, end: usize) -> bool {
    let bytes = code.as_bytes();
    let mut e = end;
    while e > 0 && bytes[e - 1] == b' ' {
        e -= 1;
    }
    let mut s = e;
    loop {
        while s > 0 {
            let b = bytes[s - 1];
            if is_ident_byte(b) || b == b'.' || b == b':' {
                s -= 1;
            } else {
                break;
            }
        }
        // A sign inside a scientific exponent (`2e-3`): step past it and
        // keep scanning the mantissa.
        if s >= 2
            && (bytes[s - 1] == b'-' || bytes[s - 1] == b'+')
            && matches!(bytes[s - 2], b'e' | b'E')
        {
            s -= 1;
            continue;
        }
        break;
    }
    token_is_float(&code[s..e])
}

/// Whether the token starting at byte `start` looks like a float literal
/// or a float-typed constant path.
fn float_after(code: &str, start: usize) -> bool {
    let bytes = code.as_bytes();
    let mut s = start;
    while s < bytes.len() && bytes[s] == b' ' {
        s += 1;
    }
    if s < bytes.len() && bytes[s] == b'-' {
        s += 1;
        while s < bytes.len() && bytes[s] == b' ' {
            s += 1;
        }
    }
    let mut e = s;
    while e < bytes.len() {
        let b = bytes[e];
        if is_ident_byte(b) || b == b'.' || b == b':' {
            e += 1;
        } else {
            break;
        }
    }
    token_is_float(&code[s..e])
}

/// Whether one extracted token is a float literal (`1.5`, `0.`, `2e-3`,
/// `1f64`) or a float constant path (`f64::EPSILON`).
fn token_is_float(token: &str) -> bool {
    if token.starts_with("f64::") || token.starts_with("f32::") {
        return true;
    }
    let bytes = token.as_bytes();
    if !bytes.first().is_some_and(u8::is_ascii_digit) {
        return false;
    }
    if token.starts_with("0x") || token.starts_with("0b") || token.starts_with("0o") {
        return false;
    }
    token.ends_with("f32")
        || token.ends_with("f64")
        || token.contains('.')
        || token.contains('e')
        || token.contains('E')
}

/// 0-based columns of `==` / `!=` operators with a float literal operand.
fn float_eq_columns(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut cols = Vec::new();
    for (at, op) in code.match_indices("==").chain(code.match_indices("!=")) {
        // Skip `<=`/`>=`-adjacent false shapes: `===` and `!==` are not
        // Rust, but a `=` immediately before `==` means pattern `x ==…`
        // was really `… ===`, i.e. we matched the tail of `!==`/`===`.
        if at > 0
            && (bytes[at - 1] == b'='
                || bytes[at - 1] == b'!'
                || bytes[at - 1] == b'<'
                || bytes[at - 1] == b'>')
        {
            continue;
        }
        if bytes.get(at + op.len()) == Some(&b'=') {
            continue;
        }
        if float_before(code, at) || float_after(code, at + op.len()) {
            cols.push(at);
        }
    }
    cols.sort_unstable();
    cols
}

/// 0-based columns of `BTreeMap`/`BTreeSet` tokens whose first (key)
/// generic argument names a float type or a float bit-pattern wrapper.
fn float_ord_key_columns(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut cols = Vec::new();
    for needle in ["BTreeMap", "BTreeSet"] {
        for (at, _) in code.match_indices(needle) {
            let ok_start = at == 0 || !is_ident_byte(bytes[at - 1]);
            if !ok_start {
                continue;
            }
            // Optional turbofish `::`, then the opening `<` of the key type.
            let mut p = at + needle.len();
            while bytes.get(p) == Some(&b' ') {
                p += 1;
            }
            if bytes.get(p) == Some(&b':') && bytes.get(p + 1) == Some(&b':') {
                p += 2;
                while bytes.get(p) == Some(&b' ') {
                    p += 1;
                }
            }
            if bytes.get(p) != Some(&b'<') {
                continue;
            }
            p += 1;
            // The key type runs to the first depth-0 `,` (map) or `>` (set).
            let start = p;
            let mut depth = 0usize;
            while p < bytes.len() {
                match bytes[p] {
                    b'<' | b'(' | b'[' => depth += 1,
                    b'>' | b',' if depth == 0 => break,
                    b'>' | b')' | b']' => depth -= 1,
                    _ => {}
                }
                p += 1;
            }
            if key_is_float_bits(&code[start..p]) {
                cols.push(at);
            }
        }
    }
    cols.sort_unstable();
    cols
}

/// Whether a key-type string names a float (`f64`, `f32`, word-bounded)
/// or a bit-pattern wrapper (any identifier containing `Bits`).
fn key_is_float_bits(key: &str) -> bool {
    let bytes = key.as_bytes();
    for (at, tok) in key.match_indices("f64").chain(key.match_indices("f32")) {
        let ok_start = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + tok.len();
        let ok_end = bytes.get(end).copied().is_none_or(|b| !is_ident_byte(b));
        if ok_start && ok_end {
            return true;
        }
    }
    key.contains("Bits")
}

/// 0-based columns of `let _ =` bindings that are not the infallible
/// `write!`/`writeln!`-into-`String` idiom.
fn swallowed_error_columns(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut cols = Vec::new();
    for (at, _) in code.match_indices("let _ =") {
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let rest = code[at + "let _ =".len()..].trim_start();
        if rest.starts_with("write!") || rest.starts_with("writeln!") {
            continue; // fmt::Write into String is infallible; the discard is the idiom
        }
        cols.push(at);
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str, kind: FileKind, rel: &str) -> Vec<Finding> {
        raw_findings(&LexedFile::lex(src), kind, rel)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn nondeterminism_tokens_are_word_bounded() {
        let hit = findings_in(
            "let t = Instant::now();\n",
            FileKind::Library,
            "crates/core/src/a.rs",
        );
        assert_eq!(rules_of(&hit), vec![NONDETERMINISM]);
        let miss = findings_in(
            "let t = MyInstant::now();\n",
            FileKind::Library,
            "crates/core/src/a.rs",
        );
        assert!(miss.is_empty(), "{miss:?}");
        let miss = findings_in(
            "let t = Instantaneous::new();\n",
            FileKind::Library,
            "crates/core/src/a.rs",
        );
        assert!(miss.is_empty(), "{miss:?}");
    }

    #[test]
    fn nondeterminism_fires_in_binaries_too() {
        let hit = findings_in(
            "let k: HashMap<u32, u32> = make();\n",
            FileKind::Bin,
            "crates/core/src/bin/x.rs",
        );
        assert_eq!(rules_of(&hit), vec![NONDETERMINISM]);
    }

    #[test]
    fn no_panic_applies_to_library_code_only() {
        let src =
            "let v = maybe.unwrap();\nlet w = maybe.expect(\"present\");\npanic!(\"boom\");\n";
        let lib = findings_in(src, FileKind::Library, "crates/core/src/a.rs");
        assert_eq!(rules_of(&lib), vec![NO_PANIC, NO_PANIC, NO_PANIC]);
        let bin = findings_in(src, FileKind::Bin, "crates/core/src/bin/x.rs");
        assert!(bin.is_empty(), "{bin:?}");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let out = findings_in(
            "let v = maybe.unwrap_or(0);\n",
            FileKind::Library,
            "crates/core/src/a.rs",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn slice_index_is_scoped_to_the_harness_library() {
        let src = "let x = values[i];\n";
        let harness = findings_in(src, FileKind::Library, "crates/harness/src/pool.rs");
        assert_eq!(rules_of(&harness), vec![SLICE_INDEX]);
        assert!(findings_in(src, FileKind::Library, "crates/core/src/a.rs").is_empty());
        assert!(findings_in(src, FileKind::Bin, "crates/harness/src/bin/x.rs").is_empty());
    }

    #[test]
    fn slice_index_ignores_array_literals_and_types() {
        for src in [
            "let a = [0u8; 4];\n",
            "let b: [f64; 3] = make();\n",
            "for x in [1, 2, 3] {\n",
            "return [left, right];\n",
        ] {
            let out = findings_in(src, FileKind::Library, "crates/harness/src/pool.rs");
            assert!(out.is_empty(), "`{src}` flagged: {out:?}");
        }
        let chained = findings_in(
            "let y = tail()[0];\n",
            FileKind::Library,
            "crates/harness/src/pool.rs",
        );
        assert_eq!(rules_of(&chained), vec![SLICE_INDEX]);
    }

    #[test]
    fn float_eq_needs_a_float_operand() {
        let rel = "crates/core/src/a.rs";
        assert_eq!(
            rules_of(&findings_in("if x == 1.0 {\n", FileKind::Library, rel)),
            vec![FLOAT_EQ]
        );
        assert_eq!(
            rules_of(&findings_in(
                "if y != f64::EPSILON {\n",
                FileKind::Library,
                rel
            )),
            vec![FLOAT_EQ]
        );
        assert_eq!(
            rules_of(&findings_in("if 2e-3 == z {\n", FileKind::Library, rel)),
            vec![FLOAT_EQ]
        );
        for clean in [
            "if n == 1 {\n",
            "if mask == 0x10 {\n",
            "if (x - y).abs() < 1e-9 {\n",
            "if name == other {\n",
            "if x <= 1.0 {\n",
        ] {
            let out = findings_in(clean, FileKind::Library, rel);
            assert!(out.is_empty(), "`{clean}` flagged: {out:?}");
        }
    }

    #[test]
    fn swallowed_error_exempts_infallible_formatting() {
        let rel = "crates/core/src/a.rs";
        assert_eq!(
            rules_of(&findings_in(
                "let _ = fallible();\n",
                FileKind::Library,
                rel
            )),
            vec![SWALLOWED_ERROR]
        );
        for clean in [
            "let _ = write!(out, \"x\");\n",
            "let _ = writeln!(out, \"x\");\n",
            "let _y = fallible();\n",
        ] {
            let out = findings_in(clean, FileKind::Library, rel);
            assert!(out.is_empty(), "`{clean}` flagged: {out:?}");
        }
    }

    #[test]
    fn float_ord_key_needs_a_float_bit_key() {
        let rel = "crates/core/src/a.rs";
        for hot in [
            "let m: BTreeMap<F64Bits, usize> = BTreeMap::new();\n",
            "let s: BTreeSet<WeightBits> = BTreeSet::new();\n",
            "let t = BTreeMap::<OrderedFloat<f64>, Policy>::new();\n",
            "fn index(m: &BTreeMap<(u32, F64Bits), V>) {}\n",
        ] {
            let out = findings_in(hot, FileKind::Library, rel);
            assert!(
                out.iter().any(|f| f.rule == FLOAT_ORD_KEY),
                "`{hot}` missed: {out:?}"
            );
        }
        for clean in [
            "let m: BTreeMap<u64, f64> = BTreeMap::new();\n",
            "let s: BTreeSet<String> = BTreeSet::new();\n",
            "let v: BTreeMap<usize, Vec<f64>> = BTreeMap::new();\n",
            "let n = BTreeMap::new();\n",
            "let o: MyBTreeMap<f64> = make();\n",
        ] {
            let out = findings_in(clean, FileKind::Library, rel);
            assert!(
                out.iter().all(|f| f.rule != FLOAT_ORD_KEY),
                "`{clean}` flagged: {out:?}"
            );
        }
    }

    #[test]
    fn float_ord_key_fires_in_binaries_too() {
        let out = findings_in(
            "let m: BTreeMap<F64Bits, usize> = BTreeMap::new();\n",
            FileKind::Bin,
            "crates/core/src/bin/x.rs",
        );
        assert_eq!(rules_of(&out), vec![FLOAT_ORD_KEY]);
    }

    #[test]
    fn cfg_test_spans_are_exempt_everywhere() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    fn t() { maybe.unwrap(); }\n}\n";
        let out = findings_in(src, FileKind::Library, "crates/core/src/a.rs");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn findings_carry_one_based_positions() {
        let out = findings_in(
            "\nlet t = Instant::now();\n",
            FileKind::Library,
            "crates/core/src/a.rs",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert_eq!(out[0].column, 9);
    }

    #[test]
    fn every_allowable_rule_is_documented() {
        for (name, description) in ALLOWABLE_RULES {
            assert!(is_allowable_rule(name));
            assert!(!description.is_empty());
        }
        assert!(!is_allowable_rule("invalid_allow"));
        assert!(!is_allowable_rule("unused_allow"));
    }
}
