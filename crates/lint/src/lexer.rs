//! A comment- and string-aware lexer for Rust source files.
//!
//! The rule engine must never fire on text inside a comment, a string
//! literal, or a `#[cfg(test)]` item. Rather than build a full parser, the
//! lexer produces a *blanked* copy of the source — byte-for-byte the same
//! shape, but with comment bodies and literal contents replaced by spaces —
//! plus the list of line comments (the carrier for `dpm-lint:` allow
//! directives) and a per-line "inside a test item" flag.
//!
//! Handled literal forms: `"…"` with escapes, `r"…"`, `r#"…"#` (any hash
//! depth), byte/raw-byte strings, char literals (distinguished from
//! lifetimes by lookahead), and nested `/* … */` block comments.

/// One line comment found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// The comment text after the `//` (or `///`, `//!`) marker.
    pub text: String,
    /// Whether any non-whitespace code preceded the comment on its line.
    pub after_code: bool,
}

/// One string literal found in the source (plain, raw or byte form).
///
/// The blanked view erases literal contents so rules cannot fire on prose;
/// analyses that legitimately care about literal *values* — the schema-id
/// registry — read them from here instead, with test spans still exempt
/// via [`LexedFile::in_test`] on [`StrLit::line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: usize,
    /// The literal's contents as written (escapes not processed).
    pub text: String,
}

/// One line of lexed source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// The line's code with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Whether the line falls inside a `#[cfg(test)]` item span.
    pub in_test: bool,
}

/// A lexed source file: blanked lines plus the extracted comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexedFile {
    /// The blanked source, split into lines (no terminators).
    pub lines: Vec<Line>,
    /// Every line comment, in source order.
    pub comments: Vec<Comment>,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
}

impl LexedFile {
    /// Lexes `source` into blanked lines, comments and test spans.
    #[must_use]
    pub fn lex(source: &str) -> LexedFile {
        let chars: Vec<char> = source.chars().collect();
        let mut blanked = String::with_capacity(source.len());
        let mut comments = Vec::new();
        let mut strings = Vec::new();
        let mut line = 1usize;
        let mut after_code = false;
        let mut i = 0usize;

        while i < chars.len() {
            let c = chars[i];
            match c {
                '\n' => {
                    blanked.push('\n');
                    line += 1;
                    after_code = false;
                    i += 1;
                }
                '/' if chars.get(i + 1) == Some(&'/') => {
                    // Line comment: capture its text, blank it in the output.
                    let start = i + 2;
                    let mut end = start;
                    while end < chars.len() && chars[end] != '\n' {
                        end += 1;
                    }
                    comments.push(Comment {
                        line,
                        text: chars[start..end].iter().collect(),
                        after_code,
                    });
                    for _ in i..end {
                        blanked.push(' ');
                    }
                    i = end;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    // Block comment; Rust block comments nest.
                    let mut depth = 1usize;
                    blanked.push(' ');
                    blanked.push(' ');
                    i += 2;
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            depth += 1;
                            blanked.push_str("  ");
                            i += 2;
                        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            depth -= 1;
                            blanked.push_str("  ");
                            i += 2;
                        } else if chars[i] == '\n' {
                            blanked.push('\n');
                            line += 1;
                            after_code = false;
                            i += 1;
                        } else {
                            blanked.push(' ');
                            i += 1;
                        }
                    }
                }
                '"' => {
                    i = blank_quoted_string(
                        &chars,
                        i,
                        &mut blanked,
                        &mut line,
                        &mut after_code,
                        &mut strings,
                    );
                }
                'r' | 'b' if is_literal_prefix(&chars, i) && !ident_char_before(&chars, i) => {
                    i = blank_prefixed_literal(
                        &chars,
                        i,
                        &mut blanked,
                        &mut line,
                        &mut after_code,
                        &mut strings,
                    );
                }
                '\'' => {
                    i = blank_char_or_lifetime(&chars, i, &mut blanked, &mut after_code);
                }
                _ => {
                    if !c.is_whitespace() {
                        after_code = true;
                    }
                    blanked.push(c);
                    i += 1;
                }
            }
        }

        let mut lines: Vec<Line> = blanked
            .split('\n')
            .map(|code| Line {
                code: code.to_owned(),
                in_test: false,
            })
            .collect();
        mark_test_spans(&mut lines);
        LexedFile {
            lines,
            comments,
            strings,
        }
    }

    /// The blanked code of 1-based line `line`, if it exists.
    #[must_use]
    pub fn code(&self, line: usize) -> Option<&str> {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.code.as_str())
    }

    /// Whether 1-based line `line` sits inside a `#[cfg(test)]` span.
    #[must_use]
    pub fn in_test(&self, line: usize) -> bool {
        self.lines
            .get(line.wrapping_sub(1))
            .is_some_and(|l| l.in_test)
    }

    /// The first line at or after 1-based `from` that carries code, if any.
    #[must_use]
    pub fn next_code_line(&self, from: usize) -> Option<usize> {
        (from..=self.lines.len()).find(|&n| self.code(n).is_some_and(|c| !c.trim().is_empty()))
    }
}

/// Whether `chars[at]` begins a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`, `b'`).
fn is_literal_prefix(chars: &[char], at: usize) -> bool {
    let mut j = at;
    if chars.get(j) == Some(&'b') {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true; // byte char literal b'x'
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    chars.get(j) == Some(&'"') && j > at
}

/// Whether the character before `chars[at]` continues an identifier, which
/// rules out a literal prefix (e.g. the `r` of `var"` is part of `var`).
fn ident_char_before(chars: &[char], at: usize) -> bool {
    at > 0
        && chars
            .get(at - 1)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// Blanks a `"…"` string starting at `chars[at]`; returns the index after
/// the closing quote. The literal's raw contents are recorded in `strings`.
fn blank_quoted_string(
    chars: &[char],
    at: usize,
    blanked: &mut String,
    line: &mut usize,
    after_code: &mut bool,
    strings: &mut Vec<StrLit>,
) -> usize {
    *after_code = true;
    let start_line = *line;
    let mut text = String::new();
    blanked.push(' ');
    let mut i = at + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // Escape: two chars, except `\` + newline (line continuation)
                // where the newline must survive for line counting.
                blanked.push(' ');
                text.push(chars[i]);
                i += 1;
                if chars.get(i) == Some(&'\n') {
                    blanked.push('\n');
                    text.push('\n');
                    *line += 1;
                } else if i < chars.len() {
                    blanked.push(' ');
                    text.push(chars[i]);
                }
                i += 1;
            }
            '"' => {
                blanked.push(' ');
                strings.push(StrLit {
                    line: start_line,
                    text,
                });
                return i + 1;
            }
            '\n' => {
                blanked.push('\n');
                text.push('\n');
                *line += 1;
                i += 1;
            }
            c => {
                blanked.push(' ');
                text.push(c);
                i += 1;
            }
        }
    }
    strings.push(StrLit {
        line: start_line,
        text,
    });
    i
}

/// Blanks a raw/byte string (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`) or byte
/// char (`b'x'`) starting at `chars[at]`; returns the index after it. Raw
/// and byte-string contents are recorded in `strings`.
fn blank_prefixed_literal(
    chars: &[char],
    at: usize,
    blanked: &mut String,
    line: &mut usize,
    after_code: &mut bool,
    strings: &mut Vec<StrLit>,
) -> usize {
    *after_code = true;
    let mut i = at;
    if chars.get(i) == Some(&'b') {
        blanked.push(' ');
        i += 1;
        if chars.get(i) == Some(&'\'') {
            // b'x' byte literal: blank through the closing quote.
            blanked.push(' ');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' {
                    blanked.push_str("  ");
                    i += 2;
                } else if chars[i] == '\'' {
                    blanked.push(' ');
                    return i + 1;
                } else {
                    blanked.push(' ');
                    i += 1;
                }
            }
            return i;
        }
    }
    let mut hashes = 0usize;
    if chars.get(i) == Some(&'r') {
        blanked.push(' ');
        i += 1;
        while chars.get(i) == Some(&'#') {
            blanked.push(' ');
            hashes += 1;
            i += 1;
        }
        // Raw string: no escapes; closes on `"` followed by `hashes` hashes.
        blanked.push(' ');
        i += 1; // opening quote
        let start_line = *line;
        let mut text = String::new();
        while i < chars.len() {
            if chars[i] == '"' && closes_raw(chars, i, hashes) {
                for _ in 0..=hashes {
                    blanked.push(' ');
                }
                strings.push(StrLit {
                    line: start_line,
                    text,
                });
                return i + 1 + hashes;
            }
            if chars[i] == '\n' {
                blanked.push('\n');
                text.push('\n');
                *line += 1;
            } else {
                blanked.push(' ');
                text.push(chars[i]);
            }
            i += 1;
        }
        strings.push(StrLit {
            line: start_line,
            text,
        });
        return i;
    }
    // Plain b"…" byte string.
    blank_quoted_string(chars, i, blanked, line, after_code, strings)
}

/// Whether the `"` at `chars[at]` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], at: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(at + k) == Some(&'#'))
}

/// Blanks a char literal, or passes through a lifetime tick; returns the
/// index after what was consumed.
fn blank_char_or_lifetime(
    chars: &[char],
    at: usize,
    blanked: &mut String,
    after_code: &mut bool,
) -> usize {
    *after_code = true;
    let escaped = chars.get(at + 1) == Some(&'\\');
    let closed_short = chars.get(at + 2) == Some(&'\'');
    if escaped || closed_short {
        // A char literal: `'x'` or `'\…'` — blank through the closing quote.
        blanked.push(' ');
        let mut i = at + 1;
        while i < chars.len() {
            if chars[i] == '\\' {
                blanked.push_str("  ");
                i += 2;
            } else if chars[i] == '\'' {
                blanked.push(' ');
                return i + 1;
            } else {
                blanked.push(' ');
                i += 1;
            }
        }
        i
    } else {
        // A lifetime (`'a`) or loop label: keep the tick as code.
        blanked.push('\'');
        at + 1
    }
}

/// Marks every line inside a `#[cfg(test)]` item span.
///
/// The span runs from the attribute to the end of the item it decorates:
/// the matching close of the first `{` after the attribute, or the first
/// `;` if one appears before any brace (e.g. `#[cfg(test)] use …;`). The
/// attribute is matched literally as `#[cfg(test)]` — the form `cargo fmt`
/// produces.
fn mark_test_spans(lines: &mut [Line]) {
    let mut idx = 0usize;
    while idx < lines.len() {
        let Some(col) = lines[idx].code.find("#[cfg(test)]") else {
            idx += 1;
            continue;
        };
        let mut depth = 0usize;
        let mut entered = false;
        let mut end = lines.len().saturating_sub(1);
        let mut start_col = col;
        'span: for (j, lin) in lines.iter().enumerate().skip(idx) {
            for c in lin.code.chars().skip(start_col) {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            end = j;
                            break 'span;
                        }
                    }
                    ';' if !entered => {
                        end = j;
                        break 'span;
                    }
                    _ => {}
                }
            }
            start_col = 0;
        }
        for lin in lines.iter_mut().take(end + 1).skip(idx) {
            lin.in_test = true;
        }
        idx = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lexed = LexedFile::lex("let a = \"HashMap\"; // trailing Instant\nlet b = 1;\n");
        let code = lexed.code(1).unwrap();
        assert!(!code.contains("HashMap"), "string body leaked: {code}");
        assert!(!code.contains("Instant"), "comment body leaked: {code}");
        assert!(code.starts_with("let a = "));
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, " trailing Instant");
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].after_code);
    }

    #[test]
    fn standalone_comments_are_not_after_code() {
        let lexed = LexedFile::lex("  // standalone\nlet x = 1; // trailing\n");
        assert!(!lexed.comments[0].after_code);
        assert!(lexed.comments[1].after_code);
    }

    #[test]
    fn raw_strings_blank_to_the_matching_hash_close() {
        let src = r###"let s = r#"Instant "inner" quote"#; call();"###;
        let lexed = LexedFile::lex(src);
        let code = lexed.code(1).unwrap();
        assert!(!code.contains("Instant"), "raw string leaked: {code}");
        assert!(!code.contains("inner"));
        assert!(
            code.contains("call();"),
            "code after the literal lost: {code}"
        );
    }

    #[test]
    fn multiline_raw_strings_preserve_line_numbers() {
        let src = "let s = r#\"line one\nSystemTime two\"#;\nfoo();\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.code(2).unwrap().contains("SystemTime"));
        assert_eq!(lexed.code(3), Some("foo();"));
    }

    #[test]
    fn byte_literals_are_blanked() {
        let lexed = LexedFile::lex("let b = b\"Instant\"; let c = b'\\n'; rest();\n");
        let code = lexed.code(1).unwrap();
        assert!(!code.contains("Instant"));
        assert!(code.contains("rest();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string_prefix() {
        let lexed = LexedFile::lex("let var = 1; let x = var\n  + 2;\n");
        assert!(lexed.code(1).unwrap().contains("var = 1"));
        assert!(lexed.code(2).unwrap().contains("+ 2"));
    }

    #[test]
    fn escaped_newline_continuation_keeps_line_count() {
        let src = "let s = \"abc\\\ndef\";\nnext();\n";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.code(3), Some("next();"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "/* outer /* inner */ still a comment */ keep();\n";
        let lexed = LexedFile::lex(src);
        let code = lexed.code(1).unwrap();
        assert!(!code.contains("outer"));
        assert!(!code.contains("still"));
        assert!(code.contains("keep();"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\n'; let d = 'x'; }\n";
        let lexed = LexedFile::lex(src);
        let code = lexed.code(1).unwrap();
        assert!(code.contains("<'a>"), "lifetime lost: {code}");
        assert!(code.contains("&'a str"), "lifetime lost: {code}");
        assert!(!code.contains("'x'"), "char literal leaked: {code}");
    }

    #[test]
    fn cfg_test_brace_spans_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.in_test(1));
        for line in 2..=5 {
            assert!(lexed.in_test(line), "line {line} should be in-test");
        }
        assert!(!lexed.in_test(6));
    }

    #[test]
    fn cfg_test_semicolon_items_end_the_span() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let lexed = LexedFile::lex(src);
        assert!(lexed.in_test(1));
        assert!(lexed.in_test(2));
        assert!(!lexed.in_test(3));
    }

    #[test]
    fn cfg_test_in_a_string_is_not_a_span() {
        let src = "let s = \"#[cfg(test)]\";\nlet x = 1;\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.in_test(1));
        assert!(!lexed.in_test(2));
    }

    #[test]
    fn next_code_line_skips_blanks_and_comments() {
        let lexed = LexedFile::lex("// comment\n\nlet x = 1;\n");
        assert_eq!(lexed.next_code_line(1), Some(3));
        assert_eq!(lexed.next_code_line(4), None);
    }

    #[test]
    fn string_contents_are_captured_with_lines() {
        let src = "let a = \"dpm-x/v1\";\nlet b = r#\"raw \"body\"\"#;\nlet c = \"two\\nlines\";\n";
        let lexed = LexedFile::lex(src);
        let texts: Vec<(usize, &str)> = lexed
            .strings
            .iter()
            .map(|s| (s.line, s.text.as_str()))
            .collect();
        assert_eq!(
            texts,
            vec![(1, "dpm-x/v1"), (2, "raw \"body\""), (3, "two\\nlines"),]
        );
    }

    #[test]
    fn raw_strings_inside_macro_invocations_blank_cleanly() {
        // The macro bang and parens survive as code; the raw body (any hash
        // depth) is blanked without derailing what follows.
        let src = "writeln!(out, r#\"Instant \"{}\" SystemTime\"#, x)?;\nafter();\n";
        let lexed = LexedFile::lex(src);
        let code = lexed.code(1).unwrap();
        assert!(
            code.starts_with("writeln!(out, "),
            "macro head lost: {code}"
        );
        assert!(!code.contains("Instant"), "raw body leaked: {code}");
        assert!(code.contains(", x)?;"), "tail after literal lost: {code}");
        assert_eq!(lexed.code(2), Some("after();"));
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].text, "Instant \"{}\" SystemTime");
    }

    #[test]
    fn nested_block_comment_terminating_at_eof_keeps_shape() {
        // The inner comment never closes: everything to EOF is comment, and
        // line/char accounting must survive the truncation.
        let src = "keep();\n/* outer /* inner Instant\nstill comment";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.lines.len(), 3);
        assert_eq!(lexed.code(1), Some("keep();"));
        for line in 2..=3 {
            let code = lexed.code(line).unwrap();
            assert!(
                code.trim().is_empty(),
                "line {line} should be blanked: {code:?}"
            );
            let original = src.split('\n').nth(line - 1).unwrap();
            assert_eq!(code.chars().count(), original.chars().count());
        }
    }

    #[test]
    fn cfg_test_on_an_out_of_line_mod_ends_at_the_semicolon() {
        let src = "#[cfg(test)]\nmod prop_harness;\nfn real() { maybe.unwrap(); }\n";
        let lexed = LexedFile::lex(src);
        assert!(lexed.in_test(1));
        assert!(lexed.in_test(2));
        assert!(!lexed.in_test(3), "span leaked past the `mod x;` item");
    }
}
