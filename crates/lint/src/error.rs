//! Error type for the lint driver.

use std::fmt;
use std::path::Path;

/// Anything that can go wrong while driving the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, stringified.
        reason: String,
    },
    /// A command-line argument was not understood.
    Usage(String),
}

impl LintError {
    /// Wraps an I/O error with its path.
    #[must_use]
    pub fn io(path: &Path, source: &std::io::Error) -> LintError {
        LintError::Io {
            path: path.display().to_string(),
            reason: source.to_string(),
        }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, reason } => write!(f, "{path}: {reason}"),
            LintError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}
