//! Workspace file discovery.
//!
//! Walks the repository for `*.rs` files in deterministic (sorted) order,
//! skipping everything the rules do not govern: `vendor/` (third-party
//! code), `target/`, `tests/` and `benches/` and `examples/` directories
//! (panics and ad-hoc timing are fine there), `fixtures/` (planted
//! violations for the lint's own tests), and generated/output trees.

use crate::error::LintError;
use crate::FileKind;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", "results", "docs",
];

/// One file selected for checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Absolute (or root-joined) path for reading.
    pub path: PathBuf,
    /// Workspace-relative `/`-separated path for reporting.
    pub rel: String,
    /// Library or binary classification.
    pub kind: FileKind,
}

/// Collects every governed `.rs` file under `root`, sorted by relative
/// path.
///
/// # Errors
///
/// Returns [`LintError::Io`] if a directory cannot be read.
pub fn workspace_files(root: &Path) -> Result<Vec<SourceFile>, LintError> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Classifies a workspace-relative path as library or binary code.
#[must_use]
pub fn classify(rel: &str) -> FileKind {
    if rel.contains("/bin/") || rel.ends_with("main.rs") {
        FileKind::Bin
    } else {
        FileKind::Library
    }
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|source| LintError::io(dir, &source))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::io(dir, &source))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let kind = classify(&rel);
            out.push(SourceFile { path, rel, kind });
        }
    }
    Ok(())
}
