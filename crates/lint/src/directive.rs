//! The allow-annotation grammar.
//!
//! A finding is suppressed by an inline directive in a plain line comment:
//!
//! ```text
//! // dpm-lint: allow(<rule>, reason = "<non-empty why>")
//! // dpm-lint: allow-file(<rule>, reason = "<non-empty why>")
//! ```
//!
//! `allow` attaches to the code on its own line (trailing comment) or, when
//! the comment stands alone, to the next line carrying code. `allow-file`
//! suppresses the rule for the whole file and belongs near the top. The
//! `reason` string is mandatory and must be non-empty: an allow without a
//! justification is itself a finding ([`crate::rules::INVALID_ALLOW`]), as
//! is an allow that suppresses nothing ([`crate::rules::UNUSED_ALLOW`]).

/// What a directive applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// One line of code (the directive's own line, or the next code line).
    Line,
    /// The entire file.
    File,
}

/// A parsed `dpm-lint:` allow directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Line or file scope.
    pub scope: Scope,
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line of the carrying comment.
    pub comment_line: usize,
    /// Whether code preceded the comment on its line.
    pub after_code: bool,
}

/// The result of inspecting one comment for a directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The comment does not mention `dpm-lint:` at all.
    NotADirective,
    /// A well-formed directive.
    Parsed(Directive),
    /// The comment claims to be a directive but does not parse; the string
    /// explains what is wrong.
    Malformed(String),
}

/// Parses the text of one line comment (the part after `//`).
#[must_use]
pub fn parse(text: &str, comment_line: usize, after_code: bool) -> ParseOutcome {
    let Some(at) = text.find("dpm-lint:") else {
        return ParseOutcome::NotADirective;
    };
    let rest = text[at..].trim_start_matches("dpm-lint:").trim_start();
    let (scope, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (Scope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (Scope::Line, r)
    } else {
        return ParseOutcome::Malformed(
            "expected `allow(…)` or `allow-file(…)` after `dpm-lint:`".to_owned(),
        );
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return ParseOutcome::Malformed("expected `(` after `allow`".to_owned());
    };
    let Some(body) = rest.strip_suffix(')').map(str::trim) else {
        return ParseOutcome::Malformed("directive must end with `)`".to_owned());
    };
    let Some((rule, tail)) = body.split_once(',') else {
        return ParseOutcome::Malformed(
            "expected `<rule>, reason = \"…\"` inside the parentheses".to_owned(),
        );
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
        return ParseOutcome::Malformed(format!("`{rule}` is not a rule name"));
    }
    let tail = tail.trim();
    let Some(tail) = tail.strip_prefix("reason") else {
        return ParseOutcome::Malformed("expected `reason = \"…\"`".to_owned());
    };
    let tail = tail.trim_start();
    let Some(tail) = tail.strip_prefix('=') else {
        return ParseOutcome::Malformed("expected `=` after `reason`".to_owned());
    };
    let tail = tail.trim();
    let Some(tail) = tail.strip_prefix('"') else {
        return ParseOutcome::Malformed("reason must be a quoted string".to_owned());
    };
    let Some(reason) = tail.strip_suffix('"') else {
        return ParseOutcome::Malformed("reason string is unterminated".to_owned());
    };
    if reason.trim().is_empty() {
        return ParseOutcome::Malformed("reason must not be empty".to_owned());
    }
    ParseOutcome::Parsed(Directive {
        scope,
        rule: rule.to_owned(),
        reason: reason.to_owned(),
        comment_line,
        after_code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_line_allow_parses() {
        let out = parse(
            " dpm-lint: allow(no_panic, reason = \"invariant holds\")",
            7,
            true,
        );
        let ParseOutcome::Parsed(dir) = out else {
            panic!("expected Parsed, got {out:?}");
        };
        assert_eq!(dir.scope, Scope::Line);
        assert_eq!(dir.rule, "no_panic");
        assert_eq!(dir.reason, "invariant holds");
        assert_eq!(dir.comment_line, 7);
        assert!(dir.after_code);
    }

    #[test]
    fn allow_file_parses_with_file_scope() {
        let out = parse(
            " dpm-lint: allow-file(float_eq, reason = \"exact IEEE round-trip\")",
            1,
            false,
        );
        let ParseOutcome::Parsed(dir) = out else {
            panic!("expected Parsed, got {out:?}");
        };
        assert_eq!(dir.scope, Scope::File);
        assert_eq!(dir.rule, "float_eq");
    }

    #[test]
    fn ordinary_comments_are_not_directives() {
        assert_eq!(
            parse(" the pool recovers from poisoning", 1, false),
            ParseOutcome::NotADirective
        );
    }

    #[test]
    fn malformed_shapes_are_reported() {
        let malformed = [
            " dpm-lint: allow(no_panic)",                    // no reason
            " dpm-lint: allow(no_panic, reason = \"\")",     // empty reason
            " dpm-lint: allow(no_panic, reason = \"   \")",  // blank reason
            " dpm-lint: allow(no_panic, reason = \"open",    // unterminated
            " dpm-lint: allow(no_panic, reason = unquoted)", // not a string
            " dpm-lint: allow(No-Panic, reason = \"x\")",    // bad rule name
            " dpm-lint: allow no_panic, reason = \"x\"",     // missing parens
            " dpm-lint: deny(no_panic, reason = \"x\")",     // unknown verb
        ];
        for text in malformed {
            assert!(
                matches!(parse(text, 1, false), ParseOutcome::Malformed(_)),
                "`{text}` should be malformed"
            );
        }
    }
}
