//! `dpm-lint` — workspace static analysis for the DPM-CTMDP reproduction.
//!
//! The workspace's headline guarantee is that experiment artifacts are
//! *bit-identical* across worker counts and kill/resume (see
//! `crates/harness`), and that library code never takes a run down with a
//! panic. Integration tests probe those contracts; this crate makes them
//! machine-checked on every commit with a project-specific static pass:
//!
//! * [`rules::NONDETERMINISM`] — wall-clock (`Instant`/`SystemTime`),
//!   hash-iteration-order (`HashMap`/`HashSet`), OS-entropy
//!   (`thread_rng`/`from_entropy`) and environment (`env::var`) taint;
//! * [`rules::NO_PANIC`] — `unwrap()`, `expect(…)`, `panic!` and friends
//!   in library paths;
//! * [`rules::SLICE_INDEX`] — slice indexing in the harness supervisory
//!   layer (`crates/harness/src`), which must survive task panics;
//! * [`rules::FLOAT_EQ`] — `==`/`!=` against floating-point literals;
//! * [`rules::SWALLOWED_ERROR`] — `let _ =` silently dropping a value.
//!
//! Deliberate exceptions carry an inline annotation with a mandatory
//! reason (see [`directive`]); a missing or hollow reason is itself a
//! finding, as is an annotation that suppresses nothing. Matching runs on
//! a *blanked* view of each file produced by a comment- and string-aware
//! [`lexer`], so prose and string contents can never trip a rule, and
//! `#[cfg(test)]` spans are exempt.
//!
//! The `dpm-lint` binary walks every workspace crate (excluding `vendor/`,
//! `target/`, tests, benches and examples), prints human-readable
//! findings, optionally emits a canonical-JSON report, and exits nonzero
//! under `--deny` — the CI gate (`scripts/ci.sh`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directive;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use engine::check_source;
pub use error::LintError;
pub use report::{Finding, Report};

use std::path::Path;

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Library,
    /// A binary (`src/bin`, `main.rs`): panic rules are relaxed — a CLI
    /// may die loudly — but determinism and float rules still apply.
    Bin,
}

/// Checks every governed file under `root` and aggregates a [`Report`].
///
/// # Errors
///
/// Returns [`LintError::Io`] if the tree cannot be walked or a file read.
pub fn check_workspace(root: &Path) -> Result<Report, LintError> {
    let files = walk::workspace_files(root)?;
    let mut findings = Vec::new();
    let mut allows_used = 0usize;
    let mut allows_by_rule = std::collections::BTreeMap::new();
    let files_scanned = files.len();
    for file in files {
        let source =
            std::fs::read_to_string(&file.path).map_err(|e| LintError::io(&file.path, &e))?;
        let outcome = engine::check_source(&file.rel, file.kind, &source);
        findings.extend(outcome.findings);
        allows_used += outcome.allows_used;
        for (rule, n) in outcome.allows_by_rule {
            *allows_by_rule.entry(rule).or_insert(0) += n;
        }
    }
    findings.sort();
    Ok(Report {
        findings,
        files_scanned,
        allows_used,
        allows_by_rule,
    })
}

/// Checks an explicit list of files (used by the CI planted-violation
/// smoke and ad-hoc runs). Paths are reported as given.
///
/// # Errors
///
/// Returns [`LintError::Io`] if a file cannot be read.
pub fn check_files(paths: &[String]) -> Result<Report, LintError> {
    let mut findings = Vec::new();
    let mut allows_used = 0usize;
    let mut allows_by_rule = std::collections::BTreeMap::new();
    for rel in paths {
        let path = Path::new(rel);
        let source = std::fs::read_to_string(path).map_err(|e| LintError::io(path, &e))?;
        let outcome = engine::check_source(rel, walk::classify(rel), &source);
        findings.extend(outcome.findings);
        allows_used += outcome.allows_used;
        for (rule, n) in outcome.allows_by_rule {
            *allows_by_rule.entry(rule).or_insert(0) += n;
        }
    }
    findings.sort();
    Ok(Report {
        findings,
        files_scanned: paths.len(),
        allows_used,
        allows_by_rule,
    })
}
