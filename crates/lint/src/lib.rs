//! `dpm-lint` — workspace static analysis for the DPM-CTMDP reproduction.
//!
//! The workspace's headline guarantee is that experiment artifacts are
//! *bit-identical* across worker counts and kill/resume (see
//! `crates/harness`), and that library code never takes a run down with a
//! panic. Integration tests probe those contracts; this crate makes them
//! machine-checked on every commit with a project-specific static pass:
//!
//! * [`rules::NONDETERMINISM`] — wall-clock (`Instant`/`SystemTime`),
//!   hash-iteration-order (`HashMap`/`HashSet`), OS-entropy
//!   (`thread_rng`/`from_entropy`) and environment (`env::var`) taint;
//! * [`rules::NO_PANIC`] — `unwrap()`, `expect(…)`, `panic!` and friends
//!   in library paths;
//! * [`rules::SLICE_INDEX`] — slice indexing in the harness supervisory
//!   layer (`crates/harness/src`), which must survive task panics;
//! * [`rules::FLOAT_EQ`] — `==`/`!=` against floating-point literals;
//! * [`rules::SWALLOWED_ERROR`] — `let _ =` silently dropping a value.
//!
//! On top of the lexical rules, a lightweight item parser ([`parse`])
//! feeds a workspace [symbol index](symbols) and an approximate
//! [call graph](callgraph), enabling three cross-file analyses:
//!
//! * [`rules::SEED_PROVENANCE`] ([`taint`]) — every RNG sink in library
//!   code must trace back, through `let` bindings and function
//!   parameters, to a tagged `derive_*` domain in
//!   `crates/harness/src/seed.rs`; literal and arithmetic seeds flag;
//! * [`rules::SCHEMA_REGISTRY`] ([`symbols::schema_registry`]) — every
//!   `dpm-*/vN` artifact schema id must be a single const definition,
//!   version-monotone, and documented;
//! * panic reachability ([`callgraph::panic_reachability`]) — each
//!   panic-class allow is classified hot or cold by whether its function
//!   is reachable from the `serve`/`run_plan*` roots, and reported per
//!   root in the JSON `panic_reachability` block.
//!
//! Deliberate exceptions carry an inline annotation with a mandatory
//! reason (see [`directive`]); a missing or hollow reason is itself a
//! finding, as is an annotation that suppresses nothing. Matching runs on
//! a *blanked* view of each file produced by a comment- and string-aware
//! [`lexer`], so prose and string contents can never trip a rule, and
//! `#[cfg(test)]` spans are exempt.
//!
//! The `dpm-lint` binary walks every workspace crate (excluding `vendor/`,
//! `target/`, tests, benches and examples), prints human-readable
//! findings, optionally emits a canonical-JSON report (`dpm-lint/v2`),
//! rewrites stale directives under `--fix-unused-allows`, and exits
//! nonzero under `--deny` — the CI gate (`scripts/ci.sh`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod directive;
pub mod engine;
pub mod error;
pub mod fix;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod walk;

pub use engine::check_source;
pub use error::LintError;
pub use report::{Finding, Report};

use crate::callgraph::{AllowSite, CallGraph};
use crate::engine::Analysis;
use crate::symbols::{FileUnit, SymbolIndex};
use std::path::Path;

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Library,
    /// A binary (`src/bin`, `main.rs`): panic rules are relaxed — a CLI
    /// may die loudly — but determinism and float rules still apply.
    Bin,
}

/// Runs the cross-file passes over a set of per-file analyses and
/// aggregates the final [`Report`].
///
/// `docs` is the concatenated workspace documentation (DESIGN.md +
/// EXPERIMENTS.md); `None` skips the schema-registry mention check.
fn check_units(analyses: Vec<Analysis>, docs: Option<&str>) -> Report {
    let units: Vec<FileUnit> = analyses.iter().map(|a| a.unit.clone()).collect();
    let index = SymbolIndex::build(&units);
    let graph = CallGraph::build(&units, &index);

    let mut cross_per_file: Vec<Vec<Finding>> = vec![Vec::new(); units.len()];
    for (file, finding) in taint::seed_provenance(&units, &index, &graph) {
        cross_per_file[file].push(finding);
    }
    let (schema_findings, schema_registry) = symbols::schema_registry(&units, docs);
    for (file, finding) in schema_findings {
        cross_per_file[file].push(finding);
    }

    // Every panic-class allow site gets a reachability classification,
    // whether or not it ended up used — the report answers "which of our
    // audited panics sit on a hot path", not "which allows are stale".
    let mut sites = Vec::new();
    for (file, analysis) in analyses.iter().enumerate() {
        for binding in &analysis.directives {
            let rule = if binding.directive.rule == rules::NO_PANIC {
                rules::NO_PANIC
            } else if binding.directive.rule == rules::SLICE_INDEX {
                rules::SLICE_INDEX
            } else {
                continue;
            };
            sites.push(AllowSite {
                file,
                rule,
                line: binding.target,
            });
        }
    }
    let panic_reachability = callgraph::panic_reachability(&units, &index, &graph, &sites);

    let mut findings = Vec::new();
    let mut allows_used = 0usize;
    let mut allows_by_rule = std::collections::BTreeMap::new();
    let files_scanned = units.len();
    for (analysis, cross) in analyses.into_iter().zip(cross_per_file) {
        let outcome = engine::finalize(analysis, cross);
        findings.extend(outcome.findings);
        allows_used += outcome.allows_used;
        for (rule, n) in outcome.allows_by_rule {
            *allows_by_rule.entry(rule).or_insert(0) += n;
        }
    }
    findings.sort();
    Report {
        findings,
        files_scanned,
        allows_used,
        allows_by_rule,
        schema_registry,
        panic_reachability,
    }
}

/// Reads the workspace docs the schema registry checks mentions against.
fn workspace_docs(root: &Path) -> Option<String> {
    let mut docs = String::new();
    for name in ["DESIGN.md", "EXPERIMENTS.md"] {
        if let Ok(text) = std::fs::read_to_string(root.join(name)) {
            docs.push_str(&text);
            docs.push('\n');
        }
    }
    (!docs.is_empty()).then_some(docs)
}

/// Checks every governed file under `root` and aggregates a [`Report`],
/// running the cross-file analyses (seed provenance, panic reachability,
/// schema registry) over the whole set.
///
/// # Errors
///
/// Returns [`LintError::Io`] if the tree cannot be walked or a file read.
pub fn check_workspace(root: &Path) -> Result<Report, LintError> {
    let files = walk::workspace_files(root)?;
    let mut analyses = Vec::with_capacity(files.len());
    for file in files {
        let source =
            std::fs::read_to_string(&file.path).map_err(|e| LintError::io(&file.path, &e))?;
        analyses.push(engine::analyze_source(&file.rel, file.kind, &source));
    }
    let docs = workspace_docs(root);
    Ok(check_units(analyses, docs.as_deref()))
}

/// Checks an explicit list of files (used by the CI planted-violation
/// smoke and ad-hoc runs). Paths are reported as given. The cross-file
/// analyses run over exactly the given set; the schema-registry
/// documentation check is skipped (no workspace root is known).
///
/// # Errors
///
/// Returns [`LintError::Io`] if a file cannot be read.
pub fn check_files(paths: &[String]) -> Result<Report, LintError> {
    let mut analyses = Vec::with_capacity(paths.len());
    for rel in paths {
        let path = Path::new(rel);
        let source = std::fs::read_to_string(path).map_err(|e| LintError::io(path, &e))?;
        analyses.push(engine::analyze_source(rel, walk::classify(rel), &source));
    }
    Ok(check_units(analyses, None))
}
