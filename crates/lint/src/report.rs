//! Findings and their human-readable / canonical-JSON renderings.
//!
//! The JSON form follows the workspace artifact conventions of
//! `dpm-harness` (`crates/harness/src/json.rs`): object keys sorted,
//! shortest round-trip numbers, no wall-clock fields — two runs over the
//! same tree render byte-identical reports.

use dpm_harness::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset into the blanked line).
    pub column: usize,
    /// The violated rule's name.
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    /// Builds a finding; `column` and `line` are 1-based.
    #[must_use]
    pub fn new(
        rule: &'static str,
        path: &str,
        line: usize,
        column: usize,
        message: &str,
    ) -> Finding {
        Finding {
            path: path.to_owned(),
            line,
            column,
            rule,
            message: message.to_owned(),
        }
    }
}

/// The whole run's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Every surviving finding, in (path, line, column, rule) order.
    pub findings: Vec<Finding>,
    /// Number of files checked.
    pub files_scanned: usize,
    /// Total findings suppressed by allow directives.
    pub allows_used: usize,
    /// Suppressed-finding counts keyed by rule name. Canonical (sorted)
    /// and compared across runs by `dpm-lint --baseline` to catch allow
    /// drift: a rule whose count creeps up is accumulating exemptions.
    pub allows_by_rule: BTreeMap<&'static str, usize>,
}

impl Report {
    /// Renders the human-readable form: one line per finding, then a
    /// summary line.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.path, f.line, f.column, f.rule, f.message
            );
        }
        let _ = writeln!(
            out,
            "dpm-lint: {} finding(s) in {} file(s) scanned ({} allow(s) used)",
            self.findings.len(),
            self.files_scanned,
            self.allows_used
        );
        out
    }

    /// Renders the canonical JSON form.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut counts: BTreeMap<&str, i64> = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        let mut counts_json = Json::object();
        for (rule, n) in counts {
            counts_json.set(rule, n);
        }
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let mut o = Json::object();
                o.set("column", f.column);
                o.set("line", f.line);
                o.set("message", f.message.as_str());
                o.set("path", f.path.as_str());
                o.set("rule", f.rule);
                o
            })
            .collect();
        let mut allows_json = Json::object();
        for (rule, n) in &self.allows_by_rule {
            allows_json.set(rule, *n);
        }
        let mut doc = Json::object();
        doc.set("allows_by_rule", allows_json);
        doc.set("allows_used", self.allows_used);
        doc.set("counts_by_rule", counts_json);
        doc.set("files_scanned", self.files_scanned);
        doc.set("findings", findings);
        doc.set("schema", "dpm-lint/v1");
        doc.render()
    }
}
