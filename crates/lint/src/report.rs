//! Findings and their human-readable / canonical-JSON renderings.
//!
//! The JSON form follows the workspace artifact conventions of
//! `dpm-harness` (`crates/harness/src/json.rs`): object keys sorted,
//! shortest round-trip numbers, no wall-clock fields — two runs over the
//! same tree render byte-identical reports.

use dpm_harness::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The report's own artifact schema id. Bumped to v2 when the cross-file
/// pass added `panic_reachability`, `schema_registry` and zero-filled
/// `counts_by_rule` blocks (consumers keying on absent counts must adapt).
pub const REPORT_SCHEMA: &str = "dpm-lint/v2";

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset into the blanked line).
    pub column: usize,
    /// The violated rule's name.
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    /// Builds a finding; `column` and `line` are 1-based.
    #[must_use]
    pub fn new(
        rule: &'static str,
        path: &str,
        line: usize,
        column: usize,
        message: &str,
    ) -> Finding {
        Finding {
            path: path.to_owned(),
            line,
            column,
            rule,
            message: message.to_owned(),
        }
    }
}

/// One workspace schema id at its defining site, as collected by the
/// `schema_registry` cross-file analysis.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SchemaEntry {
    /// The id without its version suffix (e.g. `dpm-serve-outcome`).
    pub base: String,
    /// The highest version seen workspace-wide.
    pub version: u64,
    /// Workspace-relative path of the canonical (const) definition.
    pub path: String,
    /// 1-based line of the definition.
    pub line: usize,
}

/// One `no_panic`/`slice_index` allow site classified by the call-graph
/// reachability pass: which serving/plan entry points can reach the
/// function holding the allow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PanicSite {
    /// Workspace-relative path of the allow directive.
    pub path: String,
    /// 1-based line the allow binds to.
    pub line: usize,
    /// The allowed rule (`no_panic` or `slice_index`).
    pub rule: &'static str,
    /// Qualified name of the enclosing function (empty at file scope).
    pub function: String,
    /// Sorted qualified names of hot-path roots (`serve`, `run_plan*`)
    /// whose call-graph closure reaches [`PanicSite::function`]. Empty
    /// means the allow is cold: unreachable from any serving or plan
    /// entry point under the (over-approximate) name-matched graph.
    pub reachable_from: Vec<String>,
}

/// The whole run's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Every surviving finding, in (path, line, column, rule) order.
    pub findings: Vec<Finding>,
    /// Number of files checked.
    pub files_scanned: usize,
    /// Total findings suppressed by allow directives.
    pub allows_used: usize,
    /// Suppressed-finding counts keyed by rule name. Canonical (sorted)
    /// and compared across runs by `dpm-lint --baseline` to catch allow
    /// drift: a rule whose count creeps up is accumulating exemptions.
    pub allows_by_rule: BTreeMap<&'static str, usize>,
    /// Every workspace schema id (cross-file runs; empty for single-file
    /// checks). Compared against the baseline for version monotonicity.
    pub schema_registry: Vec<SchemaEntry>,
    /// Every panic-class allow site with its hot-path classification
    /// (cross-file runs; empty for single-file checks).
    pub panic_reachability: Vec<PanicSite>,
}

impl Report {
    /// Renders the human-readable form: one line per finding, then a
    /// summary line (with a hot-allow tally when the reachability pass
    /// ran).
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.path, f.line, f.column, f.rule, f.message
            );
        }
        let _ = writeln!(
            out,
            "dpm-lint: {} finding(s) in {} file(s) scanned ({} allow(s) used)",
            self.findings.len(),
            self.files_scanned,
            self.allows_used
        );
        if !self.panic_reachability.is_empty() {
            let hot = self
                .panic_reachability
                .iter()
                .filter(|s| !s.reachable_from.is_empty())
                .count();
            let _ = writeln!(
                out,
                "dpm-lint: {hot} of {} panic-class allow(s) reachable from serve/run_plan roots",
                self.panic_reachability.len()
            );
        }
        out
    }

    /// Renders the canonical JSON form.
    ///
    /// `counts_by_rule` is zero-filled over every known rule, so a clean
    /// run serializes explicit zeros and `--baseline` can detect findings
    /// drift (a rule going 0 → N) rather than only allow drift.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut counts: BTreeMap<&str, i64> = BTreeMap::new();
        for rule in crate::rules::all_rules() {
            counts.insert(rule, 0);
        }
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        let mut counts_json = Json::object();
        for (rule, n) in counts {
            counts_json.set(rule, n);
        }
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let mut o = Json::object();
                o.set("column", f.column);
                o.set("line", f.line);
                o.set("message", f.message.as_str());
                o.set("path", f.path.as_str());
                o.set("rule", f.rule);
                o
            })
            .collect();
        let mut allows_json = Json::object();
        for (rule, n) in &self.allows_by_rule {
            allows_json.set(rule, *n);
        }
        let registry: Vec<Json> = self
            .schema_registry
            .iter()
            .map(|e| {
                let mut o = Json::object();
                o.set("base", e.base.as_str());
                o.set("line", e.line);
                o.set("path", e.path.as_str());
                o.set("version", e.version);
                o
            })
            .collect();
        let reachability: Vec<Json> = self
            .panic_reachability
            .iter()
            .map(|s| {
                let mut o = Json::object();
                o.set("function", s.function.as_str());
                o.set("line", s.line);
                o.set("path", s.path.as_str());
                o.set(
                    "reachable_from",
                    s.reachable_from
                        .iter()
                        .map(|r| Json::from(r.as_str()))
                        .collect::<Vec<Json>>(),
                );
                o.set("rule", s.rule);
                o
            })
            .collect();
        let mut doc = Json::object();
        doc.set("allows_by_rule", allows_json);
        doc.set("allows_used", self.allows_used);
        doc.set("counts_by_rule", counts_json);
        doc.set("files_scanned", self.files_scanned);
        doc.set("findings", findings);
        doc.set("panic_reachability", reachability);
        doc.set("schema", REPORT_SCHEMA);
        doc.set("schema_registry", registry);
        doc.render()
    }
}
