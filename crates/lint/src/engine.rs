//! Orchestration: lex a file, run the rules, apply allow directives.

use crate::directive::{self, Directive, ParseOutcome, Scope};
use crate::lexer::LexedFile;
use crate::report::Finding;
use crate::rules::{self, INVALID_ALLOW, UNUSED_ALLOW};
use crate::FileKind;
use std::collections::BTreeMap;

/// The outcome of checking one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileOutcome {
    /// Findings that survived suppression, plus directive-hygiene findings.
    pub findings: Vec<Finding>,
    /// How many findings were suppressed by allow directives.
    pub allows_used: usize,
    /// Suppressed-finding counts keyed by rule name — the drift signal
    /// `dpm-lint --baseline` compares across runs.
    pub allows_by_rule: BTreeMap<&'static str, usize>,
}

/// Checks one file's source text against every applicable rule.
#[must_use]
pub fn check_source(rel_path: &str, kind: FileKind, source: &str) -> FileOutcome {
    let lexed = LexedFile::lex(source);
    let mut findings = Vec::new();

    // Directives live in *plain* line comments only: doc comments (`///`,
    // `//!`) are rendered documentation, where the grammar appears in
    // examples without being an annotation.
    let mut directives: Vec<(Directive, usize, bool)> = Vec::new(); // (directive, target_line, used)
    for comment in &lexed.comments {
        if comment.text.starts_with('/') || comment.text.starts_with('!') {
            continue;
        }
        if lexed.in_test(comment.line) {
            continue;
        }
        match directive::parse(&comment.text, comment.line, comment.after_code) {
            ParseOutcome::NotADirective => {}
            ParseOutcome::Malformed(why) => {
                findings.push(Finding::new(
                    INVALID_ALLOW,
                    rel_path,
                    comment.line,
                    1,
                    &format!("malformed dpm-lint directive: {why}"),
                ));
            }
            ParseOutcome::Parsed(dir) => {
                if !rules::is_allowable_rule(&dir.rule) {
                    findings.push(Finding::new(
                        INVALID_ALLOW,
                        rel_path,
                        comment.line,
                        1,
                        &format!("`{}` is not an allowable rule", dir.rule),
                    ));
                    continue;
                }
                let target = if dir.scope == Scope::File {
                    0 // whole file; line is irrelevant
                } else if dir.after_code {
                    dir.comment_line
                } else {
                    lexed.next_code_line(dir.comment_line + 1).unwrap_or(0)
                };
                directives.push((dir, target, false));
            }
        }
    }

    let mut allows_used = 0usize;
    let mut allows_by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for finding in rules::raw_findings(&lexed, kind, rel_path) {
        let mut suppressed = false;
        for (dir, target, used) in &mut directives {
            if dir.rule != finding.rule {
                continue;
            }
            if dir.scope == Scope::File || *target == finding.line {
                *used = true;
                suppressed = true;
                break;
            }
        }
        if suppressed {
            allows_used += 1;
            *allows_by_rule.entry(finding.rule).or_insert(0) += 1;
        } else {
            findings.push(finding);
        }
    }

    for (dir, _, used) in &directives {
        if !used {
            findings.push(Finding::new(
                UNUSED_ALLOW,
                rel_path,
                dir.comment_line,
                1,
                &format!(
                    "allow({}) suppresses nothing here; remove it or fix its placement",
                    dir.rule
                ),
            ));
        }
    }

    findings.sort();
    FileOutcome {
        findings,
        allows_used,
        allows_by_rule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REL: &str = "crates/core/src/a.rs";

    fn rules_of(outcome: &FileOutcome) -> Vec<&'static str> {
        outcome.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src = "use std::time::Instant; // dpm-lint: allow(nondeterminism, reason = \"timer namespace\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn standalone_allow_binds_the_next_code_line() {
        let src = "// dpm-lint: allow(no_panic, reason = \"invariant documented\")\n\nlet v = maybe.unwrap();\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn an_allow_does_not_leak_past_its_line() {
        let src = "let a = first.unwrap(); // dpm-lint: allow(no_panic, reason = \"seeded above\")\nlet b = second.unwrap();\n";
        let out = check_source(REL, FileKind::Library, src);
        assert_eq!(rules_of(&out), vec![rules::NO_PANIC]);
        assert_eq!(out.findings[0].line, 2);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn an_allow_only_covers_its_named_rule() {
        let src = "let t = Instant::now(); // dpm-lint: allow(no_panic, reason = \"wrong rule\")\n";
        let out = check_source(REL, FileKind::Library, src);
        let rules = rules_of(&out);
        assert!(rules.contains(&rules::NONDETERMINISM), "{rules:?}");
        assert!(rules.contains(&rules::UNUSED_ALLOW), "{rules:?}");
    }

    #[test]
    fn allow_file_suppresses_every_match_of_the_rule() {
        let src = "// dpm-lint: allow-file(float_eq, reason = \"exact sentinel comparisons\")\nlet a = x == 1.0;\nlet b = y != 0.5;\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 2);
        assert_eq!(out.allows_by_rule.get(rules::FLOAT_EQ), Some(&2));
    }

    #[test]
    fn allows_are_counted_per_rule() {
        let src = "let t = Instant::now(); // dpm-lint: allow(nondeterminism, reason = \"timer\")\nlet v = x.unwrap(); // dpm-lint: allow(no_panic, reason = \"checked above\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 2);
        assert_eq!(out.allows_by_rule.get(rules::NONDETERMINISM), Some(&1));
        assert_eq!(out.allows_by_rule.get(rules::NO_PANIC), Some(&1));
        assert_eq!(out.allows_by_rule.len(), 2);
    }

    #[test]
    fn unused_allows_are_flagged() {
        let src = "fn quiet() {}\n// dpm-lint: allow(no_panic, reason = \"nothing here panics\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert_eq!(rules_of(&out), vec![rules::UNUSED_ALLOW]);
        assert_eq!(out.allows_used, 0);
    }

    #[test]
    fn malformed_and_unknown_rule_directives_are_findings() {
        let src =
            "// dpm-lint: allow(no_panic)\n// dpm-lint: allow(made_up, reason = \"not a rule\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert_eq!(
            rules_of(&out),
            vec![rules::INVALID_ALLOW, rules::INVALID_ALLOW]
        );
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// The grammar is `dpm-lint: allow(no_panic, reason = \"…\")`.\nfn documented() {}\n//! dpm-lint: allow(float_eq, reason = \"inner doc\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn directives_inside_test_modules_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    // dpm-lint: allow(no_panic)\n    fn t() {}\n}\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn findings_come_back_sorted() {
        let src = "let b = y.unwrap();\nlet a = Instant::now();\n";
        let out = check_source(REL, FileKind::Library, src);
        let lines: Vec<usize> = out.findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 2]);
    }
}
