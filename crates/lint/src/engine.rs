//! Orchestration: lex and parse a file, run the rules, apply allow
//! directives.
//!
//! Checking is a two-phase protocol so cross-file analyses can join in:
//! [`analyze_source`] produces a per-file [`Analysis`] (lexed/parsed unit,
//! bound directives, raw lexical findings); the caller may then run the
//! workspace passes (seed provenance, schema registry) over all units and
//! hand each file its share of cross-file findings; [`finalize`] merges
//! both streams through the file's allow directives, so a
//! `// dpm-lint: allow(seed_provenance, …)` suppresses a taint finding
//! exactly like a lexical one — and an allow that suppresses neither is
//! still flagged `unused_allow`.

use crate::callgraph::CallGraph;
use crate::directive::{self, Directive, ParseOutcome, Scope};
use crate::report::Finding;
use crate::rules::{self, INVALID_ALLOW, UNUSED_ALLOW};
use crate::symbols::{self, FileUnit, SymbolIndex};
use crate::taint;
use crate::FileKind;
use std::collections::BTreeMap;

/// The outcome of checking one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileOutcome {
    /// Findings that survived suppression, plus directive-hygiene findings.
    pub findings: Vec<Finding>,
    /// How many findings were suppressed by allow directives.
    pub allows_used: usize,
    /// Suppressed-finding counts keyed by rule name — the drift signal
    /// `dpm-lint --baseline` compares across runs.
    pub allows_by_rule: BTreeMap<&'static str, usize>,
}

/// One allow directive bound to its target line.
#[derive(Debug, Clone)]
pub struct DirectiveBinding {
    /// The parsed directive.
    pub directive: Directive,
    /// The 1-based line it suppresses (0 for file scope).
    pub target: usize,
    /// Whether it suppressed at least one finding.
    pub used: bool,
}

/// Phase-one result for one file: everything the cross-file passes and
/// [`finalize`] need.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The lexed and parsed file.
    pub unit: FileUnit,
    /// Every well-formed allow directive, bound to its target.
    pub directives: Vec<DirectiveBinding>,
    /// Directive-hygiene findings (malformed/unknown-rule) — never
    /// suppressible.
    pub hygiene: Vec<Finding>,
    /// Raw single-file rule findings, not yet run through the directives.
    pub raw: Vec<Finding>,
}

/// Phase one: lexes and parses one file, binds its directives, and runs
/// the single-file lexical rules.
#[must_use]
pub fn analyze_source(rel_path: &str, kind: FileKind, source: &str) -> Analysis {
    let unit = FileUnit::build(rel_path, kind, source);
    let mut hygiene = Vec::new();

    // Directives live in *plain* line comments only: doc comments (`///`,
    // `//!`) are rendered documentation, where the grammar appears in
    // examples without being an annotation.
    let mut directives: Vec<DirectiveBinding> = Vec::new();
    for comment in &unit.lexed.comments {
        if comment.text.starts_with('/') || comment.text.starts_with('!') {
            continue;
        }
        if unit.lexed.in_test(comment.line) {
            continue;
        }
        match directive::parse(&comment.text, comment.line, comment.after_code) {
            ParseOutcome::NotADirective => {}
            ParseOutcome::Malformed(why) => {
                hygiene.push(Finding::new(
                    INVALID_ALLOW,
                    rel_path,
                    comment.line,
                    1,
                    &format!("malformed dpm-lint directive: {why}"),
                ));
            }
            ParseOutcome::Parsed(dir) => {
                if !rules::is_allowable_rule(&dir.rule) {
                    hygiene.push(Finding::new(
                        INVALID_ALLOW,
                        rel_path,
                        comment.line,
                        1,
                        &format!("`{}` is not an allowable rule", dir.rule),
                    ));
                    continue;
                }
                let target = if dir.scope == Scope::File {
                    0 // whole file; line is irrelevant
                } else if dir.after_code {
                    dir.comment_line
                } else {
                    unit.lexed.next_code_line(dir.comment_line + 1).unwrap_or(0)
                };
                directives.push(DirectiveBinding {
                    directive: dir,
                    target,
                    used: false,
                });
            }
        }
    }

    let raw = rules::raw_findings(&unit.lexed, kind, rel_path);
    Analysis {
        unit,
        directives,
        hygiene,
        raw,
    }
}

/// Phase two: merges the raw lexical findings with `cross` (this file's
/// cross-file findings) through the allow directives.
#[must_use]
pub fn finalize(mut analysis: Analysis, cross: Vec<Finding>) -> FileOutcome {
    let mut findings = analysis.hygiene;
    let mut allows_used = 0usize;
    let mut allows_by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut candidates = analysis.raw;
    candidates.extend(cross);
    for finding in candidates {
        let mut suppressed = false;
        for binding in &mut analysis.directives {
            if binding.directive.rule != finding.rule {
                continue;
            }
            if binding.directive.scope == Scope::File || binding.target == finding.line {
                binding.used = true;
                suppressed = true;
                break;
            }
        }
        if suppressed {
            allows_used += 1;
            *allows_by_rule.entry(finding.rule).or_insert(0) += 1;
        } else {
            findings.push(finding);
        }
    }

    for binding in &analysis.directives {
        if !binding.used {
            findings.push(Finding::new(
                UNUSED_ALLOW,
                &analysis.unit.rel,
                binding.directive.comment_line,
                1,
                &format!(
                    "allow({}) suppresses nothing here; remove it or fix its placement",
                    binding.directive.rule
                ),
            ));
        }
    }

    findings.sort();
    FileOutcome {
        findings,
        allows_used,
        allows_by_rule,
    }
}

/// This file's share of the cross-file findings, computed over a unit set
/// that happens to contain only it. `docs` gates the schema-registry
/// documentation-mention check.
fn single_file_cross(unit: &FileUnit, docs: Option<&str>) -> Vec<Finding> {
    let units = std::slice::from_ref(unit);
    let index = SymbolIndex::build(units);
    let graph = CallGraph::build(units, &index);
    let mut cross: Vec<Finding> = taint::seed_provenance(units, &index, &graph)
        .into_iter()
        .map(|(_, f)| f)
        .collect();
    let (schema_findings, _) = symbols::schema_registry(units, docs);
    cross.extend(schema_findings.into_iter().map(|(_, f)| f));
    cross
}

/// Checks one file's source text against every applicable rule, including
/// the cross-file rules evaluated over this file alone (the schema
/// registry's documentation check is skipped — there is no workspace).
#[must_use]
pub fn check_source(rel_path: &str, kind: FileKind, source: &str) -> FileOutcome {
    let analysis = analyze_source(rel_path, kind, source);
    let cross = single_file_cross(&analysis.unit, None);
    finalize(analysis, cross)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REL: &str = "crates/core/src/a.rs";

    fn rules_of(outcome: &FileOutcome) -> Vec<&'static str> {
        outcome.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src = "use std::time::Instant; // dpm-lint: allow(nondeterminism, reason = \"timer namespace\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn standalone_allow_binds_the_next_code_line() {
        let src = "// dpm-lint: allow(no_panic, reason = \"invariant documented\")\n\nlet v = maybe.unwrap();\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn an_allow_does_not_leak_past_its_line() {
        let src = "let a = first.unwrap(); // dpm-lint: allow(no_panic, reason = \"seeded above\")\nlet b = second.unwrap();\n";
        let out = check_source(REL, FileKind::Library, src);
        assert_eq!(rules_of(&out), vec![rules::NO_PANIC]);
        assert_eq!(out.findings[0].line, 2);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn an_allow_only_covers_its_named_rule() {
        let src = "let t = Instant::now(); // dpm-lint: allow(no_panic, reason = \"wrong rule\")\n";
        let out = check_source(REL, FileKind::Library, src);
        let rules = rules_of(&out);
        assert!(rules.contains(&rules::NONDETERMINISM), "{rules:?}");
        assert!(rules.contains(&rules::UNUSED_ALLOW), "{rules:?}");
    }

    #[test]
    fn allow_file_suppresses_every_match_of_the_rule() {
        let src = "// dpm-lint: allow-file(float_eq, reason = \"exact sentinel comparisons\")\nlet a = x == 1.0;\nlet b = y != 0.5;\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 2);
        assert_eq!(out.allows_by_rule.get(rules::FLOAT_EQ), Some(&2));
    }

    #[test]
    fn allows_are_counted_per_rule() {
        let src = "let t = Instant::now(); // dpm-lint: allow(nondeterminism, reason = \"timer\")\nlet v = x.unwrap(); // dpm-lint: allow(no_panic, reason = \"checked above\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allows_used, 2);
        assert_eq!(out.allows_by_rule.get(rules::NONDETERMINISM), Some(&1));
        assert_eq!(out.allows_by_rule.get(rules::NO_PANIC), Some(&1));
        assert_eq!(out.allows_by_rule.len(), 2);
    }

    #[test]
    fn unused_allows_are_flagged() {
        let src = "fn quiet() {}\n// dpm-lint: allow(no_panic, reason = \"nothing here panics\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert_eq!(rules_of(&out), vec![rules::UNUSED_ALLOW]);
        assert_eq!(out.allows_used, 0);
    }

    #[test]
    fn malformed_and_unknown_rule_directives_are_findings() {
        let src =
            "// dpm-lint: allow(no_panic)\n// dpm-lint: allow(made_up, reason = \"not a rule\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert_eq!(
            rules_of(&out),
            vec![rules::INVALID_ALLOW, rules::INVALID_ALLOW]
        );
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// The grammar is `dpm-lint: allow(no_panic, reason = \"…\")`.\nfn documented() {}\n//! dpm-lint: allow(float_eq, reason = \"inner doc\")\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn directives_inside_test_modules_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    // dpm-lint: allow(no_panic)\n    fn t() {}\n}\n";
        let out = check_source(REL, FileKind::Library, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn findings_come_back_sorted() {
        let src = "let b = y.unwrap();\nlet a = Instant::now();\n";
        let out = check_source(REL, FileKind::Library, src);
        let lines: Vec<usize> = out.findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 2]);
    }
}
