//! Seed-provenance taint: RNG sinks must draw from tagged derivation
//! domains.
//!
//! Every determinism guarantee in this workspace reduces to one rule: all
//! randomness flows from `crates/harness/src/seed.rs`, whose `derive_*`
//! functions key ChaCha8 streams with domain-separated tags. A stray
//! `seed_from_u64(42)` — or `seed_from_u64(root ^ index)` — in a library
//! path silently re-couples streams that the tags keep independent.
//!
//! The analysis is intraprocedural with one interprocedural step: at each
//! RNG sink (`from_seed`, `seed_from_u64`, `SimConfig::new`) the seed
//! argument is classified by walking `let` bindings inside the enclosing
//! function; a seed that is a bare function parameter becomes a *carrier*,
//! and the classification recurses into every library call site of that
//! function (through further carriers, cycle-guarded). Unknown shapes
//! classify as clean — the rule is built to never false-positive, at the
//! cost of missing seeds laundered through fields or collections.

use crate::callgraph::CallGraph;
use crate::report::Finding;
use crate::rules::SEED_PROVENANCE;
use crate::symbols::{FileUnit, SymbolIndex};
use crate::FileKind;
use std::collections::BTreeSet;

/// Seed expressions blessed as provenance roots: the tagged derivation
/// domains of `crates/harness/src/seed.rs`.
const APPROVED_SOURCES: &[&str] = &[
    "derive_seed",
    "derive_attempt_seed",
    "derive_serve_seed",
    "derive_serve_attempt_seed",
];

/// Sink callee names whose first argument is an RNG seed.
const SINKS: &[&str] = &["from_seed", "seed_from_u64"];

/// How a seed expression classifies.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Seed {
    /// Approved derivation, seed-named path, or unknown (conservative).
    Clean,
    /// A literal or arithmetic expression; the string names which.
    Dirty(&'static str),
    /// A bare parameter of the enclosing function (0-based position).
    Carrier(usize),
}

/// Splits a call's arguments at top-level commas. `args_at` points just
/// past the opening `(`. Returns `None` on an unbalanced tail.
fn split_args(text: &str, args_at: usize) -> Option<Vec<String>> {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut start = args_at;
    let mut i = args_at;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' if depth > 0 => depth -= 1,
            b')' => {
                args.push(text[start..i].trim().to_owned());
                if args == [String::new()] {
                    args.clear();
                }
                return Some(args);
            }
            b',' if depth == 0 => {
                args.push(text[start..i].trim().to_owned());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether `expr` is an integer or array literal.
fn is_literal(expr: &str) -> bool {
    if expr.starts_with('[') {
        return true;
    }
    let digits = expr
        .strip_prefix("0x")
        .or_else(|| expr.strip_prefix("0b"))
        .unwrap_or(expr);
    !digits.is_empty()
        && digits
            .chars()
            .all(|c| c.is_ascii_hexdigit() || c == '_' || c == 'u' || c == 'i' || c == '.')
        && digits.starts_with(|c: char| c.is_ascii_digit())
}

/// Whether `expr` contains a top-level arithmetic operator.
fn has_top_level_arithmetic(expr: &str) -> bool {
    let bytes = expr.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'+' | b'*' | b'/' | b'%' | b'^' if depth == 0 && i > 0 => return true,
            b'-' if depth == 0
                && i > 0
                && bytes[i - 1] != b'-'
                && bytes.get(i + 1) != Some(&b'>') =>
            {
                return true;
            }
            b'<' | b'>'
                if depth == 0
                    && i > 0
                    && bytes[i - 1] == b
                    && bytes.get(i.wrapping_sub(2)) != Some(&b) =>
            {
                return true; // << or >> shifts
            }
            _ => {}
        }
    }
    false
}

/// The head callee name of `expr` when it is a single call `path(…)`.
fn head_call(expr: &str) -> Option<&str> {
    let open = expr.find('(')?;
    if !expr.ends_with(')') {
        return None;
    }
    let path = expr[..open].trim_end();
    let seg = path.rsplit("::").next().unwrap_or(path);
    let ok = !seg.is_empty() && seg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    ok.then_some(seg)
}

/// Whether a path/field expression ends in a seed-named segment
/// (`cfg.seed`, `self.config.seed`, `task.seed()`, `attempt_seed`).
fn ends_in_seed_name(expr: &str) -> bool {
    let last = expr.rsplit('.').next().unwrap_or(expr);
    let last = last.strip_suffix("()").unwrap_or(last).trim();
    (last == "seed" || last.ends_with("_seed"))
        && last.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Whether `expr` is one bare identifier.
fn bare_ident(expr: &str) -> bool {
    !expr.is_empty()
        && expr.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
        && expr.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Finds `let [mut] name = <rhs>;` inside the function body and returns
/// the right-hand side.
fn let_binding<'t>(body: &'t str, name: &str) -> Option<&'t str> {
    for (at, _) in body.match_indices("let ") {
        if at > 0 && body.as_bytes()[at - 1].is_ascii_alphanumeric() {
            continue;
        }
        let rest = body[at + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let Some(tail) = rest.strip_prefix(name) else {
            continue;
        };
        let tail = tail.trim_start();
        let Some(rhs) = tail.strip_prefix('=') else {
            continue;
        };
        if rhs.starts_with('=') {
            continue; // `==` comparison, not a binding
        }
        let end = rhs.find(';').unwrap_or(rhs.len());
        return Some(rhs[..end].trim());
    }
    None
}

/// Classifies one seed expression in the context of function `fn_idx`.
fn classify(
    expr: &str,
    fn_idx: usize,
    units: &[FileUnit],
    index: &SymbolIndex,
    depth: usize,
) -> Seed {
    if depth > 4 {
        return Seed::Clean;
    }
    let expr = expr.trim();
    let expr = expr.split(" as ").next().unwrap_or(expr).trim();
    if expr.is_empty() {
        return Seed::Clean;
    }
    if let Some(head) = head_call(expr) {
        if APPROVED_SOURCES.contains(&head) {
            return Seed::Clean;
        }
    }
    if is_literal(expr) {
        return Seed::Dirty("a literal expression");
    }
    if has_top_level_arithmetic(expr) {
        return Seed::Dirty("an arithmetic expression");
    }
    if bare_ident(expr) {
        let f = &index.fns[fn_idx];
        if let Some(pos) = f.params.iter().position(|p| p == expr) {
            return Seed::Carrier(pos);
        }
        if let Some((start, end)) = f.body {
            let body = &units[f.file].text.text[start..end];
            if let Some(rhs) = let_binding(body, expr) {
                return classify(rhs, fn_idx, units, index, depth + 1);
            }
        }
    }
    if ends_in_seed_name(expr) {
        return Seed::Clean;
    }
    Seed::Clean
}

/// A sink whose seed argument is a parameter: chases every library caller
/// of the enclosing function and returns the first dirty feed, as
/// `(caller_fn, call_line, why)`.
fn chase_carrier(
    fn_idx: usize,
    pos: usize,
    units: &[FileUnit],
    index: &SymbolIndex,
    graph: &CallGraph,
    visited: &mut BTreeSet<(usize, usize)>,
) -> Option<(usize, usize, &'static str)> {
    if !visited.insert((fn_idx, pos)) {
        return None;
    }
    let arity = index.fns[fn_idx].params.len();
    let callee_name = index.fns[fn_idx].name.as_str();
    for (caller, edges) in graph.callees.iter().enumerate() {
        if !edges.contains(&fn_idx) || units[index.fns[caller].file].kind != FileKind::Library {
            continue;
        }
        for site in &graph.sites[caller] {
            if site.name != callee_name {
                continue;
            }
            let text = &units[index.fns[caller].file].text;
            let Some(args) = split_args(&text.text, site.args_at) else {
                continue;
            };
            if args.len() != arity {
                continue; // different arity: a same-named function elsewhere
            }
            match classify(&args[pos], caller, units, index, 0) {
                Seed::Dirty(why) => {
                    return Some((caller, text.line_of(site.at), why));
                }
                Seed::Carrier(next_pos) => {
                    if let Some(hit) = chase_carrier(caller, next_pos, units, index, graph, visited)
                    {
                        return Some(hit);
                    }
                }
                Seed::Clean => {}
            }
        }
    }
    None
}

/// Runs the seed-provenance analysis over every library function,
/// returning `(file_index, finding)` pairs for the engine to route
/// through that file's allow directives.
#[must_use]
pub fn seed_provenance(
    units: &[FileUnit],
    index: &SymbolIndex,
    graph: &CallGraph,
) -> Vec<(usize, Finding)> {
    let mut findings = Vec::new();
    for (fn_idx, f) in index.fns.iter().enumerate() {
        if units[f.file].kind != FileKind::Library {
            continue;
        }
        for site in &graph.sites[fn_idx] {
            let is_sim_config =
                site.name == "new" && units[f.file].text.text[..site.at].ends_with("SimConfig::");
            if !SINKS.contains(&site.name.as_str()) && !is_sim_config {
                continue;
            }
            let text = &units[f.file].text;
            let Some(args) = split_args(&text.text, site.args_at) else {
                continue;
            };
            let Some(seed_arg) = args.first() else {
                continue;
            };
            let line = text.line_of(site.at);
            let sink = if is_sim_config {
                "SimConfig::new"
            } else {
                &site.name
            };
            match classify(seed_arg, fn_idx, units, index, 0) {
                Seed::Dirty(why) => findings.push((
                    f.file,
                    Finding::new(
                        SEED_PROVENANCE,
                        &units[f.file].rel,
                        line,
                        1,
                        &format!(
                            "seed fed to `{sink}` is {why}; library RNG \
                             streams must come from a tagged derivation domain in \
                             crates/harness/src/seed.rs (derive_seed, derive_serve_seed, …)"
                        ),
                    ),
                )),
                Seed::Carrier(pos) => {
                    let mut visited = BTreeSet::new();
                    if let Some((caller, call_line, why)) =
                        chase_carrier(fn_idx, pos, units, index, graph, &mut visited)
                    {
                        let caller_fn = &index.fns[caller];
                        findings.push((
                            f.file,
                            Finding::new(
                                SEED_PROVENANCE,
                                &units[f.file].rel,
                                line,
                                1,
                                &format!(
                                    "seed fed to `{sink}` arrives through parameter \
                                     `{}` of `{}`, which `{}` feeds a {why} expression \
                                     at {}:{call_line}; derive it from a tagged domain \
                                     in crates/harness/src/seed.rs instead",
                                    f.params.get(pos).map_or("_", String::as_str),
                                    f.qual,
                                    caller_fn.qual,
                                    units[caller_fn.file].rel,
                                ),
                            ),
                        ));
                    }
                }
                Seed::Clean => {}
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(files: &[(&str, &str)]) -> Vec<(usize, Finding)> {
        let units: Vec<FileUnit> = files
            .iter()
            .map(|(rel, src)| FileUnit::build(rel, crate::walk::classify(rel), src))
            .collect();
        let index = SymbolIndex::build(&units);
        let graph = CallGraph::build(&units, &index);
        seed_provenance(&units, &index, &graph)
    }

    #[test]
    fn literal_and_arithmetic_seeds_are_dirty() {
        let findings = run(&[(
            "crates/a/src/lib.rs",
            "fn bad() {\n    let rng = ChaCha8Rng::seed_from_u64(42);\n}\n\
             fn worse(root: u64, i: u64) {\n    let rng = ChaCha8Rng::seed_from_u64(root ^ i);\n}\n",
        )]);
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings[0].1.message.contains("literal"));
        assert_eq!(findings[0].1.line, 2);
        assert!(findings[1].1.message.contains("arithmetic"));
    }

    #[test]
    fn derive_calls_and_seed_named_paths_are_clean() {
        let findings = run(&[(
            "crates/a/src/lib.rs",
            "fn good(root: u64, point: u64, rep: u64) {\n\
             \x20   let rng = ChaCha8Rng::seed_from_u64(derive_seed(root, point, rep));\n\
             \x20   let rng = ChaCha8Rng::seed_from_u64(self.config.seed);\n\
             \x20   let sim = SimConfig::new(seed::derive_serve_seed(root, point));\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn let_bindings_are_traced_inside_the_function() {
        let findings = run(&[(
            "crates/a/src/lib.rs",
            "fn traced() {\n    let chosen = 7;\n    let rng = ChaCha8Rng::seed_from_u64(chosen);\n}\n\
             fn fine(root: u64) {\n    let s = derive_serve_seed(root, 0);\n    let rng = ChaCha8Rng::seed_from_u64(s);\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].1.line, 3);
    }

    #[test]
    fn dirty_seeds_propagate_through_library_callers() {
        let findings = run(&[
            (
                "crates/a/src/lib.rs",
                "pub fn simulate(seed: u64) {\n    let rng = ChaCha8Rng::seed_from_u64(seed);\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn driver() {\n    simulate(1234);\n}\n",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].0, 0, "reported at the sink file");
        assert!(findings[0].1.message.contains("crates/b/src/lib.rs:2"));
    }

    #[test]
    fn clean_callers_and_bin_callers_do_not_flag_carriers() {
        let findings = run(&[
            (
                "crates/a/src/lib.rs",
                "pub fn simulate(seed: u64) {\n    let rng = ChaCha8Rng::seed_from_u64(seed);\n}\n\
                 pub fn relay(seed: u64) {\n    simulate(seed);\n}\n\
                 pub fn clean_driver(root: u64) {\n    relay(derive_seed(root, 0, 0));\n}\n",
            ),
            (
                "crates/a/src/bin/tool.rs",
                "fn main() {\n    simulate(99);\n}\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn sinks_in_bin_files_are_exempt() {
        let findings = run(&[(
            "crates/a/src/bin/tool.rs",
            "fn main() {\n    let rng = ChaCha8Rng::seed_from_u64(5);\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn from_seed_array_literals_are_dirty() {
        let findings = run(&[(
            "crates/a/src/lib.rs",
            "fn key() {\n    let rng = ChaCha8Rng::from_seed([0u8; 32]);\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].1.message.contains("literal"));
    }

    #[test]
    fn carrier_cycles_terminate() {
        let findings = run(&[(
            "crates/a/src/lib.rs",
            "pub fn ping(seed: u64) {\n    let rng = ChaCha8Rng::seed_from_u64(seed);\n    pong(seed);\n}\n\
             pub fn pong(seed: u64) {\n    ping(seed);\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
