//! An item-level parser over blanked source.
//!
//! The cross-file analyses (seed provenance, panic reachability, the schema
//! registry) need to know *which function* a line belongs to, what its
//! parameters are called, and where its body starts and ends. A full Rust
//! parser is out of scope for a dependency-free linter; instead this module
//! runs a single linear scan over the [`crate::lexer`]'s blanked text —
//! strings and comments already erased, so brace counting is reliable — and
//! recovers the item skeleton:
//!
//! * `fn` items (free functions, impl/trait methods) with their name,
//!   impl-qualified name, parameter names and body byte/line span;
//! * `const`/`static` items with their declaration span;
//! * `use` declarations (module edges for the symbol index);
//! * `mod` declarations (inline and out-of-line).
//!
//! Known approximations (documented in `DESIGN.md`): closures are not
//! items, macro-generated items are invisible, pattern parameters (tuples,
//! `_`) contribute no names, and an `impl` header's self type is taken as
//! the last path segment before the opening brace. Every consumer treats
//! the output as *approximate* — the analyses built on it over-approximate
//! reachability and under-approximate aliasing rather than guessing.

use crate::lexer::LexedFile;

/// Blanked source re-joined into one string with line-offset bookkeeping.
#[derive(Debug, Clone)]
pub struct BlankedText {
    /// The blanked source, lines joined with `\n`.
    pub text: String,
    /// Byte offset of the start of each (1-based) line.
    line_starts: Vec<usize>,
}

impl BlankedText {
    /// Joins a lexed file's blanked lines back into one scanning buffer.
    #[must_use]
    pub fn new(lexed: &LexedFile) -> BlankedText {
        let mut text = String::new();
        let mut line_starts = Vec::with_capacity(lexed.lines.len());
        for (i, line) in lexed.lines.iter().enumerate() {
            if i > 0 {
                text.push('\n');
            }
            line_starts.push(text.len());
            text.push_str(&line.code);
        }
        BlankedText { text, line_starts }
    }

    /// The 1-based line containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx.max(1),
        }
    }
}

/// What kind of item a [`Item`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method.
    Fn(FnItem),
    /// A `const` or `static` with its declaration span.
    Const {
        /// The item's name.
        name: String,
        /// 1-based line of the terminating `;`.
        end_line: usize,
    },
    /// A `use` declaration (the path text up to the `;`).
    Use {
        /// The imported path as written (whitespace collapsed).
        path: String,
    },
    /// A `mod` declaration.
    Mod {
        /// The module's name.
        name: String,
        /// Whether the body is elsewhere (`mod x;`).
        out_of_line: bool,
    },
}

/// A function item's identity and shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// `Type::name` for impl/trait methods, else the bare name.
    pub qual: String,
    /// Parameter names in declaration order (`self` and pattern
    /// parameters are skipped).
    pub params: Vec<String>,
    /// Byte range of the body between (and excluding) its braces, into
    /// [`BlankedText::text`]; `None` for bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The item's kind and payload.
    pub kind: ItemKind,
    /// 1-based line of the item keyword.
    pub line: usize,
}

impl Item {
    /// The function payload, if this item is a `fn`.
    #[must_use]
    pub fn as_fn(&self) -> Option<&FnItem> {
        match &self.kind {
            ItemKind::Fn(f) => Some(f),
            _ => None,
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Reads the identifier starting at `at`, if any.
fn ident_at(bytes: &[u8], at: usize) -> Option<&str> {
    let mut end = at;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    if end == at {
        return None;
    }
    std::str::from_utf8(&bytes[at..end]).ok()
}

/// Skips whitespace (including newlines) from `at`.
fn skip_ws(bytes: &[u8], mut at: usize) -> usize {
    while at < bytes.len() && bytes[at].is_ascii_whitespace() {
        at += 1;
    }
    at
}

/// Advances past a balanced `(…)` group starting at the opening paren,
/// returning the index after the closing paren (or EOF).
fn skip_parens(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Advances past a balanced `<…>` generics group starting at the opening
/// angle. `->` never appears inside a generics list, so plain counting is
/// sound there.
fn skip_generics(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Splits a parameter list on top-level commas (parens, brackets and
/// angles nest; the `>` of `->` does not close an angle).
fn split_params(params: &str) -> Vec<&str> {
    let bytes = params.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < params.len() {
        out.push(&params[start..]);
    }
    out
}

/// Extracts the bindable name from one parameter declaration, if the
/// pattern is a simple (possibly `mut`/`ref`) identifier.
fn param_name(decl: &str) -> Option<String> {
    let pattern = decl.split(':').next().unwrap_or("").trim();
    let pattern = pattern
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("ref ")
        .trim();
    if pattern.is_empty() || pattern == "self" || pattern.starts_with('_') {
        return None;
    }
    if pattern.bytes().all(is_ident_byte)
        && !pattern.bytes().next().is_some_and(|b| b.is_ascii_digit())
    {
        Some(pattern.to_owned())
    } else {
        None
    }
}

/// Extracts the self-type name from an `impl` header (the text between
/// `impl` and its `{`): the last path segment of the type after `for` when
/// present, else of the first type after the generics.
fn impl_self_type(header: &str) -> Option<String> {
    let header = header.trim();
    // Drop a leading generics list: `impl<'a, T: Trait> …`.
    let rest = if header.starts_with('<') {
        let bytes = header.as_bytes();
        &header[skip_generics(bytes, 0)..]
    } else {
        header
    };
    let rest = rest.trim();
    let type_text = match rest.find(" for ") {
        Some(at) => &rest[at + 5..],
        None => rest,
    };
    let type_text = type_text.split(" where").next().unwrap_or(type_text).trim();
    // Last path segment before any generics of the type itself.
    let head = type_text.split('<').next().unwrap_or(type_text).trim();
    let last = head.rsplit("::").next().unwrap_or(head).trim();
    let name: String = last
        .bytes()
        .take_while(|&b| is_ident_byte(b))
        .map(char::from)
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Keywords that precede `(`-groups or idents without being items.
const NON_ITEM_WORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "move", "ref", "mut", "where", "unsafe", "async", "dyn",
];

/// Parses every item in a blanked file.
///
/// Items whose keyword line sits inside a `#[cfg(test)]` span are skipped —
/// the analyses govern shipping code only.
#[must_use]
pub fn items(lexed: &LexedFile, text: &BlankedText) -> Vec<Item> {
    let bytes = text.text.as_bytes();
    let mut out = Vec::new();
    // Impl contexts: (brace_depth_at_body_open, type_name).
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'{' {
            depth += 1;
            i += 1;
            continue;
        }
        if b == b'}' {
            depth = depth.saturating_sub(1);
            while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if !is_ident_byte(b) {
            i += 1;
            continue;
        }
        let Some(word) = ident_at(bytes, i) else {
            i += 1;
            continue;
        };
        let word_start = i;
        i += word.len();
        if word_start > 0 && is_ident_byte(bytes[word_start - 1]) {
            continue; // mid-identifier; not a keyword
        }
        let line = text.line_of(word_start);
        match word {
            "impl" => {
                // Header runs to the opening brace (or a stray `;` for
                // bodyless negative impls, which we skip).
                let mut j = i;
                while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'{' {
                    if let Some(name) = impl_self_type(&text.text[i..j]) {
                        impl_stack.push((depth + 1, name));
                    }
                }
                // Do not consume the brace here; the main loop counts it.
                i = j;
            }
            "fn" => {
                let in_test = lexed.in_test(line);
                let name_at = skip_ws(bytes, i);
                let Some(name) = ident_at(bytes, name_at) else {
                    continue;
                };
                let mut j = name_at + name.len();
                j = skip_ws(bytes, j);
                if bytes.get(j) == Some(&b'<') {
                    j = skip_generics(bytes, j);
                    j = skip_ws(bytes, j);
                }
                if bytes.get(j) != Some(&b'(') {
                    continue; // not a declaration shape we understand
                }
                let params_open = j;
                let params_close = skip_parens(bytes, params_open);
                let params_text = &text.text[params_open + 1..params_close.saturating_sub(1)];
                let params: Vec<String> = split_params(params_text)
                    .iter()
                    .filter_map(|p| param_name(p))
                    .collect();
                // After the signature: body `{…}` or a trait-decl `;`.
                let mut k = params_close;
                let mut body = None;
                while k < bytes.len() {
                    match bytes[k] {
                        b'{' => {
                            let close = skip_body(bytes, k);
                            body = Some((k + 1, close.saturating_sub(1)));
                            break;
                        }
                        b';' => break,
                        _ => k += 1,
                    }
                }
                if !in_test {
                    let qual = match impl_stack.last() {
                        Some((_, ty)) => format!("{ty}::{name}"),
                        None => name.to_owned(),
                    };
                    out.push(Item {
                        kind: ItemKind::Fn(FnItem {
                            name: name.to_owned(),
                            qual,
                            params,
                            body,
                        }),
                        line,
                    });
                }
                // Resume after the signature; the main loop re-scans the
                // body so nested items are found and braces counted.
                i = params_close;
            }
            "const" | "static" => {
                // `&'static str` and `*const u8` reuse the keywords inside
                // types; neither declares an item.
                if word_start > 0
                    && (bytes[word_start - 1] == b'\'' || bytes[word_start - 1] == b'*')
                {
                    continue;
                }
                let mut name_at = skip_ws(bytes, i);
                if let Some("mut") = ident_at(bytes, name_at) {
                    name_at = skip_ws(bytes, name_at + 3);
                }
                let Some(name) = ident_at(bytes, name_at) else {
                    continue; // `const` in `const fn` / const generics
                };
                if name == "fn" {
                    continue;
                }
                // The declaration ends at the first `;` at this brace depth.
                let mut j = name_at + name.len();
                let mut inner = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'{' | b'(' | b'[' => inner += 1,
                        b'}' | b')' | b']' => inner = inner.saturating_sub(1),
                        b';' if inner == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if !lexed.in_test(line) {
                    out.push(Item {
                        kind: ItemKind::Const {
                            name: name.to_owned(),
                            end_line: text.line_of(j.min(bytes.len().saturating_sub(1))),
                        },
                        line,
                    });
                }
                i = j;
            }
            "use" => {
                let mut j = i;
                while j < bytes.len() && bytes[j] != b';' {
                    j += 1;
                }
                if !lexed.in_test(line) {
                    let path: String = text.text[i..j]
                        .split_whitespace()
                        .collect::<Vec<_>>()
                        .join(" ");
                    out.push(Item {
                        kind: ItemKind::Use { path },
                        line,
                    });
                }
                i = j;
            }
            "mod" => {
                let name_at = skip_ws(bytes, i);
                let Some(name) = ident_at(bytes, name_at) else {
                    continue;
                };
                let mut j = name_at + name.len();
                j = skip_ws(bytes, j);
                let out_of_line = bytes.get(j) == Some(&b';');
                if !lexed.in_test(line) {
                    out.push(Item {
                        kind: ItemKind::Mod {
                            name: name.to_owned(),
                            out_of_line,
                        },
                        line,
                    });
                }
                i = name_at + name.len();
            }
            w if NON_ITEM_WORDS.contains(&w) => {}
            _ => {}
        }
    }
    out
}

/// Advances past a balanced `{…}` body starting at the opening brace,
/// returning the index after the closing brace (or EOF).
fn skip_body(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (Vec<Item>, BlankedText) {
        let lexed = LexedFile::lex(src);
        let text = BlankedText::new(&lexed);
        (items(&lexed, &text), text)
    }

    fn fns(items: &[Item]) -> Vec<&FnItem> {
        items.iter().filter_map(Item::as_fn).collect()
    }

    #[test]
    fn free_functions_carry_names_params_and_bodies() {
        let src = "pub fn derive(root: u64, point: u64) -> u64 {\n    root\n}\n";
        let (items, text) = parse(src);
        let f = fns(&items)[0];
        assert_eq!(f.name, "derive");
        assert_eq!(f.qual, "derive");
        assert_eq!(f.params, vec!["root", "point"]);
        let (start, end) = f.body.expect("has body");
        assert!(text.text[start..end].contains("root"));
        assert_eq!(items[0].line, 1);
    }

    #[test]
    fn impl_methods_are_qualified_by_their_self_type() {
        let src = "struct Plan;\nimpl Plan {\n    fn seed(&self, i: u64) -> u64 { i }\n}\nimpl Iterator for Plan {\n    fn next(&mut self) -> Option<u64> { None }\n}\n";
        let (items, _) = parse(src);
        let quals: Vec<&str> = fns(&items).iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Plan::seed", "Plan::next"]);
        assert_eq!(fns(&items)[0].params, vec!["i"]);
    }

    #[test]
    fn generic_impls_and_where_clauses_resolve_the_self_type() {
        let src =
            "impl<'a, T: Clone> Runner<'a, T>\nwhere\n    T: Send,\n{\n    fn run(&self) {}\n}\n";
        let (items, _) = parse(src);
        assert_eq!(fns(&items)[0].qual, "Runner::run");
    }

    #[test]
    fn nested_functions_and_impl_scope_exit() {
        let src = "impl Outer {\n    fn a(&self) {\n        fn helper(x: u64) -> u64 { x }\n    }\n}\nfn free() {}\n";
        let (items, _) = parse(src);
        let quals: Vec<&str> = fns(&items).iter().map(|f| f.qual.as_str()).collect();
        // `helper` is inside `a`'s body but still lexically inside the impl
        // braces; `free` must NOT inherit the impl qualification.
        assert_eq!(quals, vec!["Outer::a", "Outer::helper", "free"]);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait Controller {\n    fn decide(&mut self, jobs: usize) -> usize;\n    fn named(&self) -> bool { true }\n}\n";
        let (items, _) = parse(src);
        let f = fns(&items);
        assert_eq!(f[0].name, "decide");
        assert!(f[0].body.is_none());
        assert!(f[1].body.is_some());
    }

    #[test]
    fn consts_statics_uses_and_mods_are_recorded() {
        let src = "pub const FORMAT: &str =\n    \"dpm-x/v1\";\nstatic mut COUNTER: u64 = 0;\nuse std::collections::BTreeMap;\nmod detail;\nmod inline { }\n";
        let (items, _) = parse(src);
        let names: Vec<String> = items
            .iter()
            .map(|i| match &i.kind {
                ItemKind::Const { name, .. } => format!("const {name}"),
                ItemKind::Use { path } => format!("use {path}"),
                ItemKind::Mod { name, out_of_line } => {
                    format!("mod {name}{}", if *out_of_line { ";" } else { "" })
                }
                ItemKind::Fn(f) => format!("fn {}", f.name),
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "const FORMAT",
                "const COUNTER",
                "use std::collections::BTreeMap;".trim_end_matches(';'),
                "mod detail;",
                "mod inline",
            ]
        );
        let ItemKind::Const { end_line, .. } = &items[0].kind else {
            panic!("expected const");
        };
        assert_eq!(*end_line, 2, "multi-line const span must reach the `;`");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    const X: u64 = 1;\n}\n";
        let (items, _) = parse(src);
        assert_eq!(fns(&items).len(), 1);
        assert_eq!(fns(&items)[0].name, "shipping");
        assert!(items
            .iter()
            .all(|i| !matches!(&i.kind, ItemKind::Const { name, .. } if name == "X")));
    }

    #[test]
    fn const_fn_is_a_function_not_a_const() {
        let src = "pub const fn width(q: usize) -> usize { q + 1 }\n";
        let (items, _) = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(fns(&items)[0].name, "width");
        assert_eq!(fns(&items)[0].params, vec!["q"]);
    }

    #[test]
    fn pattern_parameters_contribute_no_names() {
        let src = "fn f((a, b): (u64, u64), _ignored: u64, mut c: u64, map: BTreeMap<(u32, u32), u64>) {}\n";
        let (items, _) = parse(src);
        assert_eq!(fns(&items)[0].params, vec!["c", "map"]);
    }

    #[test]
    fn line_of_round_trips_offsets() {
        let lexed = LexedFile::lex("one\ntwo\nthree\n");
        let text = BlankedText::new(&lexed);
        assert_eq!(text.line_of(0), 1);
        assert_eq!(text.line_of(4), 2);
        assert_eq!(text.line_of(8), 3);
    }
}
