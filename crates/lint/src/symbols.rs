//! The workspace symbol index and the schema-id registry.
//!
//! [`SymbolIndex`] aggregates every file's parsed items ([`crate::parse`])
//! into one queryable table: functions by bare name (the call graph's
//! resolution key), plus enclosing-function lookup by byte offset or line.
//! Resolution is name-based and therefore *over-approximate*: two methods
//! that share a name alias to the same index entry set. The analyses built
//! on top treat that as conservative fan-out, never as identity.
//!
//! [`schema_registry`] is the cross-file invariant gate for artifact schema
//! ids. Every workspace artifact format is named by a `dpm-<name>/v<N>`
//! string (`dpm-serve-outcome/v2`, `dpm-lint/v2`, …); the registry collects
//! every such string-literal occurrence outside test spans and enforces:
//! one `const`/`static` definition per id, no stale versions once a bump
//! lands, versions start at v1, and a mention in the workspace docs
//! (`DESIGN.md`/`EXPERIMENTS.md`) so consumers can find the format.

use crate::lexer::LexedFile;
use crate::parse::{BlankedText, Item, ItemKind};
use crate::report::{Finding, SchemaEntry};
use crate::rules::SCHEMA_REGISTRY;
use crate::FileKind;
use std::collections::BTreeMap;

/// One file's lexed, parsed form — the unit the cross-file analyses share.
#[derive(Debug, Clone)]
pub struct FileUnit {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Library or binary classification.
    pub kind: FileKind,
    /// The lexed source (blanked lines, comments, strings, test spans).
    pub lexed: LexedFile,
    /// The blanked source joined for byte-offset scanning.
    pub text: BlankedText,
    /// Every parsed item, in source order.
    pub items: Vec<Item>,
}

impl FileUnit {
    /// Lexes and parses one source file into an analysis unit.
    #[must_use]
    pub fn build(rel: &str, kind: FileKind, source: &str) -> FileUnit {
        let lexed = LexedFile::lex(source);
        let text = BlankedText::new(&lexed);
        let items = crate::parse::items(&lexed, &text);
        FileUnit {
            rel: rel.to_owned(),
            kind,
            lexed,
            text,
            items,
        }
    }
}

/// One function in the workspace symbol table.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the unit slice.
    pub file: usize,
    /// The bare name (call-graph resolution key).
    pub name: String,
    /// `Type::name` for methods, else the bare name.
    pub qual: String,
    /// Parameter names in declaration order (`self` skipped).
    pub params: Vec<String>,
    /// Body byte range into the owning file's blanked text.
    pub body: Option<(usize, usize)>,
    /// 1-based signature line.
    pub line: usize,
    /// 1-based body line span (signature line when bodyless).
    pub body_lines: (usize, usize),
}

/// The workspace symbol index: every function, resolvable by bare name.
#[derive(Debug, Clone, Default)]
pub struct SymbolIndex {
    /// All function nodes, in (file, source) order.
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolIndex {
    /// Builds the index over every unit's parsed items.
    #[must_use]
    pub fn build(units: &[FileUnit]) -> SymbolIndex {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (file, unit) in units.iter().enumerate() {
            for item in &unit.items {
                let Some(f) = item.as_fn() else { continue };
                let body_lines = match f.body {
                    Some((start, end)) => {
                        (unit.text.line_of(start), unit.text.line_of(end.max(start)))
                    }
                    None => (item.line, item.line),
                };
                by_name.entry(f.name.clone()).or_default().push(fns.len());
                fns.push(FnNode {
                    file,
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    params: f.params.clone(),
                    body: f.body,
                    line: item.line,
                    body_lines,
                });
            }
        }
        SymbolIndex { fns, by_name }
    }

    /// Every function sharing `name`, in index order.
    #[must_use]
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The innermost function in `file` whose body contains byte `offset`.
    #[must_use]
    pub fn enclosing_fn(&self, file: usize, offset: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file == file
                    && f.body
                        .is_some_and(|(start, end)| (start..=end).contains(&offset))
            })
            .min_by_key(|(_, f)| f.body.map_or(usize::MAX, |(start, end)| end - start))
            .map(|(idx, _)| idx)
    }

    /// The innermost function in `file` whose span covers 1-based `line`
    /// (the signature line counts as inside).
    #[must_use]
    pub fn enclosing_fn_at_line(&self, file: usize, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.line <= line && line <= f.body_lines.1.max(f.line))
            .min_by_key(|(_, f)| f.body_lines.1.max(f.line) - f.line)
            .map(|(idx, _)| idx)
    }
}

/// One `dpm-*/vN` string occurrence.
#[derive(Debug, Clone)]
struct SchemaUse {
    base: String,
    version: u64,
    file: usize,
    line: usize,
    is_def: bool,
}

/// Scans `text` for `dpm-<name>/v<N>` schema ids.
fn scan_ids(text: &str) -> Vec<(String, u64)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for (at, _) in text.match_indices("dpm-") {
        if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'-') {
            continue;
        }
        let mut end = at + 4;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'-')
        {
            end += 1;
        }
        if end == at + 4 || bytes.get(end) != Some(&b'/') || bytes.get(end + 1) != Some(&b'v') {
            continue;
        }
        let mut v_end = end + 2;
        while v_end < bytes.len() && bytes[v_end].is_ascii_digit() {
            v_end += 1;
        }
        if v_end == end + 2 || bytes.get(v_end).is_some_and(u8::is_ascii_alphanumeric) {
            continue;
        }
        let Ok(version) = text[end + 2..v_end].parse::<u64>() else {
            continue;
        };
        out.push((text[at..end].to_owned(), version));
    }
    out
}

/// Collects every schema id in the unit set and checks the registry
/// invariants, returning per-file findings plus the canonical registry
/// (one entry per id, at its defining site).
///
/// `docs` is the concatenated text of the workspace documentation
/// (`DESIGN.md` + `EXPERIMENTS.md`); when `None` — single-file runs with
/// no workspace root — the documentation-mention check is skipped.
#[must_use]
pub fn schema_registry(
    units: &[FileUnit],
    docs: Option<&str>,
) -> (Vec<(usize, Finding)>, Vec<SchemaEntry>) {
    let mut uses: Vec<SchemaUse> = Vec::new();
    for (file, unit) in units.iter().enumerate() {
        for lit in &unit.lexed.strings {
            if unit.lexed.in_test(lit.line) {
                continue;
            }
            let is_def = unit.items.iter().any(|item| match &item.kind {
                ItemKind::Const { end_line, .. } => item.line <= lit.line && lit.line <= *end_line,
                _ => false,
            });
            for (base, version) in scan_ids(&lit.text) {
                uses.push(SchemaUse {
                    base,
                    version,
                    file,
                    line: lit.line,
                    is_def,
                });
            }
        }
    }
    // Deterministic order: by (path, line) within each base.
    uses.sort_by(|a, b| {
        (&a.base, &units[a.file].rel, a.line).cmp(&(&b.base, &units[b.file].rel, b.line))
    });

    let mut findings: Vec<(usize, Finding)> = Vec::new();
    let mut registry: Vec<SchemaEntry> = Vec::new();
    let mut by_base: BTreeMap<&str, Vec<&SchemaUse>> = BTreeMap::new();
    for u in &uses {
        by_base.entry(&u.base).or_default().push(u);
    }
    for (base, occurrences) in by_base {
        let max_version = occurrences.iter().map(|u| u.version).max().unwrap_or(0);
        let defs: Vec<&&SchemaUse> = occurrences.iter().filter(|u| u.is_def).collect();
        for u in &occurrences {
            if !u.is_def {
                findings.push((
                    u.file,
                    Finding::new(
                        SCHEMA_REGISTRY,
                        &units[u.file].rel,
                        u.line,
                        1,
                        &format!(
                            "schema id `{base}/v{}` appears outside a const/static \
                             definition; define it once and reference the const",
                            u.version
                        ),
                    ),
                ));
            }
            if u.version == 0 {
                findings.push((
                    u.file,
                    Finding::new(
                        SCHEMA_REGISTRY,
                        &units[u.file].rel,
                        u.line,
                        1,
                        &format!("schema id `{base}/v0`: versions start at v1"),
                    ),
                ));
            }
            if u.version < max_version {
                findings.push((
                    u.file,
                    Finding::new(
                        SCHEMA_REGISTRY,
                        &units[u.file].rel,
                        u.line,
                        1,
                        &format!(
                            "stale schema id `{base}/v{}`: `{base}/v{max_version}` also \
                             exists in this workspace; finish the version bump",
                            u.version
                        ),
                    ),
                ));
            }
        }
        for dup in defs.iter().skip(1) {
            if dup.version == defs[0].version {
                findings.push((
                    dup.file,
                    Finding::new(
                        SCHEMA_REGISTRY,
                        &units[dup.file].rel,
                        dup.line,
                        1,
                        &format!(
                            "duplicate definition of schema id `{base}/v{}` (first defined \
                             at {}:{}); keep a single const definition",
                            dup.version, units[defs[0].file].rel, defs[0].line
                        ),
                    ),
                ));
            }
        }
        let canonical = defs.first().map_or(occurrences[0], |d| **d);
        if let Some(docs_text) = docs {
            if !docs_text.contains(&format!("{base}/v{max_version}")) {
                findings.push((
                    canonical.file,
                    Finding::new(
                        SCHEMA_REGISTRY,
                        &units[canonical.file].rel,
                        canonical.line,
                        1,
                        &format!(
                            "schema id `{base}/v{max_version}` is not mentioned in \
                             DESIGN.md or EXPERIMENTS.md; document the artifact format"
                        ),
                    ),
                ));
            }
        }
        registry.push(SchemaEntry {
            base: base.to_owned(),
            version: max_version,
            path: units[canonical.file].rel.clone(),
            line: canonical.line,
        });
    }
    (findings, registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(rel: &str, src: &str) -> FileUnit {
        FileUnit::build(rel, crate::walk::classify(rel), src)
    }

    #[test]
    fn index_resolves_functions_by_name() {
        let units = vec![
            unit("crates/a/src/lib.rs", "pub fn serve(x: u64) {}\n"),
            unit(
                "crates/b/src/lib.rs",
                "impl Pool {\n    fn serve(&self) {}\n    fn drain(&self) {}\n}\n",
            ),
        ];
        let index = SymbolIndex::build(&units);
        let serves = index.named("serve");
        assert_eq!(serves.len(), 2);
        assert_eq!(index.fns[serves[1]].qual, "Pool::serve");
        assert!(index.named("missing").is_empty());
    }

    #[test]
    fn enclosing_fn_prefers_the_innermost_body() {
        let src = "fn outer() {\n    fn inner() {\n        work();\n    }\n}\n";
        let units = vec![unit("crates/a/src/lib.rs", src)];
        let index = SymbolIndex::build(&units);
        let at = index.enclosing_fn_at_line(0, 3).expect("inside inner");
        assert_eq!(index.fns[at].name, "inner");
        let at = index.enclosing_fn_at_line(0, 5).expect("inside outer");
        assert_eq!(index.fns[at].name, "outer");
        assert!(index.enclosing_fn_at_line(0, 99).is_none());
    }

    #[test]
    fn schema_ids_are_scanned_with_boundaries() {
        assert_eq!(
            scan_ids("the dpm-serve-outcome/v2 schema"),
            vec![("dpm-serve-outcome".to_owned(), 2)]
        );
        assert!(scan_ids("dpm-/v1").is_empty(), "empty base");
        assert!(scan_ids("dpm-x/va").is_empty(), "no digits");
        assert!(scan_ids("dpm-x/v1b").is_empty(), "trailing ident char");
        assert_eq!(scan_ids("a dpm-a/v1 b dpm-b/v12.").len(), 2);
    }

    #[test]
    fn a_single_documented_const_definition_is_clean() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub const FORMAT: &str = \"dpm-thing/v3\";\n",
        )];
        let (findings, registry) = schema_registry(&units, Some("… dpm-thing/v3 …"));
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(registry.len(), 1);
        assert_eq!(registry[0].base, "dpm-thing");
        assert_eq!(registry[0].version, 3);
    }

    #[test]
    fn duplicate_definitions_and_loose_mentions_are_flagged() {
        let units = vec![
            unit(
                "crates/a/src/lib.rs",
                "pub const FORMAT: &str = \"dpm-thing/v1\";\n",
            ),
            unit(
                "crates/b/src/lib.rs",
                "pub const ALSO: &str = \"dpm-thing/v1\";\nfn f() -> &'static str { \"dpm-thing/v1\" }\n",
            ),
        ];
        let (findings, registry) = schema_registry(&units, Some("dpm-thing/v1"));
        let messages: Vec<&str> = findings.iter().map(|(_, f)| f.message.as_str()).collect();
        assert!(
            messages.iter().any(|m| m.contains("duplicate definition")),
            "{messages:#?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("outside a const/static")),
            "{messages:#?}"
        );
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn stale_versions_and_v0_are_flagged() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub const NEW: &str = \"dpm-thing/v2\";\npub const OLD: &str = \"dpm-thing/v1\";\npub const BAD: &str = \"dpm-zero/v0\";\n",
        )];
        let (findings, registry) = schema_registry(&units, Some("dpm-thing/v2 dpm-zero/v0"));
        let messages: Vec<&str> = findings.iter().map(|(_, f)| f.message.as_str()).collect();
        assert!(
            messages
                .iter()
                .any(|m| m.contains("stale schema id `dpm-thing/v1`")),
            "{messages:#?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("versions start at v1")),
            "{messages:#?}"
        );
        let thing = registry.iter().find(|e| e.base == "dpm-thing").unwrap();
        assert_eq!(thing.version, 2, "registry reports the max version");
    }

    #[test]
    fn undocumented_ids_are_flagged_only_when_docs_are_present() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub const FORMAT: &str = \"dpm-thing/v1\";\n",
        )];
        let (none, _) = schema_registry(&units, None);
        assert!(none.is_empty(), "no docs: check skipped");
        let (missing, _) = schema_registry(&units, Some("unrelated docs"));
        assert_eq!(missing.len(), 1);
        assert!(missing[0].1.message.contains("not mentioned"));
    }

    #[test]
    fn test_span_ids_are_exempt() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    const WRONG: &str = \"dpm-thing/v0\";\n}\n",
        )];
        let (findings, registry) = schema_registry(&units, Some(""));
        assert!(findings.is_empty(), "{findings:#?}");
        assert!(registry.is_empty());
    }
}
