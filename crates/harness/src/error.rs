//! Error type for the experiment harness.

use std::fmt;

/// Errors surfaced by the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// A malformed experiment plan or runner configuration.
    InvalidPlan {
        /// What was wrong.
        reason: String,
    },
    /// A command-line argument could not be interpreted.
    InvalidArgument {
        /// What was wrong.
        reason: String,
    },
    /// A task failed; the runner reports the first failure.
    Task {
        /// Index of the failed task in plan order.
        index: usize,
        /// Human-readable label of the task's plan point.
        label: String,
        /// The task's own error message.
        message: String,
    },
    /// A checkpoint journal could not be used for resume (plan mismatch,
    /// malformed entry, wrong schema).
    Checkpoint {
        /// What was wrong.
        reason: String,
    },
    /// Malformed JSON input (artifact parsing).
    Json {
        /// Byte offset of the error.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
    /// An artifact could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            HarnessError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            HarnessError::Task {
                index,
                label,
                message,
            } => write!(f, "task {index} ({label}) failed: {message}"),
            HarnessError::Checkpoint { reason } => {
                write!(f, "checkpoint journal rejected: {reason}")
            }
            HarnessError::Json { offset, reason } => {
                write!(f, "malformed JSON at byte {offset}: {reason}")
            }
            HarnessError::Io(e) => write!(f, "artifact I/O failed: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = HarnessError::Task {
            index: 3,
            label: "w=1.0".to_owned(),
            message: "boom".to_owned(),
        };
        assert!(e.to_string().contains("task 3"));
        assert!(e.to_string().contains("w=1.0"));
        let io: HarnessError = std::io::Error::other("nope").into();
        assert!(io.to_string().contains("nope"));
    }
}
