//! Incremental checkpoint journals for resumable runs.
//!
//! A journal is a JSONL file: one header line identifying the plan
//! (name, root seed, points, replications, schema version), then one
//! compact JSON line per *completed* task, appended and flushed as tasks
//! finish. Failed tasks are never journaled — on resume they simply run
//! again.
//!
//! [`load_completed`] restores the completed set for
//! [`crate::runner::run_plan_resilient`]. It accepts either a journal or
//! a full schema-v2 artifact (so a finished run's output doubles as a
//! resume source), validates that the source was written for the *same*
//! plan — name, root seed, grid and per-task seeds all have to line up —
//! and tolerates exactly one torn trailing line, the signature of a run
//! killed mid-append. Anything else malformed is a hard
//! [`HarnessError::Checkpoint`]: silently dropping interior entries
//! would break the bit-identical resume guarantee.
//!
//! # Compaction
//!
//! When a resumed run rewrites its journal, the carried-forward tasks are
//! **compacted**: each maximal run of contiguous task indices becomes one
//! *range record* (`{"run_start": s, "entries": [...]}`) written and
//! flushed once via [`Journal::append_run`], instead of one line and one
//! `fsync`-able flush per task. A long resume chain therefore costs
//! `O(gaps)` writes, not `O(completed tasks)`, and the per-entry `task`
//! index is implied by position, so the rewritten journal is also
//! smaller. Live tasks finishing mid-run still append individually —
//! compaction only ever applies to records already validated by a resume.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;

use crate::artifact::SCHEMA_VERSION;
use crate::json::Json;
use crate::plan::Plan;
use crate::runner::TaskRecord;
use crate::seed::derive_attempt_seed;
use crate::HarnessError;

/// Value of the `journal` field on a journal's header line.
pub const JOURNAL_TAG: &str = "dpm-harness-checkpoint";

/// An open checkpoint journal being written by a run.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates (truncating) the journal at `path` and writes the plan
    /// header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn create(path: impl AsRef<Path>, plan: &Plan) -> Result<Journal, HarnessError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = File::create(path)?;
        let mut header = Json::object();
        header.set("journal", JOURNAL_TAG);
        header.set("schema_version", SCHEMA_VERSION);
        header.set("experiment", plan.name());
        header.set("plan", plan.to_json());
        writeln!(file, "{}", header.render_compact())?;
        file.flush()?;
        Ok(Journal { file })
    }

    /// Appends one completed task and flushes, so the entry survives a
    /// kill immediately after.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append(&mut self, index: usize, record: &TaskRecord) -> Result<(), HarnessError> {
        writeln!(self.file, "{}", entry_json(index, record).render_compact())?;
        self.file.flush()?;
        Ok(())
    }

    /// Appends one *range record* covering the contiguous task indices
    /// `start, start + 1, …` — one journal line, one flush, however many
    /// tasks the run spans. Used to compact carried-forward tasks when a
    /// resumed run rewrites its journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append_run(
        &mut self,
        start: usize,
        records: &[&TaskRecord],
    ) -> Result<(), HarnessError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut node = Json::object();
        node.set("run_start", start);
        node.set(
            "entries",
            Json::Array(records.iter().map(|r| entry_body(r)).collect()),
        );
        writeln!(self.file, "{}", node.render_compact())?;
        self.file.flush()?;
        Ok(())
    }
}

fn entry_json(index: usize, record: &TaskRecord) -> Json {
    let mut node = entry_body(record);
    node.set("task", index);
    node
}

/// The index-free body of a journal entry; range records imply each
/// entry's task index from its position.
fn entry_body(record: &TaskRecord) -> Json {
    let mut node = Json::object();
    node.set("point", record.point_index);
    node.set("replication", record.replication);
    node.set("seed", record.seed);
    node.set("attempts", u64::from(record.attempts));
    node.set("result", record.result.clone());
    node.set("telemetry", record.telemetry.clone());
    node.set("wall_secs", Json::num(record.wall_secs));
    node
}

/// Restores the completed-task set from `path` — a checkpoint journal or
/// a full schema-v2 artifact — keyed by flat task index.
///
/// # Errors
///
/// Returns [`HarnessError::Checkpoint`] if the source was written for a
/// different plan or contains a malformed interior entry, and propagates
/// filesystem failures.
pub fn load_completed(
    path: impl AsRef<Path>,
    plan: &Plan,
) -> Result<BTreeMap<usize, TaskRecord>, HarnessError> {
    let text = std::fs::read_to_string(path)?;
    // A whole-file parse succeeds only for an artifact or a header-only
    // journal; a journal with entries has trailing lines and falls
    // through to line-wise parsing.
    if let Ok(doc) = Json::parse(&text) {
        if doc.get("journal").and_then(Json::as_str) == Some(JOURNAL_TAG) {
            validate_header(&doc, plan)?;
            return Ok(BTreeMap::new());
        }
        if doc.get("tasks").is_some() {
            return from_artifact(&doc, plan);
        }
        return Err(reject(
            "file is neither a checkpoint journal nor a run artifact",
        ));
    }
    from_journal(&text, plan)
}

fn reject(reason: impl Into<String>) -> HarnessError {
    HarnessError::Checkpoint {
        reason: reason.into(),
    }
}

fn validate_header(header: &Json, plan: &Plan) -> Result<(), HarnessError> {
    let version = header.get("schema_version");
    if version != Some(&Json::Int(i128::from(SCHEMA_VERSION))) {
        return Err(reject(format!(
            "schema_version {version:?} is not resumable (need {SCHEMA_VERSION})"
        )));
    }
    let experiment = header.get("experiment").and_then(Json::as_str);
    if experiment != Some(plan.name()) {
        return Err(reject(format!(
            "written for experiment {experiment:?}, resuming `{}`",
            plan.name()
        )));
    }
    if header.get("plan") != Some(&plan.to_json()) {
        return Err(reject(
            "plan differs (root seed, points or replications changed)",
        ));
    }
    Ok(())
}

fn from_journal(text: &str, plan: &Plan) -> Result<BTreeMap<usize, TaskRecord>, HarnessError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty());
    let Some((_, header_line)) = lines.next() else {
        return Err(reject("journal is empty"));
    };
    let header =
        Json::parse(header_line).map_err(|e| reject(format!("malformed journal header: {e}")))?;
    if header.get("journal").and_then(Json::as_str) != Some(JOURNAL_TAG) {
        return Err(reject("first line is not a journal header"));
    }
    validate_header(&header, plan)?;

    let entries: Vec<(usize, &str)> = lines.collect();
    let mut completed = BTreeMap::new();
    for (position, &(line_number, line)) in entries.iter().enumerate() {
        let node = match Json::parse(line) {
            Ok(node) => node,
            // A torn final line is the normal signature of a run killed
            // mid-append; that task simply reruns on resume.
            Err(_) if position + 1 == entries.len() => break,
            Err(e) => return Err(reject(format!("line {}: {e}", line_number + 1))),
        };
        if let Some(start) = get_usize(&node, "run_start") {
            // A compacted range record: entry k covers task start + k.
            let Some(Json::Array(runs)) = node.get("entries") else {
                return Err(reject(format!(
                    "line {}: range record without an `entries` array",
                    line_number + 1
                )));
            };
            for (offset, entry) in runs.iter().enumerate() {
                let index = start + offset;
                let record = record_from_node(entry, plan, index).map_err(|why| {
                    reject(format!("line {}: entry {offset}: {why}", line_number + 1))
                })?;
                completed.insert(index, record);
            }
            continue;
        }
        let index = get_usize(&node, "task")
            .ok_or_else(|| reject(format!("line {}: missing task index", line_number + 1)))?;
        let record = record_from_node(&node, plan, index)
            .map_err(|why| reject(format!("line {}: {why}", line_number + 1)))?;
        completed.insert(index, record);
    }
    Ok(completed)
}

fn from_artifact(doc: &Json, plan: &Plan) -> Result<BTreeMap<usize, TaskRecord>, HarnessError> {
    validate_header(doc, plan)?;
    let Some(Json::Array(tasks)) = doc.get("tasks") else {
        return Err(reject("artifact `tasks` is not an array"));
    };
    if tasks.len() != plan.n_tasks() {
        return Err(reject(format!(
            "artifact has {} tasks, plan has {}",
            tasks.len(),
            plan.n_tasks()
        )));
    }
    let mut completed = BTreeMap::new();
    for (index, node) in tasks.iter().enumerate() {
        if node.get("status").and_then(Json::as_str) != Some("ok") {
            continue; // failed tasks rerun on resume
        }
        let record = record_from_node(node, plan, index)
            .map_err(|why| reject(format!("task {index}: {why}")))?;
        completed.insert(index, record);
    }
    Ok(completed)
}

/// Rebuilds a [`TaskRecord`] from a journal entry or artifact task node,
/// cross-checking every deterministic field against the plan.
fn record_from_node(node: &Json, plan: &Plan, index: usize) -> Result<TaskRecord, String> {
    if index >= plan.n_tasks() {
        return Err(format!(
            "task index {index} out of range for a {}-task plan",
            plan.n_tasks()
        ));
    }
    let (point_index, replication) = plan.task_coordinates(index);
    if get_usize(node, "point") != Some(point_index)
        || get_u64(node, "replication") != Some(replication)
    {
        return Err(format!(
            "grid coordinates disagree with plan (expected point {point_index}, replication {replication})"
        ));
    }
    let seed = get_u64(node, "seed").ok_or("missing seed")?;
    let attempts = get_u64(node, "attempts")
        .and_then(|a| u32::try_from(a).ok())
        .filter(|&a| a >= 1)
        .ok_or("missing or invalid attempt count")?;
    let expected = derive_attempt_seed(
        plan.root_seed(),
        point_index as u64,
        replication,
        attempts - 1,
    );
    if seed != expected {
        return Err(format!(
            "seed {seed} does not match attempt {} of this plan (expected {expected})",
            attempts - 1
        ));
    }
    let result = node.get("result").ok_or("missing result")?.clone();
    let telemetry = node.get("telemetry").ok_or("missing telemetry")?.clone();
    let wall_secs = node.get("wall_secs").and_then(Json::as_f64).unwrap_or(0.0);
    Ok(TaskRecord {
        point_index,
        replication,
        seed,
        result,
        telemetry,
        wall_secs,
        attempts,
    })
}

fn get_u64(node: &Json, key: &str) -> Option<u64> {
    match node.get(key)? {
        Json::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn get_usize(node: &Json, key: &str) -> Option<usize> {
    get_u64(node, key).and_then(|v| usize::try_from(v).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPoint;
    use crate::runner::{run_plan_resilient, RunConfig, TaskCtx};

    fn plan() -> Plan {
        Plan::new("ckpt", 23)
            .replications(2)
            .point(PlanPoint::new("a").with("x", 1.0))
            .point(PlanPoint::new("b").with("x", 2.0))
    }

    fn task(ctx: &TaskCtx<'_>) -> Result<Json, String> {
        ctx.telemetry.incr("calls", 1);
        let mut out = Json::object();
        #[allow(clippy::cast_precision_loss)]
        out.set("v", (ctx.seed % 97) as f64 / 7.0);
        Ok(out)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dpm-harness-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn journal_round_trips_every_record_bit_exactly() {
        let p = plan();
        let path = temp_path("round-trip");
        let report = run_plan_resilient(&p, &RunConfig::new(2).checkpoint(&path), task).unwrap();
        let restored = load_completed(&path, &p).unwrap();
        assert_eq!(restored.len(), p.n_tasks());
        for (index, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(&restored[&index], outcome.record().unwrap());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_dropped_interior_corruption_is_fatal() {
        let p = plan();
        let path = temp_path("torn");
        run_plan_resilient(&p, &RunConfig::new(1).checkpoint(&path), task).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // Simulate a kill mid-append: the last line is half-written.
        let torn: String =
            text.trim_end().rsplit_once('\n').unwrap().0.to_owned() + "\n{\"task\":3,\"poi";
        std::fs::write(&path, &torn).unwrap();
        let restored = load_completed(&path, &p).unwrap();
        assert_eq!(restored.len(), p.n_tasks() - 1); // the torn entry is lost
        assert!(!restored.contains_key(&(p.n_tasks() - 1)));

        // Corrupt an interior line: hard error, not silent data loss.
        let mut lines: Vec<&str> = text.lines().collect();
        lines[2] = "{broken";
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = load_completed(&path, &p).unwrap_err();
        assert!(matches!(err, HarnessError::Checkpoint { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_for_a_different_plan_is_rejected() {
        let p = plan();
        let path = temp_path("mismatch");
        run_plan_resilient(&p, &RunConfig::new(1).checkpoint(&path), task).unwrap();

        let reseeded = Plan::new("ckpt", 24)
            .replications(2)
            .point(PlanPoint::new("a").with("x", 1.0))
            .point(PlanPoint::new("b").with("x", 2.0));
        let err = load_completed(&path, &reseeded).unwrap_err();
        assert!(err.to_string().contains("plan differs"), "{err}");

        let renamed = Plan::new("other", 23)
            .replications(2)
            .point(PlanPoint::new("a"));
        let err = load_completed(&path, &renamed).unwrap_err();
        assert!(err.to_string().contains("experiment"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_journal_restores_nothing() {
        let p = plan();
        let path = temp_path("header-only");
        Journal::create(&path, &p).unwrap();
        assert!(load_completed(&path, &p).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resumed_journal_compacts_contiguous_runs_into_range_records() {
        let p = plan();
        let first = temp_path("compact-first");
        run_plan_resilient(&p, &RunConfig::new(1).checkpoint(&first), task).unwrap();

        // Resume into a fresh journal: all 6 completed tasks are one
        // contiguous run, so the rewrite is header + ONE range record.
        let second = temp_path("compact-second");
        let report = run_plan_resilient(
            &p,
            &RunConfig::new(2).resume(&first).checkpoint(&second),
            task,
        )
        .unwrap();
        assert_eq!(report.resumed, p.n_tasks());
        let text = std::fs::read_to_string(&second).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.lines().nth(1).unwrap().contains("\"run_start\":0"));

        // And the compacted journal restores every record bit-exactly.
        let restored = load_completed(&second, &p).unwrap();
        assert_eq!(restored.len(), p.n_tasks());
        for (index, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(&restored[&index], outcome.record().unwrap());
        }
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }

    #[test]
    fn gapped_completed_sets_split_into_one_range_record_per_run() {
        let p = plan();
        let first = temp_path("gap-first");
        run_plan_resilient(&p, &RunConfig::new(1).checkpoint(&first), task).unwrap();

        // Drop tasks 1 and 3 from the journal (keep {0, 2}) so the
        // carried-forward set has a gap.
        let text = std::fs::read_to_string(&first).unwrap();
        let kept: Vec<&str> = text
            .lines()
            .filter(|line| !line.contains("\"task\":1") && !line.contains("\"task\":3"))
            .collect();
        std::fs::write(&first, kept.join("\n") + "\n").unwrap();

        let second = temp_path("gap-second");
        let report = run_plan_resilient(
            &p,
            &RunConfig::new(2).resume(&first).checkpoint(&second),
            task,
        )
        .unwrap();
        assert_eq!(report.resumed, 2);
        assert_eq!(report.n_ok(), p.n_tasks());
        let rewritten = std::fs::read_to_string(&second).unwrap();
        // Header + range {0} + range {2} + two live appends for the
        // re-executed tasks 1 and 3.
        assert_eq!(rewritten.lines().count(), 5, "{rewritten}");
        assert!(rewritten.contains("\"run_start\":0"));
        assert!(rewritten.contains("\"run_start\":2"));
        let restored = load_completed(&second, &p).unwrap();
        assert_eq!(restored.len(), p.n_tasks());
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }

    #[test]
    fn torn_trailing_range_record_is_dropped_interior_is_fatal() {
        let p = plan();
        let path = temp_path("torn-range");
        let mut journal = Journal::create(&path, &p).unwrap();
        let report = run_plan_resilient(&p, &RunConfig::new(1), task).unwrap();
        let records: Vec<&TaskRecord> = report
            .outcomes
            .iter()
            .map(|o| o.record().unwrap())
            .collect();
        journal.append_run(0, &records[0..2]).unwrap();
        journal.append_run(2, &records[2..4]).unwrap();
        drop(journal);

        let full = std::fs::read_to_string(&path).unwrap();
        let torn: String =
            full.trim_end().rsplit_once('\n').unwrap().0.to_owned() + "\n{\"run_start\":2,\"ent";
        std::fs::write(&path, &torn).unwrap();
        let restored = load_completed(&path, &p).unwrap();
        assert_eq!(restored.len(), 2); // only the first range survives

        // A malformed interior range record is a hard error.
        let mut lines: Vec<&str> = full.lines().collect();
        lines[1] = "{\"run_start\":0,\"entries\":7}";
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = load_completed(&path, &p).unwrap_err();
        assert!(err.to_string().contains("entries"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn range_records_validate_seeds_per_entry() {
        let p = plan();
        let path = temp_path("range-seed");
        let mut journal = Journal::create(&path, &p).unwrap();
        let report = run_plan_resilient(&p, &RunConfig::new(1), task).unwrap();
        let records: Vec<&TaskRecord> = report
            .outcomes
            .iter()
            .map(|o| o.record().unwrap())
            .collect();
        // Write the run shifted by one: every entry's grid coordinates
        // and seed disagree with the index implied by its position.
        journal.append_run(1, &records[0..3]).unwrap();
        drop(journal);
        let err = load_completed(&path, &p).unwrap_err();
        assert!(matches!(err, HarnessError::Checkpoint { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_seed_is_rejected() {
        let p = plan();
        let path = temp_path("tampered");
        run_plan_resilient(&p, &RunConfig::new(1).checkpoint(&path), task).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen(&format!("\"seed\":{}", p.task_seed(0)), "\"seed\":1", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        let err = load_completed(&path, &p).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
