//! A minimal self-contained JSON value type, writer and parser.
//!
//! The build environment is hermetic (no `serde`), and the artifact layer
//! needs only three things: a tree value type, a *canonical* writer (object
//! keys sorted, shortest round-trip float formatting) so that two runs of
//! the same plan render byte-identical documents, and a parser for the
//! tolerance-aware diff tool. All three live here in ~300 lines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::HarnessError;

/// A JSON document node.
///
/// Integers and floats are kept distinct so that counters and seeds
/// round-trip exactly (an `u64` seed does not fit `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (wide enough for `u64` seeds and counters).
    Int(i128),
    /// A finite double. Non-finite values must be encoded as strings by the
    /// caller ([`Json::num`] does so).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; `BTreeMap` keeps key order canonical.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Encodes a float, mapping non-finite values to descriptive strings
    /// (plain JSON has no NaN/Infinity literals).
    #[must_use]
    pub fn num(value: f64) -> Json {
        if value.is_finite() {
            Json::Float(value)
        } else {
            Json::Str(format!("{value}"))
        }
    }

    /// An empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Inserts `key` into an object node; panics on non-objects (caller
    /// bug).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Object`].
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Object(map) => {
                map.insert(key.to_owned(), value.into());
                self
            }
            // dpm-lint: allow(no_panic, reason = "documented API contract (see # Panics): set on a non-object is a caller bug, not a runtime condition")
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Looks up `key` in an object node.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The node's float value, if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            #[allow(clippy::cast_precision_loss)]
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The node's string value, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the canonical compact-but-indented form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the canonical single-line form — one value per line, as the
    /// checkpoint journal needs (one JSONL entry per completed task).
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                let _ = write!(out, "{f:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                // `{:?}` is Rust's shortest round-trip form ("1.0", "1e-12").
                let _ = write!(out, "{f:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write_into(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Json`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, HarnessError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(i128::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(i128::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(pos: usize, reason: &str) -> HarnessError {
    HarnessError::Json {
        offset: pos,
        reason: reason.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), HarnessError> {
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(token.as_bytes()))
    {
        *pos += token.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{token}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, HarnessError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, HarnessError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid codepoint"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(bytes.get(*pos..).unwrap_or(&[]))
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, HarnessError> {
    let start = *pos;
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or(&[]))
        .map_err(|_| err(start, "bad number"))?;
    if text.is_empty() {
        return Err(err(start, "expected a value"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| err(start, "bad float"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| err(start, "bad integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let mut doc = Json::object();
        doc.set("b", 3u64);
        doc.set("a", 1.5);
        doc.set("list", vec![Json::Null, Json::Bool(true), Json::Int(-2)]);
        doc.set("text", "hi \"there\"\n");
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn compact_form_is_single_line_and_round_trips() {
        let mut doc = Json::object();
        doc.set("b", 3u64);
        doc.set("a", 1.5);
        doc.set("list", vec![Json::Null, Json::Bool(true), Json::Int(-2)]);
        doc.set("text", "hi \"there\"\n");
        let compact = doc.render_compact();
        assert!(!compact.contains('\n'), "compact form must be one line");
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn keys_render_sorted() {
        let mut doc = Json::object();
        doc.set("zeta", 1u64);
        doc.set("alpha", 2u64);
        let rendered = doc.render();
        assert!(rendered.find("alpha").unwrap() < rendered.find("zeta").unwrap());
    }

    #[test]
    fn u64_seed_round_trips_exactly() {
        let seed = u64::MAX - 3;
        let doc = Json::from(seed);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, Json::Int(i128::from(seed)));
    }

    #[test]
    fn shortest_float_form_round_trips() {
        for v in [1.0, 0.1, 1e-12, 123456.789, -2.5e300] {
            let parsed = Json::parse(&Json::num(v).render()).unwrap();
            assert_eq!(parsed.as_f64().unwrap(), v);
        }
    }

    #[test]
    fn non_finite_floats_become_strings() {
        assert_eq!(Json::num(f64::NAN), Json::Str("NaN".to_owned()));
        assert_eq!(Json::num(f64::INFINITY), Json::Str("inf".to_owned()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_escapes() {
        let parsed = Json::parse(r#"{"k": "aA\n"}"#).unwrap();
        assert_eq!(parsed.get("k"), Some(&Json::Str("aA\n".to_owned())));
    }
}
