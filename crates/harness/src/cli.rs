//! A tiny `--flag value` argument parser shared by the experiment
//! binaries (the environment has no `clap`).
//!
//! Supported shapes: `--name value`, `--switch` (boolean, no value), and
//! comma-separated lists (`--capacities 5,50,200`). Every experiment
//! binary accepts at least `--workers`, `--seed`, `--requests`, `--reps`
//! and `--out`; unknown flags are rejected so typos fail loudly.

use std::collections::BTreeMap;

use crate::runner::{FaultPlan, RunConfig};
use crate::{pool, HarnessError};

/// The fault-tolerance flags every experiment binary accepts; splice into
/// the binary's allowed-flag list and feed the parsed [`Args`] to
/// [`Args::run_config`].
///
/// * `--max-attempts N` — retry budget per task (default 1 = no retries);
/// * `--checkpoint PATH` — journal completed tasks to PATH as they finish;
/// * `--resume PATH` — skip tasks already completed in PATH (a journal or
///   a schema-v2 artifact);
/// * `--inject-panic SPEC` / `--inject-error SPEC` — deterministic fault
///   injection for CI smoke tests, where SPEC is a comma-separated list
///   of `TASK` or `TASK:ATTEMPTS` entries (each sabotages the first
///   ATTEMPTS attempts of TASK; default 1).
pub const RESILIENCE_FLAGS: [&str; 5] = [
    "max-attempts",
    "checkpoint",
    "resume",
    "inject-panic",
    "inject-error",
];

/// Appends [`RESILIENCE_FLAGS`] to a binary's own flag list.
#[must_use]
pub fn with_resilience_flags(own: &[&'static str]) -> Vec<&'static str> {
    own.iter().chain(RESILIENCE_FLAGS.iter()).copied().collect()
}

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    values: BTreeMap<String, String>,
}

fn invalid(reason: String) -> HarnessError {
    HarnessError::InvalidArgument { reason }
}

impl Args {
    /// Parses `argv` (without the program name), accepting only flags
    /// named in `allowed`. A flag whose successor starts with `--` (or is
    /// absent) is treated as a boolean switch.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidArgument`] for unknown or malformed
    /// flags.
    pub fn parse<I: IntoIterator<Item = String>>(
        argv: I,
        allowed: &[&str],
    ) -> Result<Args, HarnessError> {
        let mut values = BTreeMap::new();
        let mut iter = argv.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(invalid(format!(
                    "unexpected positional argument `{arg}` (flags are --name value)"
                )));
            };
            if !allowed.contains(&name) {
                return Err(invalid(format!(
                    "unknown flag --{name}; known flags: {}",
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let value = iter
                .next_if(|next| !next.starts_with("--"))
                .unwrap_or_else(|| "true".to_owned());
            values.insert(name.to_owned(), value);
        }
        Ok(Args { values })
    }

    /// Parses the process's own arguments.
    ///
    /// # Errors
    ///
    /// As [`Args::parse`].
    pub fn from_env(allowed: &[&str]) -> Result<Args, HarnessError> {
        Args::parse(std::env::args().skip(1), allowed)
    }

    /// The raw value of a flag, if given.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// True if the boolean switch was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.get(name) == Some("true")
    }

    /// A `u64` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidArgument`] on parse failure.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, HarnessError> {
        match self.get(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| invalid(format!("--{name} expects an integer, got `{text}`"))),
        }
    }

    /// A `usize` flag with a default.
    ///
    /// # Errors
    ///
    /// As [`Args::get_u64`].
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, HarnessError> {
        match self.get(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| invalid(format!("--{name} expects an integer, got `{text}`"))),
        }
    }

    /// An `f64` flag with a default.
    ///
    /// # Errors
    ///
    /// As [`Args::get_u64`].
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, HarnessError> {
        match self.get(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| invalid(format!("--{name} expects a number, got `{text}`"))),
        }
    }

    /// A string flag with a default.
    #[must_use]
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_owned()
    }

    /// A comma-separated `usize` list flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidArgument`] if any element fails to
    /// parse or the list is empty.
    pub fn get_usize_list(
        &self,
        name: &str,
        default: &[usize],
    ) -> Result<Vec<usize>, HarnessError> {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(text) => {
                let list: Result<Vec<usize>, _> = text
                    .split(',')
                    .map(|part| part.trim().parse::<usize>())
                    .collect();
                let list = list.map_err(|_| {
                    invalid(format!(
                        "--{name} expects a comma-separated integer list, got `{text}`"
                    ))
                })?;
                if list.is_empty() {
                    return Err(invalid(format!("--{name} list is empty")));
                }
                Ok(list)
            }
        }
    }

    /// The worker count: `--workers N`, defaulting to the machine's
    /// available parallelism.
    ///
    /// # Errors
    ///
    /// As [`Args::get_usize`], plus zero is rejected.
    pub fn workers(&self) -> Result<usize, HarnessError> {
        let n = self.get_usize("workers", pool::default_workers())?;
        if n == 0 {
            return Err(invalid("--workers must be at least 1".to_owned()));
        }
        Ok(n)
    }

    /// Assembles a [`RunConfig`] from the [`RESILIENCE_FLAGS`] plus
    /// `--workers`.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidArgument`] on malformed flags.
    pub fn run_config(&self) -> Result<RunConfig, HarnessError> {
        let attempts = self.get_u64("max-attempts", 1)?;
        let attempts = u32::try_from(attempts).unwrap_or(u32::MAX).max(1);
        let mut config = RunConfig::new(self.workers()?).max_attempts(attempts);
        if let Some(path) = self.get("checkpoint") {
            config = config.checkpoint(path);
        }
        if let Some(path) = self.get("resume") {
            config = config.resume(path);
        }
        let mut faults = FaultPlan::new();
        for (task, n) in parse_fault_spec(self.get("inject-panic"), "inject-panic")? {
            faults = faults.panic_on(task, n);
        }
        for (task, n) in parse_fault_spec(self.get("inject-error"), "inject-error")? {
            faults = faults.error_on(task, n);
        }
        Ok(config.faults(faults))
    }
}

/// Parses a fault spec: comma-separated `TASK` or `TASK:ATTEMPTS`
/// entries.
fn parse_fault_spec(spec: Option<&str>, flag: &str) -> Result<Vec<(usize, u32)>, HarnessError> {
    let Some(spec) = spec else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let (task, attempts) = match entry.split_once(':') {
            Some((task, attempts)) => (task, attempts),
            None => (entry, "1"),
        };
        let task: usize = task.parse().map_err(|_| {
            invalid(format!(
                "--{flag} expects TASK or TASK:ATTEMPTS, got `{entry}`"
            ))
        })?;
        let attempts: u32 = if attempts == "max" {
            u32::MAX
        } else {
            attempts.parse().map_err(|_| {
                invalid(format!(
                    "--{flag} expects TASK or TASK:ATTEMPTS, got `{entry}`"
                ))
            })?
        };
        out.push((task, attempts));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], allowed: &[&str]) -> Result<Args, HarnessError> {
        Args::parse(args.iter().map(|s| (*s).to_owned()), allowed)
    }

    #[test]
    fn typed_getters_parse_and_default() {
        let args = parse(
            &["--workers", "4", "--weight", "2.5", "--out", "x.json"],
            &["workers", "weight", "out", "reps"],
        )
        .unwrap();
        assert_eq!(args.workers().unwrap(), 4);
        assert_eq!(args.get_f64("weight", 1.0).unwrap(), 2.5);
        assert_eq!(args.get_str("out", "d.json"), "x.json");
        assert_eq!(args.get_u64("reps", 3).unwrap(), 3);
    }

    #[test]
    fn boolean_switches_need_no_value() {
        let args = parse(&["--smoke", "--workers", "2"], &["smoke", "workers"]).unwrap();
        assert!(args.flag("smoke"));
        assert!(!args.flag("missing"));
        assert_eq!(args.workers().unwrap(), 2);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse(&["--bogus", "1"], &["workers"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn positional_arguments_are_rejected() {
        assert!(parse(&["stray"], &["workers"]).is_err());
    }

    #[test]
    fn lists_parse_with_defaults() {
        let args = parse(&["--capacities", "5, 50,200"], &["capacities"]).unwrap();
        assert_eq!(
            args.get_usize_list("capacities", &[1]).unwrap(),
            vec![5, 50, 200]
        );
        assert_eq!(
            parse(&[], &["capacities"])
                .unwrap()
                .get_usize_list("capacities", &[7, 8])
                .unwrap(),
            vec![7, 8]
        );
        assert!(parse(&["--capacities", "5,x"], &["capacities"])
            .unwrap()
            .get_usize_list("capacities", &[])
            .is_err());
    }

    #[test]
    fn resilience_flags_assemble_a_run_config() {
        let allowed = with_resilience_flags(&["workers"]);
        let args = parse(
            &[
                "--workers",
                "2",
                "--max-attempts",
                "3",
                "--checkpoint",
                "j.jsonl",
                "--resume",
                "old.jsonl",
                "--inject-panic",
                "3,5:2",
                "--inject-error",
                "7:max",
            ],
            &allowed,
        )
        .unwrap();
        let config = args.run_config().unwrap();
        assert_eq!(config.workers, 2);
        assert_eq!(config.max_attempts, 3);
        assert_eq!(
            config.checkpoint.as_deref(),
            Some(std::path::Path::new("j.jsonl"))
        );
        assert_eq!(
            config.resume.as_deref(),
            Some(std::path::Path::new("old.jsonl"))
        );
        assert!(!config.faults.is_empty());

        let plain = parse(&[], &allowed).unwrap().run_config().unwrap();
        assert_eq!(plain.max_attempts, 1);
        assert!(plain.faults.is_empty());
        assert!(plain.checkpoint.is_none());

        let bad = parse(&["--inject-panic", "x"], &allowed).unwrap();
        assert!(bad.run_config().is_err());
    }

    #[test]
    fn malformed_numbers_error_cleanly() {
        let args = parse(&["--workers", "many"], &["workers"]).unwrap();
        assert!(args.workers().is_err());
        let args = parse(&["--workers", "0"], &["workers"]).unwrap();
        assert!(args.workers().is_err());
    }
}
