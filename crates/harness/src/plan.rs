//! Experiment plans: a named cartesian grid of sweep parameters × seeds.
//!
//! A [`Plan`] is the unit the runner executes: an ordered list of sweep
//! [`PlanPoint`]s, each carrying named parameters, crossed with a
//! replication count. Task `t` of the plan is the pair
//! `(point t / replications, replication t % replications)` and draws its
//! RNG seed from [`crate::seed::derive_seed`] — a pure function of the
//! plan's root seed and the task's grid position, never of scheduling.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::seed::derive_seed;
use crate::HarnessError;

/// One sweep-parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An integer parameter (queue capacity, policy N, ...).
    Int(i64),
    /// A real parameter (arrival rate, weight, timeout, ...).
    Float(f64),
    /// A symbolic parameter (policy family, workload kind, ...).
    Text(String),
}

impl ParamValue {
    /// The value as a float, when numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            #[allow(clippy::cast_precision_loss)]
            ParamValue::Int(i) => Some(*i as f64),
            ParamValue::Float(f) => Some(*f),
            ParamValue::Text(_) => None,
        }
    }

    /// The value as an integer, when it is one.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as text, when symbolic.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ParamValue::Text(t) => Some(t),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ParamValue::Int(i) => Json::Int(i128::from(*i)),
            ParamValue::Float(f) => Json::num(*f),
            ParamValue::Text(t) => Json::Str(t.clone()),
        }
    }

    fn render(&self) -> String {
        match self {
            ParamValue::Int(i) => i.to_string(),
            ParamValue::Float(f) => format!("{f:?}"),
            ParamValue::Text(t) => t.clone(),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> ParamValue {
        ParamValue::Int(v)
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> ParamValue {
        // dpm-lint: allow(no_panic, reason = "From impl cannot return an error; sweep-axis sizes are far below i64::MAX on supported targets")
        ParamValue::Int(i64::try_from(v).expect("parameter fits i64"))
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> ParamValue {
        ParamValue::Float(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> ParamValue {
        ParamValue::Text(v.to_owned())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> ParamValue {
        ParamValue::Text(v)
    }
}

/// One point of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPoint {
    label: String,
    params: BTreeMap<String, ParamValue>,
}

impl PlanPoint {
    /// Creates a point with a human-readable label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> PlanPoint {
        PlanPoint {
            label: label.into(),
            params: BTreeMap::new(),
        }
    }

    /// Attaches a named parameter.
    #[must_use]
    pub fn with(mut self, name: &str, value: impl Into<ParamValue>) -> PlanPoint {
        self.params.insert(name.to_owned(), value.into());
        self
    }

    /// The point's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Looks up a parameter.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&ParamValue> {
        self.params.get(name)
    }

    /// All parameters, in name order.
    pub fn params(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut params = Json::object();
        for (name, value) in &self.params {
            params.set(name, value.to_json());
        }
        let mut node = Json::object();
        node.set("label", self.label.as_str());
        node.set("params", params);
        node
    }
}

/// An experiment plan: sweep points × replications under one root seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    name: String,
    root_seed: u64,
    replications: u64,
    points: Vec<PlanPoint>,
}

impl Plan {
    /// Creates an empty plan with one replication per point.
    #[must_use]
    pub fn new(name: impl Into<String>, root_seed: u64) -> Plan {
        Plan {
            name: name.into(),
            root_seed,
            replications: 1,
            points: Vec::new(),
        }
    }

    /// Sets the number of replications (independent seeds) per point.
    #[must_use]
    pub fn replications(mut self, n: u64) -> Plan {
        self.replications = n.max(1);
        self
    }

    /// Appends a sweep point.
    #[must_use]
    pub fn point(mut self, point: PlanPoint) -> Plan {
        self.points.push(point);
        self
    }

    /// Appends the full cartesian product of the given axes, in row-major
    /// order (last axis fastest). Labels are `name=value` pairs joined with
    /// a space.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::InvalidPlan`] if an axis is empty.
    pub fn grid(mut self, axes: &[(&str, Vec<ParamValue>)]) -> Result<Plan, HarnessError> {
        for (name, values) in axes {
            if values.is_empty() {
                return Err(HarnessError::InvalidPlan {
                    reason: format!("axis `{name}` has no values"),
                });
            }
        }
        let total: usize = axes.iter().map(|(_, v)| v.len()).product();
        for index in 0..total {
            let mut remainder = index;
            let mut coordinates = Vec::with_capacity(axes.len());
            for (_, values) in axes.iter().rev() {
                coordinates.push(remainder % values.len());
                remainder /= values.len();
            }
            coordinates.reverse();
            let mut point_label = String::new();
            let mut point = PlanPoint::new(String::new());
            for ((name, values), &i) in axes.iter().zip(&coordinates) {
                if !point_label.is_empty() {
                    point_label.push(' ');
                }
                // dpm-lint: allow(slice_index, reason = "i is a mixed-radix digit taken mod values.len() above")
                let value = &values[i];
                point_label.push_str(&format!("{name}={}", value.render()));
                point = point.with(name, value.clone());
            }
            point.label = point_label;
            self.points.push(point);
        }
        Ok(self)
    }

    /// The plan's name (becomes the artifact's `experiment` field).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root seed all task seeds derive from.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Replications per point.
    #[must_use]
    pub fn n_replications(&self) -> u64 {
        self.replications
    }

    /// The sweep points, in plan order.
    #[must_use]
    pub fn points(&self) -> &[PlanPoint] {
        &self.points
    }

    /// Total task count: points × replications.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        // dpm-lint: allow(no_panic, reason = "replication counts are far below usize::MAX on supported (64-bit) targets")
        self.points.len() * usize::try_from(self.replications).expect("replications fit usize")
    }

    /// Maps a flat task index to its (point index, replication) pair.
    #[must_use]
    pub fn task_coordinates(&self, task: usize) -> (usize, u64) {
        // dpm-lint: allow(no_panic, reason = "replication counts are far below usize::MAX on supported (64-bit) targets")
        let reps = usize::try_from(self.replications).expect("replications fit usize");
        (task / reps, (task % reps) as u64)
    }

    /// The derived RNG seed of one task.
    #[must_use]
    pub fn task_seed(&self, task: usize) -> u64 {
        let (point, replication) = self.task_coordinates(task);
        derive_seed(self.root_seed, point as u64, replication)
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut node = Json::object();
        node.set("root_seed", self.root_seed);
        node.set("replications", self.replications);
        node.set(
            "points",
            Json::Array(self.points.iter().map(PlanPoint::to_json).collect()),
        );
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_row_major() {
        let plan = Plan::new("t", 1)
            .grid(&[
                ("a", vec![ParamValue::Int(1), ParamValue::Int(2)]),
                ("b", vec!["x".into(), "y".into(), "z".into()]),
            ])
            .unwrap();
        assert_eq!(plan.points().len(), 6);
        assert_eq!(plan.points()[0].label(), "a=1 b=x");
        assert_eq!(plan.points()[1].label(), "a=1 b=y");
        assert_eq!(plan.points()[3].label(), "a=2 b=x");
        assert_eq!(plan.points()[5].param("b").unwrap().as_text(), Some("z"));
    }

    #[test]
    fn empty_axis_is_rejected() {
        assert!(Plan::new("t", 1).grid(&[("a", vec![])]).is_err());
    }

    #[test]
    fn task_coordinates_cross_points_and_replications() {
        let plan = Plan::new("t", 9)
            .replications(3)
            .point(PlanPoint::new("p0"))
            .point(PlanPoint::new("p1"));
        assert_eq!(plan.n_tasks(), 6);
        assert_eq!(plan.task_coordinates(0), (0, 0));
        assert_eq!(plan.task_coordinates(2), (0, 2));
        assert_eq!(plan.task_coordinates(3), (1, 0));
        assert_eq!(plan.task_coordinates(5), (1, 2));
    }

    #[test]
    fn task_seeds_are_schedule_independent_and_distinct() {
        let plan = Plan::new("t", 42)
            .replications(4)
            .point(PlanPoint::new("p0"))
            .point(PlanPoint::new("p1"));
        let seeds: Vec<u64> = (0..plan.n_tasks()).map(|t| plan.task_seed(t)).collect();
        let again: Vec<u64> = (0..plan.n_tasks()).map(|t| plan.task_seed(t)).collect();
        assert_eq!(seeds, again);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn replications_floor_at_one() {
        let plan = Plan::new("t", 1).replications(0).point(PlanPoint::new("p"));
        assert_eq!(plan.n_tasks(), 1);
    }

    #[test]
    fn point_parameters_are_typed() {
        let p = PlanPoint::new("x")
            .with("q", 5usize)
            .with("lambda", 0.25)
            .with("kind", "greedy");
        assert_eq!(p.param("q").unwrap().as_i64(), Some(5));
        assert_eq!(p.param("lambda").unwrap().as_f64(), Some(0.25));
        assert_eq!(p.param("kind").unwrap().as_text(), Some("greedy"));
        assert_eq!(p.params().count(), 3);
    }
}
