//! `dpm-harness` — parallel experiment orchestration for the DPM-CTMDP
//! workspace.
//!
//! The paper's results are Monte-Carlo comparisons over sweeps of policies
//! and workloads; at production scale those sweeps are many points × many
//! replications. This crate is the substrate that runs them:
//!
//! * [`plan`] — an experiment plan: a named cartesian grid of sweep
//!   parameters crossed with a replication count under one root seed;
//! * [`seed`] — deterministic per-task seed derivation (a ChaCha8 stream
//!   keyed by grid position), making parallel output bit-identical to
//!   serial;
//! * [`pool`] — a work-stealing thread pool (std threads + mutexed
//!   deques; the build is hermetic, so no external runtime);
//! * [`telemetry`] — a thread-safe [`Registry`] of
//!   counters/gauges/histograms/timers for solver and simulator
//!   diagnostics, with deterministic metrics kept apart from wall-clock
//!   ones;
//! * [`runner`] — executes a plan's tasks and collects per-task records
//!   in plan order; [`runner::run_plan_resilient`] adds task isolation
//!   (`catch_unwind`), deterministic retry and checkpoint/resume;
//! * [`solve`] — the typed solve-phase pipeline: a [`SolvePlan`] runs one
//!   solver task per sweep point on the same pool, returning typed records
//!   in plan order, bit-identical to serial at any worker count;
//! * [`checkpoint`] — the JSONL journal of completed tasks behind
//!   `--checkpoint` / `--resume`, with range-record compaction of
//!   carried-forward tasks on resume;
//! * [`artifact`] — versioned JSON artifacts (`schema_version`,
//!   provenance, per-task telemetry) plus a tolerance-aware [`artifact::diff`]
//!   for regression checking;
//! * [`cli`] — the tiny flag parser the experiment binaries share.
//!
//! # Example
//!
//! ```
//! use dpm_harness::{artifact, json::Json, plan::{Plan, PlanPoint}, runner};
//!
//! # fn main() -> Result<(), dpm_harness::HarnessError> {
//! let plan = Plan::new("demo", 42)
//!     .replications(4)
//!     .point(PlanPoint::new("slow").with("rate", 0.1))
//!     .point(PlanPoint::new("fast").with("rate", 0.5));
//! let records = runner::run_plan(&plan, 2, |ctx| {
//!     ctx.telemetry.incr("tasks", 1);
//!     let rate = ctx.point.param("rate").unwrap().as_f64().unwrap();
//!     let mut out = Json::object();
//!     out.set("rate", rate); // a real task would simulate with ctx.seed
//!     Ok(out)
//! })?;
//! let doc = artifact::build(&plan, 2, &records);
//! assert_eq!(doc.get("schema_version"), Some(&Json::Int(2)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod artifact;
pub mod checkpoint;
pub mod cli;
mod error;
pub mod json;
pub mod plan;
pub mod pool;
pub mod runner;
pub mod seed;
pub mod solve;
pub mod telemetry;

pub use error::HarnessError;
pub use json::Json;
pub use plan::{ParamValue, Plan, PlanPoint};
pub use runner::{
    run_plan, run_plan_resilient, FaultPlan, RunConfig, RunReport, TaskCtx, TaskFailure,
    TaskOutcome, TaskRecord,
};
pub use solve::{run_solve_plan, SolveCtx, SolvePlan, SolveRecord};
pub use telemetry::Registry;
