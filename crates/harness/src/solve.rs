//! The parallel solve-phase pipeline: typed solver sweeps on the pool.
//!
//! The weight sweep behind the paper's power/latency trade-off curve and
//! the bisection behind constrained policies are *solve* phases: each
//! point runs policy iteration, no Monte-Carlo replication, and the
//! output is a typed solution (policy + gain), not a JSON measurement.
//! They used to run serially while the simulation phase next door ran on
//! every core.
//!
//! A [`SolvePlan`] is the solve-phase analogue of [`crate::plan::Plan`]:
//! an ordered list of sweep points under one root seed, one task per
//! point. [`run_solve_plan`] executes it on the same work-stealing
//! [`crate::pool`], returning typed [`SolveRecord`]s **in plan order**
//! regardless of worker count. Per-task seeds derive from grid position
//! only ([`crate::seed::derive_seed`]), so a pure solve function is
//! bit-identical across any worker count — the serial `workers == 1`
//! path and the stolen-from-a-deque path compute exactly the same
//! floating-point story, and any order-dependent post-processing (say, a
//! frontier dedup) can simply run over the returned records in plan
//! order.
//!
//! Solves are deterministic, so there is no retry ladder here: the first
//! failing task (in plan order) aborts with [`HarnessError::Task`], like
//! the strict runner.

use crate::plan::PlanPoint;
use crate::seed::derive_seed;
use crate::{pool, HarnessError};
// dpm-lint: allow(nondeterminism, reason = "per-solve wall_secs is a wall-clock diagnostic; canonical artifact fields never depend on it")
use std::time::Instant;

/// A solve-phase plan: one solver task per sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvePlan {
    name: String,
    root_seed: u64,
    points: Vec<PlanPoint>,
}

impl SolvePlan {
    /// Creates an empty solve plan.
    #[must_use]
    pub fn new(name: impl Into<String>, root_seed: u64) -> SolvePlan {
        SolvePlan {
            name: name.into(),
            root_seed,
            points: Vec::new(),
        }
    }

    /// Appends a sweep point (one solver task).
    #[must_use]
    pub fn point(mut self, point: PlanPoint) -> SolvePlan {
        self.points.push(point);
        self
    }

    /// The plan's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root seed all task seeds derive from.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The sweep points, in plan order.
    #[must_use]
    pub fn points(&self) -> &[PlanPoint] {
        &self.points
    }

    /// Number of solver tasks.
    #[must_use]
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// The derived seed of one task — a pure function of the root seed
    /// and the point index, never of scheduling.
    #[must_use]
    pub fn task_seed(&self, index: usize) -> u64 {
        derive_seed(self.root_seed, index as u64, 0)
    }
}

/// Everything one solver task may depend on.
#[derive(Debug)]
pub struct SolveCtx<'a> {
    /// The sweep point this solve belongs to.
    pub point: &'a PlanPoint,
    /// Index of the point in the plan.
    pub index: usize,
    /// The task's derived seed (solvers are deterministic; this exists so
    /// randomized warm starts, if ever added, stay schedule-independent).
    pub seed: u64,
}

/// The typed outcome of one solver task.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRecord<T> {
    /// Index of the sweep point.
    pub index: usize,
    /// The solver's typed output.
    pub output: T,
    /// Wall-clock seconds the solve took (volatile; never part of
    /// canonical artifact fields).
    pub wall_secs: f64,
}

/// Runs every task of `plan` on `workers` threads and returns typed
/// records in plan order.
///
/// `solve` is called once per point with a [`SolveCtx`]; `workers` is
/// clamped to `1..=n_points`, and `workers == 1` takes the pool's serial
/// reference path. Because the records come back in plan order and seeds
/// ignore scheduling, a pure `solve` makes the whole phase bit-identical
/// at any worker count.
///
/// # Errors
///
/// Returns [`HarnessError::InvalidPlan`] for an empty plan and
/// [`HarnessError::Task`] for the first failing task in plan order.
pub fn run_solve_plan<T, F>(
    plan: &SolvePlan,
    workers: usize,
    solve: F,
) -> Result<Vec<SolveRecord<T>>, HarnessError>
where
    T: Send,
    F: Fn(&SolveCtx<'_>) -> Result<T, String> + Sync,
{
    if plan.points.is_empty() {
        return Err(HarnessError::InvalidPlan {
            reason: format!("solve plan `{}` has no sweep points", plan.name),
        });
    }
    let outcomes = pool::run(plan.n_points(), workers, |index| {
        let ctx = SolveCtx {
            // dpm-lint: allow(slice_index, reason = "pool::run hands out index < n_tasks == points.len()")
            point: &plan.points[index],
            index,
            seed: plan.task_seed(index),
        };
        // dpm-lint: allow(nondeterminism, reason = "measures the solve's wall_secs diagnostic; excluded from canonical artifact comparison")
        let start = Instant::now();
        let output = solve(&ctx);
        (output, start.elapsed().as_secs_f64())
    });
    let mut records = Vec::with_capacity(outcomes.len());
    for (index, (output, wall_secs)) in outcomes.into_iter().enumerate() {
        match output {
            Ok(output) => records.push(SolveRecord {
                index,
                output,
                wall_secs,
            }),
            Err(message) => {
                return Err(HarnessError::Task {
                    index,
                    // dpm-lint: allow(slice_index, reason = "index enumerates outcomes, one per plan point")
                    label: plan.points[index].label().to_owned(),
                    message,
                });
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: usize) -> SolvePlan {
        let mut plan = SolvePlan::new("solves", 7);
        for i in 0..n {
            #[allow(clippy::cast_precision_loss)]
            let w = 0.5 + i as f64;
            plan = plan.point(PlanPoint::new(format!("w={w}")).with("weight", w));
        }
        plan
    }

    fn solve(ctx: &SolveCtx<'_>) -> Result<(f64, u64), String> {
        let w = ctx.point.param("weight").unwrap().as_f64().unwrap();
        // A stand-in for policy iteration: a pure function of the point.
        Ok((w * w + 1.0 / (w + 1.0), ctx.seed))
    }

    #[test]
    fn records_come_back_in_plan_order_with_typed_output() {
        let p = plan(9);
        let records = run_solve_plan(&p, 4, solve).unwrap();
        assert_eq!(records.len(), 9);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.index, i);
            assert_eq!(record.output.1, p.task_seed(i));
        }
    }

    #[test]
    fn worker_count_does_not_change_outputs() {
        let p = plan(13);
        let strip = |records: Vec<SolveRecord<(f64, u64)>>| {
            records
                .into_iter()
                .map(|r| (r.index, r.output))
                .collect::<Vec<_>>()
        };
        let serial = strip(run_solve_plan(&p, 1, solve).unwrap());
        for workers in [2, 3, 8] {
            assert_eq!(strip(run_solve_plan(&p, workers, solve).unwrap()), serial);
        }
    }

    #[test]
    fn first_failure_in_plan_order_wins() {
        let p = plan(6);
        let err = run_solve_plan(&p, 3, |ctx| {
            if ctx.index >= 2 {
                Err(format!("diverged at {}", ctx.index))
            } else {
                solve(ctx)
            }
        })
        .unwrap_err();
        match err {
            HarnessError::Task {
                index,
                label,
                message,
            } => {
                assert_eq!(index, 2);
                assert_eq!(label, "w=2.5");
                assert!(message.contains("diverged at 2"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_plan_is_rejected() {
        let p = SolvePlan::new("empty", 1);
        assert!(matches!(
            run_solve_plan(&p, 1, solve),
            Err(HarnessError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn task_seeds_are_distinct_and_stable() {
        let p = plan(5);
        let seeds: Vec<u64> = (0..5).map(|i| p.task_seed(i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(seeds, (0..5).map(|i| p.task_seed(i)).collect::<Vec<_>>());
    }
}
