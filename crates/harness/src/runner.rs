//! The experiment runner: plan × task function → per-task records.
//!
//! Two entry points share one execution engine:
//!
//! * [`run_plan`] — the strict path: every task must succeed, the first
//!   failure (in plan order) aborts the run with [`HarnessError::Task`].
//! * [`run_plan_resilient`] — the fault-tolerant path: each task attempt
//!   runs under `catch_unwind`, failures are retried up to
//!   [`RunConfig::max_attempts`] times with fresh-but-deterministic seeds
//!   (see [`crate::seed::derive_attempt_seed`]), and the run always
//!   completes, reporting a [`TaskOutcome`] per task. Completed tasks can
//!   be journaled incrementally ([`RunConfig::checkpoint`]) and a later
//!   run can skip them ([`RunConfig::resume`]) with bit-identical results.
//!
//! Each task gets a [`TaskCtx`] with its sweep point, derived seed and a
//! private telemetry [`Registry`]; the task returns its measurement as a
//! [`Json`] value. Records come back in plan order whatever the worker
//! count, and — because seeds derive from grid position and attempt
//! number, never from schedule — the deterministic parts of every record
//! are bit-identical across worker counts, retries and resumes.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
// dpm-lint: allow(nondeterminism, reason = "per-task wall_secs is a wall-clock measurement; the artifact diff ignores it alongside the timers subtree")
use std::time::Instant;

use crate::checkpoint;
use crate::json::Json;
use crate::plan::{Plan, PlanPoint};
use crate::seed::derive_attempt_seed;
use crate::telemetry::Registry;
use crate::{pool, HarnessError};

/// Everything a task may depend on.
#[derive(Debug)]
pub struct TaskCtx<'a> {
    /// The sweep point this task belongs to.
    pub point: &'a PlanPoint,
    /// Index of the sweep point in the plan.
    pub point_index: usize,
    /// Replication number within the point (0-based).
    pub replication: u64,
    /// The task's derived RNG seed (a function of grid position and
    /// attempt number only).
    pub seed: u64,
    /// Task-private telemetry; serialized into the task's record.
    pub telemetry: &'a Registry,
}

/// The successful outcome of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Index of the sweep point.
    pub point_index: usize,
    /// Replication number within the point.
    pub replication: u64,
    /// The derived seed of the attempt that succeeded.
    pub seed: u64,
    /// The task's measurement.
    pub result: Json,
    /// Snapshot of the task's telemetry registry (for the successful
    /// attempt only — failed attempts leave no telemetry behind).
    pub telemetry: Json,
    /// Wall-clock seconds the successful attempt took (volatile; ignored
    /// by the diff).
    pub wall_secs: f64,
    /// How many attempts the task used (1 = succeeded first try).
    pub attempts: u32,
}

impl TaskRecord {
    pub(crate) fn to_json(&self, plan: &Plan) -> Json {
        let mut node = Json::object();
        node.set("point", self.point_index);
        // dpm-lint: allow(slice_index, reason = "point_index was produced by plan.task_coordinates, < points.len() by construction")
        node.set("label", plan.points()[self.point_index].label());
        node.set("replication", self.replication);
        node.set("seed", self.seed);
        node.set("status", "ok");
        node.set("attempts", u64::from(self.attempts));
        node.set("result", self.result.clone());
        node.set("telemetry", self.telemetry.clone());
        node.set("wall_secs", Json::num(self.wall_secs));
        node
    }
}

/// A task that failed every attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFailure {
    /// Flat index of the task in plan order.
    pub index: usize,
    /// Index of the sweep point.
    pub point_index: usize,
    /// Replication number within the point.
    pub replication: u64,
    /// The derived seed of the final attempt.
    pub seed: u64,
    /// The final attempt's error (panic message or task `Err`).
    pub error: String,
    /// How many attempts were made before giving up.
    pub attempts: u32,
}

impl TaskFailure {
    pub(crate) fn to_json(&self, plan: &Plan) -> Json {
        let mut node = Json::object();
        node.set("point", self.point_index);
        // dpm-lint: allow(slice_index, reason = "point_index was produced by plan.task_coordinates, < points.len() by construction")
        node.set("label", plan.points()[self.point_index].label());
        node.set("replication", self.replication);
        node.set("seed", self.seed);
        node.set("status", "failed");
        node.set("attempts", u64::from(self.attempts));
        node.set("error", self.error.as_str());
        node
    }
}

/// Per-task outcome of a resilient run.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome {
    /// The task produced a record (possibly after retries).
    Ok(TaskRecord),
    /// The task failed every attempt; the run continued without it.
    Failed(TaskFailure),
}

impl TaskOutcome {
    /// The record, when the task succeeded.
    #[must_use]
    pub fn record(&self) -> Option<&TaskRecord> {
        match self {
            TaskOutcome::Ok(record) => Some(record),
            TaskOutcome::Failed(_) => None,
        }
    }

    /// Whether the task succeeded.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, TaskOutcome::Ok(_))
    }

    /// How many attempts the task used.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        match self {
            TaskOutcome::Ok(record) => record.attempts,
            TaskOutcome::Failed(failure) => failure.attempts,
        }
    }
}

/// What an injected fault does to a task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// The attempt panics mid-task.
    Panic,
    /// The attempt returns a structured `Err`.
    Error,
}

/// Deterministic fault injection for tests and CI smoke runs.
///
/// Each entry sabotages the first `attempts` attempts of one task: with
/// `attempts = 1` the task fails once and succeeds on retry; with
/// `attempts = u32::MAX` it fails permanently. Faults trigger *inside*
/// the isolated task region, so an injected panic exercises exactly the
/// same recovery path a real one would.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panics: Vec<(usize, u32)>,
    errors: Vec<(usize, u32)>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panics task `task` on its first `attempts` attempts.
    #[must_use]
    pub fn panic_on(mut self, task: usize, attempts: u32) -> FaultPlan {
        self.panics.push((task, attempts));
        self
    }

    /// Fails task `task` with a structured error on its first `attempts`
    /// attempts.
    #[must_use]
    pub fn error_on(mut self, task: usize, attempts: u32) -> FaultPlan {
        self.errors.push((task, attempts));
        self
    }

    /// Whether any fault is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty() && self.errors.is_empty()
    }

    fn arm(&self, task: usize, attempt: u32) -> Option<Fault> {
        let hit = |entries: &[(usize, u32)]| entries.iter().any(|&(t, n)| t == task && attempt < n);
        if hit(&self.panics) {
            Some(Fault::Panic)
        } else if hit(&self.errors) {
            Some(Fault::Error)
        } else {
            None
        }
    }
}

/// Configuration of a resilient run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads.
    pub workers: usize,
    /// Maximum attempts per task (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Injected faults (empty in production runs).
    pub faults: FaultPlan,
    /// Journal completed tasks to this path as they finish.
    pub checkpoint: Option<PathBuf>,
    /// Skip tasks already completed in this journal (or v2 artifact).
    pub resume: Option<PathBuf>,
}

impl RunConfig {
    /// A strict-equivalent configuration: no retries, no faults, no
    /// checkpointing.
    #[must_use]
    pub fn new(workers: usize) -> RunConfig {
        RunConfig {
            workers,
            max_attempts: 1,
            faults: FaultPlan::new(),
            checkpoint: None,
            resume: None,
        }
    }

    /// Sets the attempt budget per task (clamped to ≥ 1).
    #[must_use]
    pub fn max_attempts(mut self, attempts: u32) -> RunConfig {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Installs a fault-injection plan.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> RunConfig {
        self.faults = faults;
        self
    }

    /// Journals completed tasks to `path`.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> RunConfig {
        self.checkpoint = Some(path.into());
        self
    }

    /// Resumes from a journal (or full artifact) at `path`.
    #[must_use]
    pub fn resume(mut self, path: impl Into<PathBuf>) -> RunConfig {
        self.resume = Some(path.into());
        self
    }
}

/// The outcome of a resilient run: one [`TaskOutcome`] per task, in plan
/// order, plus how many were restored from a resume source.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-task outcomes in plan order.
    pub outcomes: Vec<TaskOutcome>,
    /// How many tasks were restored from the resume journal rather than
    /// executed.
    pub resumed: usize,
}

impl RunReport {
    /// The successful records, in plan order.
    #[must_use]
    pub fn records(&self) -> Vec<&TaskRecord> {
        self.outcomes
            .iter()
            .filter_map(TaskOutcome::record)
            .collect()
    }

    /// Converts to the strict contract: every task must have succeeded;
    /// the first failure in plan order becomes [`HarnessError::Task`].
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Task`] for the first failed task.
    pub fn into_records_strict(self, plan: &Plan) -> Result<Vec<TaskRecord>, HarnessError> {
        let mut records = Vec::with_capacity(self.outcomes.len());
        for outcome in self.outcomes {
            match outcome {
                TaskOutcome::Ok(record) => records.push(record),
                TaskOutcome::Failed(failure) => {
                    return Err(HarnessError::Task {
                        index: failure.index,
                        // dpm-lint: allow(slice_index, reason = "point_index was produced by plan.task_coordinates, < points.len() by construction")
                        label: plan.points()[failure.point_index].label().to_owned(),
                        message: failure.error,
                    });
                }
            }
        }
        Ok(records)
    }

    /// Count of successful tasks.
    #[must_use]
    pub fn n_ok(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    /// Count of permanently failed tasks.
    #[must_use]
    pub fn n_failed(&self) -> usize {
        self.outcomes.len() - self.n_ok()
    }

    /// Count of tasks that needed more than one attempt (succeeded or
    /// not).
    #[must_use]
    pub fn n_retried(&self) -> usize {
        self.outcomes.iter().filter(|o| o.attempts() > 1).count()
    }
}

/// Runs one task to completion or attempt exhaustion.
fn execute_task<F>(plan: &Plan, config: &RunConfig, task: &F, index: usize) -> TaskOutcome
where
    F: Fn(&TaskCtx<'_>) -> Result<Json, String> + Sync,
{
    let (point_index, replication) = plan.task_coordinates(index);
    let attempts = config.max_attempts.max(1);
    let mut last_error = String::new();
    let mut last_seed = 0u64;
    for attempt in 0..attempts {
        let seed = derive_attempt_seed(plan.root_seed(), point_index as u64, replication, attempt);
        last_seed = seed;
        let registry = Registry::new();
        let ctx = TaskCtx {
            // dpm-lint: allow(slice_index, reason = "point_index was produced by plan.task_coordinates, < points.len() by construction")
            point: &plan.points()[point_index],
            point_index,
            replication,
            seed,
            telemetry: &registry,
        };
        // dpm-lint: allow(nondeterminism, reason = "measures the task's wall_secs diagnostic; excluded from canonical artifact comparison")
        let start = Instant::now();
        // The fault trigger lives inside the unwind barrier so injected
        // panics take exactly the path a real one would.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match config.faults.arm(index, attempt) {
                Some(Fault::Panic) => {
                    // dpm-lint: allow(no_panic, reason = "fault injection: the test fixture must panic through the same unwind path a real bug would")
                    panic!("injected panic: task {index} attempt {attempt}")
                }
                Some(Fault::Error) => {
                    return Err(format!("injected error: task {index} attempt {attempt}"));
                }
                None => {}
            }
            task(&ctx)
        }))
        .unwrap_or_else(|payload| Err(pool::panic_message(payload)));
        let wall_secs = start.elapsed().as_secs_f64();
        match outcome {
            Ok(result) => {
                return TaskOutcome::Ok(TaskRecord {
                    point_index,
                    replication,
                    seed,
                    result,
                    telemetry: registry.snapshot(),
                    wall_secs,
                    attempts: attempt + 1,
                });
            }
            Err(message) => last_error = message,
        }
    }
    TaskOutcome::Failed(TaskFailure {
        index,
        point_index,
        replication,
        seed: last_seed,
        error: last_error,
        attempts,
    })
}

/// Runs every task of `plan` under the fault-tolerant contract.
///
/// Panicking or erroring tasks are retried up to `config.max_attempts`
/// times with deterministic per-attempt seeds; a task that exhausts its
/// budget becomes [`TaskOutcome::Failed`] and the run continues. With
/// [`RunConfig::checkpoint`] set, completed tasks are journaled as they
/// finish; with [`RunConfig::resume`] set, tasks already completed in the
/// journal (or a schema-v2 artifact) are restored instead of re-executed
/// — bit-identical to an uninterrupted run.
///
/// # Errors
///
/// Returns [`HarnessError::InvalidPlan`] for an empty plan,
/// [`HarnessError::Checkpoint`] for an unusable resume source, and
/// propagates journal I/O failures. Task failures do *not* error the
/// run; they are reported per-task in the [`RunReport`].
pub fn run_plan_resilient<F>(
    plan: &Plan,
    config: &RunConfig,
    task: F,
) -> Result<RunReport, HarnessError>
where
    F: Fn(&TaskCtx<'_>) -> Result<Json, String> + Sync,
{
    if plan.points().is_empty() {
        return Err(HarnessError::InvalidPlan {
            reason: format!("plan `{}` has no sweep points", plan.name()),
        });
    }

    // Load the resume source before opening the checkpoint journal: the
    // two may be the same file, and creating the journal truncates it.
    let restored: BTreeMap<usize, TaskRecord> = match &config.resume {
        Some(path) => checkpoint::load_completed(path, plan)?,
        None => BTreeMap::new(),
    };

    let journal = match &config.checkpoint {
        Some(path) => {
            let mut journal = checkpoint::Journal::create(path, plan)?;
            // Restored tasks are part of this run's completed set; carry
            // them forward so the new journal is self-contained. Each
            // maximal contiguous index run compacts into one range
            // record — one write and flush per gap, not per task.
            let mut entries = restored.iter().peekable();
            while let Some((&start, first)) = entries.next() {
                let mut batch = vec![first];
                while let Some(&(&index, record)) = entries.peek() {
                    if index != start + batch.len() {
                        break;
                    }
                    batch.push(record);
                    entries.next();
                }
                journal.append_run(start, &batch)?;
            }
            Some(Mutex::new(journal))
        }
        None => None,
    };
    let journal_error: Mutex<Option<HarnessError>> = Mutex::new(None);

    let pending: Vec<usize> = (0..plan.n_tasks())
        .filter(|index| !restored.contains_key(index))
        .collect();
    let computed = pool::run(pending.len(), config.workers, |slot| {
        // dpm-lint: allow(slice_index, reason = "pool::run hands out slot < n_tasks == pending.len()")
        let index = pending[slot];
        let outcome = execute_task(plan, config, &task, index);
        if let (Some(journal), TaskOutcome::Ok(record)) = (&journal, &outcome) {
            let appended = journal
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .append(index, record);
            if let Err(error) = appended {
                journal_error
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get_or_insert(error);
            }
        }
        outcome
    });
    if let Some(error) = journal_error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        // A checkpoint was explicitly requested; a silently broken
        // journal would defeat its purpose.
        return Err(error);
    }

    let resumed = restored.len();
    let mut restored = restored;
    let mut computed = computed.into_iter();
    let outcomes = (0..plan.n_tasks())
        .map(|index| match restored.remove(&index) {
            Some(record) => TaskOutcome::Ok(record),
            None => computed
                .next()
                // dpm-lint: allow(no_panic, reason = "structural invariant: pool::run returns exactly one outcome per pending index")
                .expect("one computed outcome per pending task"),
        })
        .collect();
    Ok(RunReport { outcomes, resumed })
}

/// Runs every task of `plan` on `workers` threads under the strict
/// contract: any failure aborts the run.
///
/// `task` is called once per (point, replication) pair and returns the
/// task's measurement; a `String` error (or a panic) aborts the run with
/// the first failing task in plan order.
///
/// # Errors
///
/// Returns [`HarnessError::InvalidPlan`] for an empty plan and
/// [`HarnessError::Task`] if any task fails.
pub fn run_plan<F>(plan: &Plan, workers: usize, task: F) -> Result<Vec<TaskRecord>, HarnessError>
where
    F: Fn(&TaskCtx<'_>) -> Result<Json, String> + Sync,
{
    run_plan_resilient(plan, &RunConfig::new(workers), task)?.into_records_strict(plan)
}

/// Convenience view over the records of one sweep point.
#[must_use]
pub fn records_for_point(records: &[TaskRecord], point: usize) -> Vec<&TaskRecord> {
    records.iter().filter(|r| r.point_index == point).collect()
}

/// Mean of a numeric field of `result` across a point's replications.
///
/// Returns `None` if any record lacks the field or it is non-numeric.
#[must_use]
pub fn mean_of(records: &[TaskRecord], point: usize, field: &str) -> Option<f64> {
    let selected = records_for_point(records, point);
    if selected.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for record in &selected {
        sum += record.result.get(field)?.as_f64()?;
    }
    #[allow(clippy::cast_precision_loss)]
    Some(sum / selected.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPoint;
    use crate::seed::derive_seed;

    fn plan() -> Plan {
        Plan::new("unit", 11)
            .replications(3)
            .point(PlanPoint::new("a").with("x", 1.0))
            .point(PlanPoint::new("b").with("x", 2.0))
    }

    fn task(ctx: &TaskCtx<'_>) -> Result<Json, String> {
        ctx.telemetry.incr("calls", 1);
        let x = ctx.point.param("x").unwrap().as_f64().unwrap();
        let mut out = Json::object();
        // A "measurement" that depends only on the derived seed and point.
        #[allow(clippy::cast_precision_loss)]
        out.set("value", x * (ctx.seed % 1000) as f64);
        Ok(out)
    }

    #[test]
    fn records_come_back_in_plan_order() {
        let p = plan();
        let records = run_plan(&p, 4, task).unwrap();
        assert_eq!(records.len(), 6);
        for (i, r) in records.iter().enumerate() {
            let (point, rep) = p.task_coordinates(i);
            assert_eq!((r.point_index, r.replication), (point, rep));
            assert_eq!(r.seed, p.task_seed(i));
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let p = plan();
        let strip = |records: Vec<TaskRecord>| {
            records
                .into_iter()
                .map(|r| (r.point_index, r.replication, r.seed, r.result))
                .collect::<Vec<_>>()
        };
        let serial = strip(run_plan(&p, 1, task).unwrap());
        for workers in [2, 4, 16] {
            assert_eq!(strip(run_plan(&p, workers, task).unwrap()), serial);
        }
    }

    #[test]
    fn telemetry_is_per_task() {
        let records = run_plan(&plan(), 2, task).unwrap();
        for r in &records {
            assert_eq!(
                r.telemetry.get("counters").unwrap().get("calls"),
                Some(&Json::Int(1))
            );
        }
    }

    #[test]
    fn task_failure_is_reported_with_label() {
        let err = run_plan(&plan(), 2, |ctx| {
            if ctx.point_index == 1 {
                Err("nope".to_owned())
            } else {
                Ok(Json::Null)
            }
        })
        .unwrap_err();
        match err {
            HarnessError::Task { index, label, .. } => {
                assert_eq!(index, 3);
                assert_eq!(label, "b");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn strict_path_reports_panics_as_task_errors() {
        let err = run_plan(&plan(), 2, |ctx| {
            assert!(ctx.point_index != 1, "point b blew up");
            Ok(Json::Null)
        })
        .unwrap_err();
        match err {
            HarnessError::Task { index, message, .. } => {
                assert_eq!(index, 3);
                assert!(message.contains("point b blew up"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_plan_is_rejected() {
        let p = Plan::new("empty", 0);
        assert!(matches!(
            run_plan(&p, 1, task),
            Err(HarnessError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn mean_of_averages_replications() {
        let p = plan();
        let records = run_plan(&p, 1, |_| {
            let mut out = Json::object();
            out.set("v", 2.0);
            Ok(out)
        })
        .unwrap();
        assert_eq!(mean_of(&records, 0, "v"), Some(2.0));
        assert_eq!(mean_of(&records, 0, "missing"), None);
        assert_eq!(mean_of(&records, 9, "v"), None);
        assert_eq!(records_for_point(&records, 1).len(), 3);
    }

    #[test]
    fn resilient_matches_strict_on_healthy_plans() {
        let p = plan();
        let strict = run_plan(&p, 2, task).unwrap();
        let report = run_plan_resilient(&p, &RunConfig::new(2).max_attempts(3), task).unwrap();
        assert_eq!(report.resumed, 0);
        assert_eq!(report.n_ok(), 6);
        assert_eq!(report.n_retried(), 0);
        let records: Vec<TaskRecord> = report.into_records_strict(&p).unwrap();
        let deterministic = |rs: &[TaskRecord]| {
            rs.iter()
                .map(|r| {
                    (
                        r.point_index,
                        r.replication,
                        r.seed,
                        r.result.clone(),
                        r.attempts,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(deterministic(&records), deterministic(&strict));
    }

    #[test]
    fn injected_error_retries_to_success_with_retry_seed() {
        let p = plan();
        let config = RunConfig::new(2)
            .max_attempts(2)
            .faults(FaultPlan::new().error_on(2, 1));
        let report = run_plan_resilient(&p, &config, task).unwrap();
        assert_eq!(report.n_ok(), 6);
        assert_eq!(report.n_retried(), 1);
        let record = report.outcomes[2].record().unwrap();
        assert_eq!(record.attempts, 2);
        let (point, rep) = p.task_coordinates(2);
        assert_eq!(
            record.seed,
            derive_attempt_seed(p.root_seed(), point as u64, rep, 1)
        );
        assert_ne!(record.seed, derive_seed(p.root_seed(), point as u64, rep));
    }

    #[test]
    fn injected_panic_is_isolated_and_other_tasks_are_bit_identical() {
        let p = plan();
        let clean = run_plan(&p, 2, task).unwrap();
        let config = RunConfig::new(2)
            .max_attempts(2)
            .faults(FaultPlan::new().panic_on(3, u32::MAX));
        let report = run_plan_resilient(&p, &config, task).unwrap();
        assert_eq!(report.n_ok(), 5);
        assert_eq!(report.n_failed(), 1);
        match &report.outcomes[3] {
            TaskOutcome::Failed(failure) => {
                assert_eq!(failure.index, 3);
                assert_eq!(failure.attempts, 2);
                assert!(
                    failure.error.contains("injected panic"),
                    "{}",
                    failure.error
                );
            }
            other => panic!("expected failure, got {other:?}"),
        }
        for (i, outcome) in report.outcomes.iter().enumerate() {
            if i == 3 {
                continue;
            }
            let record = outcome.record().unwrap();
            assert_eq!(
                (record.seed, &record.result),
                (clean[i].seed, &clean[i].result)
            );
        }
    }

    #[test]
    fn exhausted_retries_report_the_last_error() {
        let p = plan();
        let config = RunConfig::new(1)
            .max_attempts(3)
            .faults(FaultPlan::new().error_on(0, u32::MAX));
        let report = run_plan_resilient(&p, &config, task).unwrap();
        match &report.outcomes[0] {
            TaskOutcome::Failed(failure) => {
                assert_eq!(failure.attempts, 3);
                assert!(failure.error.contains("attempt 2"), "{}", failure.error);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn resilient_outcomes_are_schedule_independent() {
        let p = plan();
        let config = |workers| {
            RunConfig::new(workers)
                .max_attempts(2)
                .faults(FaultPlan::new().error_on(1, 1).panic_on(4, u32::MAX))
        };
        let serial = run_plan_resilient(&p, &config(1), task).unwrap();
        for workers in [2, 4, 16] {
            let parallel = run_plan_resilient(&p, &config(workers), task).unwrap();
            for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
                match (a, b) {
                    (TaskOutcome::Ok(ra), TaskOutcome::Ok(rb)) => {
                        assert_eq!(
                            (ra.seed, &ra.result, ra.attempts),
                            (rb.seed, &rb.result, rb.attempts)
                        );
                    }
                    (TaskOutcome::Failed(fa), TaskOutcome::Failed(fb)) => {
                        assert_eq!((fa.index, fa.attempts), (fb.index, fb.attempts));
                    }
                    other => panic!("outcome kinds diverged: {other:?}"),
                }
            }
        }
    }
}
