//! The experiment runner: plan × task function → per-task records.
//!
//! [`run_plan`] executes every task of a [`Plan`] on the work-stealing
//! pool. Each task gets a [`TaskCtx`] with its sweep point, derived seed
//! and a private telemetry [`Registry`]; the task returns its measurement
//! as a [`Json`] value. Records come back in plan order whatever the
//! worker count, and — because seeds derive from grid position, not
//! schedule — the deterministic parts of every record are bit-identical
//! across worker counts.

use std::time::Instant;

use crate::json::Json;
use crate::plan::{Plan, PlanPoint};
use crate::telemetry::Registry;
use crate::{pool, HarnessError};

/// Everything a task may depend on.
#[derive(Debug)]
pub struct TaskCtx<'a> {
    /// The sweep point this task belongs to.
    pub point: &'a PlanPoint,
    /// Index of the sweep point in the plan.
    pub point_index: usize,
    /// Replication number within the point (0-based).
    pub replication: u64,
    /// The task's derived RNG seed.
    pub seed: u64,
    /// Task-private telemetry; serialized into the task's record.
    pub telemetry: &'a Registry,
}

/// The outcome of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Index of the sweep point.
    pub point_index: usize,
    /// Replication number within the point.
    pub replication: u64,
    /// The derived seed the task ran with.
    pub seed: u64,
    /// The task's measurement.
    pub result: Json,
    /// Snapshot of the task's telemetry registry.
    pub telemetry: Json,
    /// Wall-clock seconds the task took (volatile; ignored by the diff).
    pub wall_secs: f64,
}

impl TaskRecord {
    pub(crate) fn to_json(&self, plan: &Plan) -> Json {
        let mut node = Json::object();
        node.set("point", self.point_index);
        node.set("label", plan.points()[self.point_index].label());
        node.set("replication", self.replication);
        node.set("seed", self.seed);
        node.set("result", self.result.clone());
        node.set("telemetry", self.telemetry.clone());
        node.set("wall_secs", Json::num(self.wall_secs));
        node
    }
}

/// Runs every task of `plan` on `workers` threads.
///
/// `task` is called once per (point, replication) pair and returns the
/// task's measurement; a `String` error aborts the run (the first failing
/// task in plan order is reported).
///
/// # Errors
///
/// Returns [`HarnessError::InvalidPlan`] for an empty plan and
/// [`HarnessError::Task`] if any task fails.
pub fn run_plan<F>(plan: &Plan, workers: usize, task: F) -> Result<Vec<TaskRecord>, HarnessError>
where
    F: Fn(&TaskCtx<'_>) -> Result<Json, String> + Sync,
{
    if plan.points().is_empty() {
        return Err(HarnessError::InvalidPlan {
            reason: format!("plan `{}` has no sweep points", plan.name()),
        });
    }
    let outcomes = pool::run(plan.n_tasks(), workers, |index| {
        let (point_index, replication) = plan.task_coordinates(index);
        let registry = Registry::new();
        let ctx = TaskCtx {
            point: &plan.points()[point_index],
            point_index,
            replication,
            seed: plan.task_seed(index),
            telemetry: &registry,
        };
        let start = Instant::now();
        let result = task(&ctx);
        let wall_secs = start.elapsed().as_secs_f64();
        result.map(|value| TaskRecord {
            point_index,
            replication,
            seed: ctx.seed,
            result: value,
            telemetry: registry.snapshot(),
            wall_secs,
        })
    });
    outcomes
        .into_iter()
        .enumerate()
        .map(|(index, outcome)| {
            outcome.map_err(|message| {
                let (point_index, _) = plan.task_coordinates(index);
                HarnessError::Task {
                    index,
                    label: plan.points()[point_index].label().to_owned(),
                    message,
                }
            })
        })
        .collect()
}

/// Convenience view over the records of one sweep point.
#[must_use]
pub fn records_for_point(records: &[TaskRecord], point: usize) -> Vec<&TaskRecord> {
    records.iter().filter(|r| r.point_index == point).collect()
}

/// Mean of a numeric field of `result` across a point's replications.
///
/// Returns `None` if any record lacks the field or it is non-numeric.
#[must_use]
pub fn mean_of(records: &[TaskRecord], point: usize, field: &str) -> Option<f64> {
    let selected = records_for_point(records, point);
    if selected.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for record in &selected {
        sum += record.result.get(field)?.as_f64()?;
    }
    #[allow(clippy::cast_precision_loss)]
    Some(sum / selected.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPoint;

    fn plan() -> Plan {
        Plan::new("unit", 11)
            .replications(3)
            .point(PlanPoint::new("a").with("x", 1.0))
            .point(PlanPoint::new("b").with("x", 2.0))
    }

    fn task(ctx: &TaskCtx<'_>) -> Result<Json, String> {
        ctx.telemetry.incr("calls", 1);
        let x = ctx.point.param("x").unwrap().as_f64().unwrap();
        let mut out = Json::object();
        // A "measurement" that depends only on the derived seed and point.
        #[allow(clippy::cast_precision_loss)]
        out.set("value", x * (ctx.seed % 1000) as f64);
        Ok(out)
    }

    #[test]
    fn records_come_back_in_plan_order() {
        let p = plan();
        let records = run_plan(&p, 4, task).unwrap();
        assert_eq!(records.len(), 6);
        for (i, r) in records.iter().enumerate() {
            let (point, rep) = p.task_coordinates(i);
            assert_eq!((r.point_index, r.replication), (point, rep));
            assert_eq!(r.seed, p.task_seed(i));
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let p = plan();
        let strip = |records: Vec<TaskRecord>| {
            records
                .into_iter()
                .map(|r| (r.point_index, r.replication, r.seed, r.result))
                .collect::<Vec<_>>()
        };
        let serial = strip(run_plan(&p, 1, task).unwrap());
        for workers in [2, 4, 16] {
            assert_eq!(strip(run_plan(&p, workers, task).unwrap()), serial);
        }
    }

    #[test]
    fn telemetry_is_per_task() {
        let records = run_plan(&plan(), 2, task).unwrap();
        for r in &records {
            assert_eq!(
                r.telemetry.get("counters").unwrap().get("calls"),
                Some(&Json::Int(1))
            );
        }
    }

    #[test]
    fn task_failure_is_reported_with_label() {
        let err = run_plan(&plan(), 2, |ctx| {
            if ctx.point_index == 1 {
                Err("nope".to_owned())
            } else {
                Ok(Json::Null)
            }
        })
        .unwrap_err();
        match err {
            HarnessError::Task { index, label, .. } => {
                assert_eq!(index, 3);
                assert_eq!(label, "b");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_plan_is_rejected() {
        let p = Plan::new("empty", 0);
        assert!(matches!(
            run_plan(&p, 1, task),
            Err(HarnessError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn mean_of_averages_replications() {
        let p = plan();
        let records = run_plan(&p, 1, |_| {
            let mut out = Json::object();
            out.set("v", 2.0);
            Ok(out)
        })
        .unwrap();
        assert_eq!(mean_of(&records, 0, "v"), Some(2.0));
        assert_eq!(mean_of(&records, 0, "missing"), None);
        assert_eq!(mean_of(&records, 9, "v"), None);
        assert_eq!(records_for_point(&records, 1).len(), 3);
    }
}
