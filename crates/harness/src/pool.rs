//! A work-stealing thread pool for static task sets.
//!
//! Built on `std::thread::scope` + mutex-guarded deques (the build
//! environment has no external crates): the task set is split round-robin
//! across per-worker deques; each worker pops from the *back* of its own
//! deque and, when empty, steals from the *front* of a victim's. Stealing
//! from the opposite end keeps contention low (owner and thief touch
//! different ends) and steals the tasks the owner would reach last.
//!
//! Because the task set is static — no task enqueues further tasks — a
//! worker may exit as soon as every deque is empty; tasks still in flight
//! on other workers need no help. Results land in a slot-per-task vector,
//! so output order is plan order regardless of which worker ran what, and
//! a panicking task propagates its panic to the caller (no lost results).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `n_tasks` tasks on `workers` threads and returns the results in
/// task-index order.
///
/// `task` must be safe to call from several threads at once (`Sync`); it
/// receives the task index. `workers` is clamped to `1..=n_tasks`.
///
/// # Panics
///
/// Re-raises the panic of any panicking task.
pub fn run<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n_tasks);
    if workers == 1 {
        // Serial reference path: no threads, same results by construction.
        return (0..n_tasks).map(task).collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            // Round-robin split: worker w owns tasks w, w+workers, ...
            Mutex::new((w..n_tasks).step_by(workers).collect())
        })
        .collect();
    let results: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let task = &task;
            handles.push(scope.spawn(move || {
                loop {
                    // Own deque first (back), then steal (front).
                    let mut claimed = queues[w].lock().expect("queue poisoned").pop_back();
                    if claimed.is_none() {
                        for offset in 1..workers {
                            let victim = (w + offset) % workers;
                            claimed = queues[victim].lock().expect("queue poisoned").pop_front();
                            if claimed.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(index) = claimed else {
                        return; // Static task set: empty everywhere = done.
                    };
                    let value = task(index);
                    *results[index].lock().expect("result poisoned") = Some(value);
                }
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("every task index was claimed exactly once")
        })
        .collect()
}

/// The machine's available parallelism (defaulting to 1 if unknown) — the
/// default worker count for runners and CLI tools.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        let out = run(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn each_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run(64, 5, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run(37, 1, |i| i as u64 * 3 + 1);
        for workers in [2, 3, 8, 64] {
            assert_eq!(run(37, workers, |i| i as u64 * 3 + 1), serial);
        }
    }

    #[test]
    fn handles_empty_and_tiny_task_sets() {
        assert!(run(0, 4, |i| i).is_empty());
        assert_eq!(run(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn workers_zero_is_clamped() {
        assert_eq!(run(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_task_durations_are_balanced() {
        // Front-loaded long tasks: stealing must keep everyone busy; the
        // assertion is only about correctness, the balancing is observable
        // as wall-clock on multicore hosts.
        let out = run(24, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..24).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task 7 exploded")]
    fn task_panics_propagate() {
        run(16, 4, |i| {
            if i == 7 {
                panic!("task 7 exploded");
            }
            i
        });
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
