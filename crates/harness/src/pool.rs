//! A work-stealing thread pool for static task sets.
//!
//! Built on `std::thread::scope` + mutex-guarded deques (the build
//! environment has no external crates): the task set is split round-robin
//! across per-worker deques; each worker pops from the *back* of its own
//! deque and, when empty, steals from the *front* of a victim's. Stealing
//! from the opposite end keeps contention low (owner and thief touch
//! different ends) and steals the tasks the owner would reach last.
//!
//! Because the task set is static — no task enqueues further tasks — a
//! worker may exit as soon as every deque is empty; tasks still in flight
//! on other workers need no help. Results land in a slot-per-task vector,
//! so output order is plan order regardless of which worker ran what.
//!
//! Two entry points with different failure contracts:
//!
//! * [`run`] — a panicking task propagates its panic to the caller;
//! * [`run_isolated`] — each task runs under `catch_unwind`, so a panic
//!   becomes an `Err(message)` in that task's slot and every other task's
//!   result survives. This is what the resilient runner builds on.
//!
//! Lock poisoning is recovered, not propagated: a queue or result mutex
//! poisoned by a panicking task holds plain data (task indices / finished
//! results), which stays valid whatever the panic interrupted.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// Runs `n_tasks` tasks on `workers` threads and returns the results in
/// task-index order.
///
/// `task` must be safe to call from several threads at once (`Sync`); it
/// receives the task index. `workers` is clamped to `1..=n_tasks`.
///
/// # Panics
///
/// Re-raises the panic of any panicking task.
pub fn run<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n_tasks);
    if workers == 1 {
        // Serial reference path: no threads, same results by construction.
        return (0..n_tasks).map(task).collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            // Round-robin split: worker w owns tasks w, w+workers, ...
            Mutex::new((w..n_tasks).step_by(workers).collect())
        })
        .collect();
    let results: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let task = &task;
            handles.push(scope.spawn(move || {
                loop {
                    // Own deque first (back), then steal (front). A poisoned
                    // lock still guards valid data — recover, don't abort.
                    // dpm-lint: allow(slice_index, reason = "w < workers == queues.len() by the spawn loop bound")
                    let mut claimed = queues[w]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .pop_back();
                    if claimed.is_none() {
                        for offset in 1..workers {
                            let victim = (w + offset) % workers;
                            // dpm-lint: allow(slice_index, reason = "victim < workers == queues.len() by the modulus")
                            claimed = queues[victim]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .pop_front();
                            if claimed.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(index) = claimed else {
                        return; // Static task set: empty everywhere = done.
                    };
                    let value = task(index);
                    // dpm-lint: allow(slice_index, reason = "index came off a deque seeded with 0..n_tasks == results.len()")
                    *results[index]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(value);
                }
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // dpm-lint: allow(no_panic, reason = "structural invariant: the deques are seeded with every index exactly once and workers only exit when all are empty")
                .expect("every task index was claimed exactly once")
        })
        .collect()
}

/// Converts a caught panic payload into a human-readable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "task panicked (non-string payload)".to_owned(),
        }
    }
}

/// As [`run`], but each task is isolated with `catch_unwind`: a panicking
/// task yields `Err(panic message)` in its own slot instead of tearing down
/// the pool, and every other task's result is preserved.
///
/// The closure is wrapped in `AssertUnwindSafe`: the pool never reuses
/// whatever state the panic may have left behind — each task's slot is
/// written exactly once, and the deques hold plain indices.
pub fn run_isolated<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run(n_tasks, workers, |index| {
        catch_unwind(AssertUnwindSafe(|| task(index))).map_err(panic_message)
    })
}

/// The machine's available parallelism (defaulting to 1 if unknown) — the
/// default worker count for runners and CLI tools.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        let out = run(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn each_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run(64, 5, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run(37, 1, |i| i as u64 * 3 + 1);
        for workers in [2, 3, 8, 64] {
            assert_eq!(run(37, workers, |i| i as u64 * 3 + 1), serial);
        }
    }

    #[test]
    fn handles_empty_and_tiny_task_sets() {
        assert!(run(0, 4, |i| i).is_empty());
        assert_eq!(run(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn workers_zero_is_clamped() {
        assert_eq!(run(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_task_durations_are_balanced() {
        // Front-loaded long tasks: stealing must keep everyone busy; the
        // assertion is only about correctness, the balancing is observable
        // as wall-clock on multicore hosts.
        let out = run(24, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..24).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task 7 exploded")]
    fn task_panics_propagate() {
        run(16, 4, |i| {
            if i == 7 {
                panic!("task 7 exploded");
            }
            i
        });
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn isolated_panic_keeps_other_results() {
        for workers in [1, 4] {
            let out = run_isolated(16, workers, |i| {
                assert!(i != 7, "task 7 exploded");
                i * 2
            });
            assert_eq!(out.len(), 16);
            for (i, slot) in out.iter().enumerate() {
                if i == 7 {
                    let err = slot.as_ref().unwrap_err();
                    assert!(err.contains("task 7 exploded"), "got {err}");
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i * 2);
                }
            }
        }
    }

    #[test]
    fn isolated_handles_non_string_panic_payload() {
        let out = run_isolated(2, 1, |i| {
            if i == 1 {
                std::panic::panic_any(42_u32);
            }
            i
        });
        assert_eq!(out[0], Ok(0));
        assert!(out[1].as_ref().unwrap_err().contains("panicked"));
    }

    #[test]
    fn isolated_survives_many_panics_across_workers() {
        // Every odd task panics; all even results must still come back —
        // this is the "poisoned mutexes must not take the run down" case.
        let out = run_isolated(40, 8, |i| {
            assert!(i % 2 == 0, "odd task {i}");
            i
        });
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.is_ok(), i % 2 == 0, "slot {i}: {slot:?}");
        }
    }
}
