//! Versioned JSON run artifacts and the tolerance-aware diff.
//!
//! An artifact is the durable record of one plan execution: a
//! `schema_version`, the plan itself (root seed, points, replications),
//! run provenance (worker count, host facts, git commit, timestamp) and
//! one record per task with its measurement and telemetry.
//!
//! Two artifacts from the same plan are comparable with [`diff`]: volatile
//! subtrees — `provenance`, `wall_secs` and telemetry `timers` — are
//! stripped, and numeric leaves are compared within a caller-chosen
//! relative tolerance (0 for exact determinism checks, small positive for
//! cross-platform regression gates).

use std::path::Path;
use std::process::Command;

use crate::json::Json;
use crate::plan::Plan;
use crate::runner::{RunReport, TaskOutcome, TaskRecord};
use crate::HarnessError;

/// Version of the artifact document layout. Bump on breaking layout
/// changes; the diff tool refuses to compare mismatched versions.
///
/// v2 added per-task `status` / `attempts` fields (plus `error` on
/// failed tasks) and ok/failed/retried counts in `provenance`.
pub const SCHEMA_VERSION: u64 = 2;

/// Keys whose subtrees are run-volatile (timing, environment) and excluded
/// from determinism comparisons.
pub const VOLATILE_KEYS: [&str; 3] = ["provenance", "wall_secs", "timers"];

/// Assembles the artifact document for a fully successful run.
#[must_use]
pub fn build(plan: &Plan, workers: usize, records: &[TaskRecord]) -> Json {
    let tasks = records.iter().map(|r| r.to_json(plan)).collect();
    let retried = records.iter().filter(|r| r.attempts > 1).count();
    assemble(plan, workers, tasks, records.len(), 0, retried, 0)
}

/// Assembles the artifact document for a resilient run, including failed
/// tasks (with their error and attempt count) in `tasks` and outcome
/// counts in `provenance`.
#[must_use]
pub fn build_run(plan: &Plan, workers: usize, report: &RunReport) -> Json {
    let tasks = report
        .outcomes
        .iter()
        .map(|outcome| match outcome {
            TaskOutcome::Ok(record) => record.to_json(plan),
            TaskOutcome::Failed(failure) => failure.to_json(plan),
        })
        .collect();
    assemble(
        plan,
        workers,
        tasks,
        report.n_ok(),
        report.n_failed(),
        report.n_retried(),
        report.resumed,
    )
}

fn assemble(
    plan: &Plan,
    workers: usize,
    tasks: Vec<Json>,
    n_ok: usize,
    n_failed: usize,
    n_retried: usize,
    resumed: usize,
) -> Json {
    let mut doc = Json::object();
    doc.set("schema_version", SCHEMA_VERSION);
    doc.set("experiment", plan.name());
    doc.set("plan", plan.to_json());
    let mut prov = provenance(workers);
    prov.set("tasks_ok", n_ok);
    prov.set("tasks_failed", n_failed);
    prov.set("tasks_retried", n_retried);
    prov.set("tasks_resumed", resumed);
    doc.set("provenance", prov);
    doc.set("tasks", Json::Array(tasks));
    doc
}

/// Run provenance: everything needed to interpret (but not to compare)
/// the artifact.
fn provenance(workers: usize) -> Json {
    let mut node = Json::object();
    node.set("workers", workers);
    node.set("os", std::env::consts::OS);
    node.set("arch", std::env::consts::ARCH);
    node.set("cpus", crate::pool::default_workers());
    node.set("git_commit", git_commit().as_deref().unwrap_or("unknown"));
    // dpm-lint: allow(nondeterminism, reason = "provenance stamp for humans; the artifact diff ignores the provenance subtree")
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    node.set("unix_time", unix_time);
    node
}

fn git_commit() -> Option<String> {
    let output = Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let commit = String::from_utf8(output.stdout).ok()?;
    let commit = commit.trim();
    if commit.is_empty() {
        None
    } else {
        Some(commit.to_owned())
    }
}

/// Writes `doc` to `path` atomically, creating parent directories as
/// needed: the document lands in a same-directory temporary file first
/// and is renamed into place, so a crash mid-write can never leave a
/// truncated artifact where a previous good one stood.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write(path: impl AsRef<Path>, doc: &Json) -> Result<(), HarnessError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name =
        path.file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| HarnessError::InvalidArgument {
                reason: format!("artifact path `{}` has no file name", path.display()),
            })?;
    // Same directory so the final rename cannot cross filesystems.
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
    let written = std::fs::write(&tmp, doc.render()).and_then(|()| std::fs::rename(&tmp, path));
    if written.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    written?;
    Ok(())
}

/// Reads and parses an artifact.
///
/// # Errors
///
/// Propagates filesystem failures and JSON parse errors.
pub fn read(path: impl AsRef<Path>) -> Result<Json, HarnessError> {
    let text = std::fs::read_to_string(path)?;
    Json::parse(&text)
}

/// Returns a copy of `doc` with every volatile subtree
/// (see [`VOLATILE_KEYS`]) removed — the canonical comparable form.
#[must_use]
pub fn strip_volatile(doc: &Json) -> Json {
    match doc {
        Json::Object(map) => Json::Object(
            map.iter()
                .filter(|(key, _)| !VOLATILE_KEYS.contains(&key.as_str()))
                .map(|(key, value)| (key.clone(), strip_volatile(value)))
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

/// Compares two artifacts, ignoring volatile subtrees and allowing numeric
/// leaves to differ by a relative tolerance of `tol` (absolute near zero).
/// Returns a human-readable line per difference; empty means equal.
///
/// Artifacts with different `schema_version`s are reported as one
/// difference without descending further.
#[must_use]
pub fn diff(a: &Json, b: &Json, tol: f64) -> Vec<String> {
    let version = |doc: &Json| doc.get("schema_version").cloned();
    if version(a) != version(b) {
        return vec![format!(
            "schema_version: {:?} vs {:?}",
            version(a),
            version(b)
        )];
    }
    let mut out = Vec::new();
    diff_nodes(&strip_volatile(a), &strip_volatile(b), tol, "$", &mut out);
    out
}

fn numbers_match(x: f64, y: f64, tol: f64) -> bool {
    if x == y {
        return true;
    }
    let scale = x.abs().max(y.abs()).max(1.0);
    (x - y).abs() <= tol * scale
}

fn diff_nodes(a: &Json, b: &Json, tol: f64, path: &str, out: &mut Vec<String>) {
    match (a, b) {
        (Json::Object(ma), Json::Object(mb)) => {
            for (key, va) in ma {
                match mb.get(key) {
                    Some(vb) => diff_nodes(va, vb, tol, &format!("{path}.{key}"), out),
                    None => out.push(format!("{path}.{key}: missing on the right")),
                }
            }
            for key in mb.keys() {
                if !ma.contains_key(key) {
                    out.push(format!("{path}.{key}: missing on the left"));
                }
            }
        }
        (Json::Array(va), Json::Array(vb)) => {
            if va.len() != vb.len() {
                out.push(format!("{path}: array length {} vs {}", va.len(), vb.len()));
                return;
            }
            for (i, (xa, xb)) in va.iter().zip(vb).enumerate() {
                diff_nodes(xa, xb, tol, &format!("{path}[{i}]"), out);
            }
        }
        _ => {
            let (na, nb) = (a.as_f64(), b.as_f64());
            let equal = match (na, nb) {
                (Some(x), Some(y)) => numbers_match(x, y, tol),
                _ => a == b,
            };
            if !equal {
                out.push(format!("{path}: {} vs {}", summarize(a), summarize(b)));
            }
        }
    }
}

fn summarize(node: &Json) -> String {
    match node {
        Json::Object(_) => "<object>".to_owned(),
        Json::Array(_) => "<array>".to_owned(),
        leaf => {
            let mut text = leaf.render();
            text.truncate(text.trim_end().len());
            text
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPoint;
    use crate::runner::run_plan;

    fn sample(workers: usize) -> Json {
        let plan = Plan::new("unit", 5)
            .replications(2)
            .point(PlanPoint::new("p").with("x", 1.5));
        let records = run_plan(&plan, workers, |ctx| {
            ctx.telemetry.incr("n", ctx.seed % 7);
            ctx.telemetry.time("work", || ());
            let mut out = Json::object();
            #[allow(clippy::cast_precision_loss)]
            out.set("metric", (ctx.seed % 100) as f64 / 3.0);
            Ok(out)
        })
        .unwrap();
        build(&plan, workers, &records)
    }

    #[test]
    fn document_has_schema_version_and_provenance() {
        let doc = sample(1);
        assert_eq!(doc.get("schema_version"), Some(&Json::Int(2)));
        let prov = doc.get("provenance").unwrap();
        assert!(prov.get("workers").is_some());
        assert!(prov.get("git_commit").is_some());
        assert_eq!(doc.get("experiment"), Some(&Json::Str("unit".to_owned())));
    }

    #[test]
    fn different_worker_counts_diff_clean() {
        let a = sample(1);
        let b = sample(4);
        assert_eq!(diff(&a, &b, 0.0), Vec::<String>::new());
        // And the stripped canonical forms render byte-identically.
        assert_eq!(strip_volatile(&a).render(), strip_volatile(&b).render());
    }

    #[test]
    fn strip_removes_timers_but_keeps_counters() {
        let doc = sample(1);
        let stripped = strip_volatile(&doc);
        let rendered = stripped.render();
        assert!(!rendered.contains("wall_secs"));
        assert!(!rendered.contains("timers"));
        assert!(rendered.contains("counters"));
        assert!(stripped.get("provenance").is_none());
    }

    #[test]
    fn diff_reports_value_changes_with_paths() {
        let mut a = Json::object();
        a.set("schema_version", SCHEMA_VERSION);
        a.set("v", 1.0);
        let mut b = Json::object();
        b.set("schema_version", SCHEMA_VERSION);
        b.set("v", 1.5);
        let report = diff(&a, &b, 0.0);
        assert_eq!(report.len(), 1);
        assert!(report[0].starts_with("$.v:"), "{report:?}");
        // Within tolerance: clean.
        assert!(diff(&a, &b, 0.4).is_empty());
    }

    #[test]
    fn diff_reports_missing_keys_and_length_mismatches() {
        let mut a = Json::object();
        a.set("schema_version", SCHEMA_VERSION);
        a.set("only_a", 1u64);
        a.set("list", vec![Json::Int(1)]);
        let mut b = Json::object();
        b.set("schema_version", SCHEMA_VERSION);
        b.set("only_b", 1u64);
        b.set("list", vec![Json::Int(1), Json::Int(2)]);
        let report = diff(&a, &b, 0.0);
        assert_eq!(report.len(), 3, "{report:?}");
    }

    #[test]
    fn mismatched_schema_versions_short_circuit() {
        let mut a = Json::object();
        a.set("schema_version", 1u64);
        let mut b = Json::object();
        b.set("schema_version", 2u64);
        let report = diff(&a, &b, 0.0);
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("schema_version"));
    }

    #[test]
    fn write_read_round_trip() {
        let doc = sample(2);
        let dir = std::env::temp_dir().join("dpm-harness-test");
        let path = dir.join("nested/artifact.json");
        write(&path, &doc).unwrap();
        let loaded = read(&path).unwrap();
        assert_eq!(loaded, doc);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_run_reports_failures_and_counts() {
        use crate::runner::{run_plan_resilient, FaultPlan, RunConfig};
        let plan = Plan::new("unit", 5)
            .replications(2)
            .point(PlanPoint::new("p").with("x", 1.5));
        let config = RunConfig::new(2)
            .max_attempts(2)
            .faults(FaultPlan::new().error_on(0, 1).panic_on(1, u32::MAX));
        let report = run_plan_resilient(&plan, &config, |_| Ok(Json::object())).unwrap();
        let doc = build_run(&plan, 2, &report);
        let prov = doc.get("provenance").unwrap();
        assert_eq!(prov.get("tasks_ok"), Some(&Json::Int(1)));
        assert_eq!(prov.get("tasks_failed"), Some(&Json::Int(1)));
        assert_eq!(prov.get("tasks_retried"), Some(&Json::Int(2)));
        let tasks = match doc.get("tasks").unwrap() {
            Json::Array(items) => items,
            other => panic!("tasks not an array: {other:?}"),
        };
        assert_eq!(tasks[0].get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(tasks[0].get("attempts"), Some(&Json::Int(2)));
        assert_eq!(
            tasks[1].get("status").and_then(Json::as_str),
            Some("failed")
        );
        assert!(tasks[1]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("injected panic"));
        assert!(tasks[1].get("result").is_none());
    }

    #[test]
    fn write_is_atomic_no_temp_residue() {
        let doc = sample(1);
        let dir = std::env::temp_dir().join(format!("dpm-harness-atomic-{}", std::process::id()));
        let path = dir.join("artifact.json");
        write(&path, &doc).unwrap();
        // Overwrite in place: the old artifact must be replaced, and no
        // temporary files may linger.
        write(&path, &doc).unwrap();
        assert_eq!(read(&path).unwrap(), doc);
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "artifact.json")
            .collect();
        assert!(residue.is_empty(), "{residue:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relative_tolerance_scales_with_magnitude() {
        assert!(numbers_match(1000.0, 1000.5, 1e-3));
        assert!(!numbers_match(1.0, 1.5, 1e-3));
        assert!(numbers_match(0.0, 1e-13, 1e-12));
    }
}
