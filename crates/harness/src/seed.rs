//! Deterministic per-task seed derivation.
//!
//! Every task of an experiment plan — one (sweep point, replication) pair —
//! gets its own RNG seed derived from the plan's root seed by keying a
//! ChaCha8 stream with `(root, point, replication)` and drawing one word.
//! The derivation is a pure function of the *indices*, never of execution
//! order, so a plan run on one worker and on N workers feeds every task the
//! same randomness — parallel output is bit-identical to serial.
//!
//! ChaCha8 (rather than, say, `root ^ index`) keeps sibling streams
//! statistically independent: neighboring task indices produce unrelated
//! seeds, so replication averages do not inherit lockstep correlations.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Domain-separation tag so harness-derived seeds can never collide with a
/// user's own direct `seed_from_u64` streams.
const DOMAIN_TAG: u64 = 0x6470_6d2d_6861_726e; // "dpm-harn"

/// Domain-separation tag for retry attempts, XORed with the attempt number.
/// Distinct from [`DOMAIN_TAG`] in its high bytes, so no retry seed can
/// collide with any first-attempt seed.
const RETRY_TAG: u64 = 0x6470_6d2d_7274_7279; // "dpm-rtry"

/// Domain-separation tag for the serving runtime's per-system streams
/// (`dpm-serve` shards). Distinct from [`DOMAIN_TAG`] and [`RETRY_TAG`],
/// so a serve fleet can never share a seed with a harness plan run from
/// the same root.
const SERVE_TAG: u64 = 0x6470_6d2d_7372_7665; // "dpm-srve"

/// Domain-separation tag for serving-runtime retry attempts, XORed with
/// the attempt number. Distinct from every other tag, so a retried
/// system's stream can collide with neither another system's first
/// attempt nor any harness-plan (or plan-retry) seed.
const SERVE_RETRY_TAG: u64 = 0x6470_6d2d_7376_7274; // "dpm-svrt"

/// Keys a ChaCha8 stream with four little-endian words and draws one.
fn keyed_word(words: [u64; 4]) -> u64 {
    let mut key = [0u8; 32];
    for (chunk, word) in key.chunks_exact_mut(8).zip(words) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    // dpm-lint: allow(seed_provenance, reason = "this function IS the derivation domain: the key is assembled from the caller's tagged words, never from a constant")
    ChaCha8Rng::from_seed(key).next_u64()
}

/// Derives the RNG seed for one task from the plan's root seed and the
/// task's position in the plan grid.
#[must_use]
pub fn derive_seed(root: u64, point: u64, replication: u64) -> u64 {
    keyed_word([root, point, replication, DOMAIN_TAG])
}

/// Derives the RNG seed for retry `attempt` of a task (0 = first try).
///
/// Attempt 0 is exactly [`derive_seed`] — enabling retries changes nothing
/// for tasks that succeed first time. Later attempts draw fresh but equally
/// deterministic seeds (a function of grid position and attempt number
/// only), so a retried run is reproducible end-to-end: re-running the plan
/// re-derives the same seed for every attempt of every task.
#[must_use]
pub fn derive_attempt_seed(root: u64, point: u64, replication: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return derive_seed(root, point, replication);
    }
    keyed_word([root, point, replication, RETRY_TAG ^ u64::from(attempt)])
}

/// Derives the RNG seed for one simulated system in a `dpm-serve` fleet.
///
/// A pure function of `(root, system_index)` — never of the shard that
/// happens to run the system — so partitioning a fleet across any number
/// of shards feeds every system identical randomness and the merged
/// output is bit-identical to a single-shard run.
#[must_use]
pub fn derive_serve_seed(root: u64, system: u64) -> u64 {
    keyed_word([root, system, 0, SERVE_TAG])
}

/// Derives the RNG seed for retry `attempt` of one serve-fleet system
/// (0 = first try).
///
/// Attempt 0 is exactly [`derive_serve_seed`] — supervision changes
/// nothing for systems that never fail. Later attempts draw fresh seeds
/// from the dedicated `SERVE_RETRY_TAG` domain, a pure function of
/// `(root, system, attempt)`, so a supervised fleet re-derives the same
/// seed for every attempt of every system no matter which shard runs it
/// or how often the process is killed and resumed.
#[must_use]
pub fn derive_serve_attempt_seed(root: u64, system: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return derive_serve_seed(root, system);
    }
    keyed_word([root, system, 0, SERVE_RETRY_TAG ^ u64::from(attempt)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(7, 3, 1), derive_seed(7, 3, 1));
    }

    #[test]
    fn serve_seeds_are_deterministic_and_distinct() {
        let mut seen = HashSet::new();
        for root in 0..4u64 {
            for system in 0..500u64 {
                let seed = derive_serve_seed(root, system);
                assert_eq!(seed, derive_serve_seed(root, system));
                assert!(seen.insert(seed), "collision at ({root}, {system})");
            }
        }
    }

    #[test]
    fn serve_seeds_do_not_collide_with_plan_seeds() {
        let mut plan: HashSet<u64> = HashSet::new();
        for point in 0..40u64 {
            for rep in 0..40u64 {
                plan.insert(derive_seed(5, point, rep));
            }
        }
        for system in 0..1600u64 {
            assert!(!plan.contains(&derive_serve_seed(5, system)));
        }
    }

    #[test]
    fn serve_attempt_zero_matches_plain_serve_derivation() {
        for system in 0..8 {
            assert_eq!(
                derive_serve_attempt_seed(7, system, 0),
                derive_serve_seed(7, system)
            );
        }
    }

    #[test]
    fn serve_attempts_draw_distinct_deterministic_seeds() {
        let mut seen = HashSet::new();
        for attempt in 0..16u32 {
            let seed = derive_serve_attempt_seed(9, 4, attempt);
            assert_eq!(seed, derive_serve_attempt_seed(9, 4, attempt));
            assert!(seen.insert(seed), "attempt {attempt} collided");
        }
    }

    #[test]
    fn serve_retry_seeds_do_not_collide_with_other_domains() {
        let mut others: HashSet<u64> = HashSet::new();
        for point in 0..20u64 {
            for rep in 0..20u64 {
                others.insert(derive_seed(5, point, rep));
                for attempt in 1..4u32 {
                    others.insert(derive_attempt_seed(5, point, rep, attempt));
                }
            }
        }
        for system in 0..400u64 {
            others.insert(derive_serve_seed(5, system));
        }
        for system in 0..400u64 {
            for attempt in 1..4u32 {
                assert!(
                    !others.contains(&derive_serve_attempt_seed(5, system, attempt)),
                    "serve retry seed collided at ({system}, {attempt})"
                );
            }
        }
    }

    #[test]
    fn all_coordinates_matter() {
        let base = derive_seed(7, 3, 1);
        assert_ne!(base, derive_seed(8, 3, 1));
        assert_ne!(base, derive_seed(7, 4, 1));
        assert_ne!(base, derive_seed(7, 3, 2));
    }

    #[test]
    fn no_collisions_over_a_large_grid() {
        let mut seen = HashSet::new();
        for root in 0..4u64 {
            for point in 0..50u64 {
                for rep in 0..50u64 {
                    assert!(seen.insert(derive_seed(root, point, rep)));
                }
            }
        }
    }

    #[test]
    fn attempt_zero_matches_plain_derivation() {
        for rep in 0..8 {
            assert_eq!(derive_attempt_seed(7, 3, rep, 0), derive_seed(7, 3, rep));
        }
    }

    #[test]
    fn attempts_draw_distinct_deterministic_seeds() {
        let mut seen = HashSet::new();
        for attempt in 0..16u32 {
            let seed = derive_attempt_seed(7, 3, 1, attempt);
            assert_eq!(seed, derive_attempt_seed(7, 3, 1, attempt));
            assert!(seen.insert(seed), "attempt {attempt} collided");
        }
    }

    #[test]
    fn retry_seeds_do_not_collide_with_first_attempts() {
        let mut first: HashSet<u64> = HashSet::new();
        for point in 0..20u64 {
            for rep in 0..20u64 {
                first.insert(derive_seed(5, point, rep));
            }
        }
        for point in 0..20u64 {
            for rep in 0..20u64 {
                for attempt in 1..4u32 {
                    assert!(!first.contains(&derive_attempt_seed(5, point, rep, attempt)));
                }
            }
        }
    }

    #[test]
    fn neighboring_tasks_get_unrelated_seeds() {
        // Crude independence check: adjacent indices should not share long
        // runs of identical bits.
        for point in 0..32u64 {
            let a = derive_seed(1, point, 0);
            let b = derive_seed(1, point + 1, 0);
            let same_bits = (a ^ b).count_zeros();
            assert!((8..=56).contains(&same_bits), "{a:x} vs {b:x}");
        }
    }
}
