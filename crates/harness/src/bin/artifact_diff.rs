//! Tolerance-aware comparison of two run artifacts.
//!
//! ```text
//! artifact_diff --a results/fig4.json --b results/fig4.new.json [--tol 1e-9]
//! ```
//!
//! Volatile subtrees (provenance, wall-clock timers) are ignored; numeric
//! leaves may differ by the relative tolerance. Exit status 0 means the
//! artifacts agree, 1 means they differ, 2 means usage or I/O error.

use std::process::ExitCode;

use dpm_harness::{artifact, cli::Args};

fn run() -> Result<ExitCode, dpm_harness::HarnessError> {
    let args = Args::from_env(&["a", "b", "tol"])?;
    let (Some(path_a), Some(path_b)) = (args.get("a"), args.get("b")) else {
        return Err(dpm_harness::HarnessError::InvalidArgument {
            reason: "usage: artifact_diff --a <file> --b <file> [--tol 1e-9]".to_owned(),
        });
    };
    let tol = args.get_f64("tol", 0.0)?;
    let doc_a = artifact::read(path_a)?;
    let doc_b = artifact::read(path_b)?;
    let report = artifact::diff(&doc_a, &doc_b, tol);
    if report.is_empty() {
        println!("artifacts agree (tol {tol:e})");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("{} difference(s) at tol {tol:e}:", report.len());
        for line in &report {
            println!("  {line}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("artifact_diff: {e}");
            ExitCode::from(2)
        }
    }
}
