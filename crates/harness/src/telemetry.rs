//! Thread-safe telemetry: named counters, gauges, histograms and timers.
//!
//! A [`Registry`] is handed to every task (and can be shared across
//! threads); solver and simulator diagnostics — policy-iteration rounds,
//! final residuals, Gauss–Seidel sweep counts, simulator event totals —
//! are recorded against it and serialized into the run artifact.
//!
//! Metric kinds are kept in separate namespaces on purpose: counters,
//! gauges and histograms are *deterministic* outputs (identical across
//! worker counts and reruns), while timers are wall-clock *measurements*
//! that vary run to run. The artifact diff tool ignores the `timers`
//! subtree and compares everything else exactly, which is what makes
//! "bit-identical modulo timing" checkable.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
// dpm-lint: allow(nondeterminism, reason = "timers are the one explicitly wall-clock metric namespace; the artifact diff ignores the timers subtree")
use std::time::Instant;

use crate::json::Json;

/// Summary statistics of an observed value stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    fn new() -> Summary {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum / self.count as f64
            }
        }
    }

    fn to_json(self) -> Json {
        let mut node = Json::object();
        node.set("count", self.count);
        node.set("sum", Json::num(self.sum));
        node.set("mean", Json::num(self.mean()));
        if self.count > 0 {
            node.set("min", Json::num(self.min));
            node.set("max", Json::num(self.max));
        }
        node
    }
}

#[derive(Debug, Default)]
struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Summary>,
    timers: BTreeMap<String, Summary>,
}

/// A thread-safe registry of named metrics.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Metrics>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Locks the metric store, recovering from poisoning: the maps hold
    /// plain counters and summaries that stay valid whatever a panicking
    /// task interrupted (the pool.rs convention).
    fn locked(&self) -> MutexGuard<'_, Metrics> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `by` to the counter `name`.
    pub fn incr(&self, name: &str, by: u64) {
        let mut m = self.locked();
        *m.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        let mut m = self.locked();
        m.gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut m = self.locked();
        m.histograms
            .entry(name.to_owned())
            .or_insert_with(Summary::new)
            .record(value);
    }

    /// Records an already-measured duration (in seconds) into the timer
    /// `name`.
    pub fn record_secs(&self, name: &str, secs: f64) {
        let mut m = self.locked();
        m.timers
            .entry(name.to_owned())
            .or_insert_with(Summary::new)
            .record(secs);
    }

    /// Times `body`, records the wall-clock duration under `name`, and
    /// returns the body's value.
    pub fn time<T>(&self, name: &str, body: impl FnOnce() -> T) -> T {
        // dpm-lint: allow(nondeterminism, reason = "wall-clock measurement is this method's purpose; results land in the diff-ignored timers namespace")
        let start = Instant::now();
        let value = body();
        self.record_secs(name, start.elapsed().as_secs_f64());
        value
    }

    /// The counter's current value (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let m = self.locked();
        m.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's current value, if set.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let m = self.locked();
        m.gauges.get(name).copied()
    }

    /// The histogram's summary, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Summary> {
        let m = self.locked();
        m.histograms.get(name).copied()
    }

    /// Serializes the registry: deterministic metrics under `counters` /
    /// `gauges` / `histograms`, wall-clock measurements under `timers`.
    #[must_use]
    pub fn snapshot(&self) -> Json {
        let m = self.locked();
        let mut counters = Json::object();
        for (name, value) in &m.counters {
            counters.set(name, *value);
        }
        let mut gauges = Json::object();
        for (name, value) in &m.gauges {
            gauges.set(name, Json::num(*value));
        }
        let mut histograms = Json::object();
        for (name, summary) in &m.histograms {
            histograms.set(name, summary.to_json());
        }
        let mut timers = Json::object();
        for (name, summary) in &m.timers {
            timers.set(name, summary.to_json());
        }
        let mut node = Json::object();
        node.set("counters", counters);
        node.set("gauges", gauges);
        node.set("histograms", histograms);
        node.set("timers", timers);
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.incr("events", 3);
        r.incr("events", 4);
        assert_eq!(r.counter("events"), 7);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let r = Registry::new();
        r.gauge("residual", 1e-3);
        r.gauge("residual", 1e-9);
        assert_eq!(r.gauge_value("residual"), Some(1e-9));
    }

    #[test]
    fn histograms_summarize() {
        let r = Registry::new();
        for v in [1.0, 2.0, 6.0] {
            r.observe("sweeps", v);
        }
        let s = r.histogram("sweeps").unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 9.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn timers_record_under_their_own_namespace() {
        let r = Registry::new();
        let out = r.time("solve", || 42);
        assert_eq!(out, 42);
        let snap = r.snapshot();
        assert!(snap.get("timers").unwrap().get("solve").is_some());
        assert!(snap.get("histograms").unwrap().get("solve").is_none());
    }

    #[test]
    fn snapshot_is_deterministic_for_deterministic_metrics() {
        let build = || {
            let r = Registry::new();
            r.incr("b", 2);
            r.incr("a", 1);
            r.observe("h", 0.5);
            r.gauge("g", 7.0);
            r.snapshot()
        };
        assert_eq!(build().render(), build().render());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        r.incr("n", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("n"), 8000);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(Summary::new().mean(), 0.0);
    }
}
