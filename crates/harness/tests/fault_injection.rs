//! Fault-injection gate: the resilient runner must lose no results to a
//! crashing task, converge under retry, resume bit-identically from a
//! partial journal at any worker count, and carry the CTMC solver
//! fallback chain through a real pathological model.
//!
//! These tests are the executable form of the failure-handling contract
//! described in DESIGN.md — CI runs a black-box twin of them through the
//! experiment binaries (`--inject-panic`, `--checkpoint`, `--resume`).

use dpm_ctmc::{stationary, Generator};
use dpm_harness::{
    artifact, checkpoint,
    plan::Plan,
    runner::{run_plan_resilient, FaultPlan, RunConfig, TaskCtx, TaskOutcome},
    Json, PlanPoint,
};

/// A deterministic stand-in task: the "measurement" is a pure function of
/// the derived seed, so bit-identity across runs is checkable exactly.
fn measure(ctx: &TaskCtx<'_>) -> Result<Json, String> {
    ctx.telemetry.incr("calls", 1);
    let x = ctx.point.param("x").unwrap().as_f64().unwrap();
    let mut out = Json::object();
    #[allow(clippy::cast_precision_loss)]
    out.set("value", x * (ctx.seed % 10_000) as f64 / 7.0);
    Ok(out)
}

fn plan() -> Plan {
    Plan::new("fault-gate", 777)
        .replications(4)
        .point(PlanPoint::new("a").with("x", 1.0))
        .point(PlanPoint::new("b").with("x", 2.0))
        .point(PlanPoint::new("c").with("x", 3.0))
        .point(PlanPoint::new("d").with("x", 4.0))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dpm-harness-fault-injection");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

#[test]
fn permanent_fault_loses_exactly_one_task() {
    let p = plan();
    let clean = run_plan_resilient(&p, &RunConfig::new(4), measure).unwrap();
    let config = RunConfig::new(4)
        .max_attempts(2)
        .faults(FaultPlan::new().panic_on(5, u32::MAX));
    let report = run_plan_resilient(&p, &config, measure).unwrap();

    assert_eq!(report.n_ok(), p.n_tasks() - 1);
    assert_eq!(report.n_failed(), 1);
    match &report.outcomes[5] {
        TaskOutcome::Failed(failure) => {
            assert_eq!(failure.index, 5);
            assert_eq!(failure.attempts, 2);
            assert!(
                failure.error.contains("injected panic"),
                "{}",
                failure.error
            );
        }
        other => panic!("task 5 should have failed, got {other:?}"),
    }
    // Every other task is bit-identical to the fault-free run.
    for (i, (faulty, clean)) in report.outcomes.iter().zip(&clean.outcomes).enumerate() {
        if i == 5 {
            continue;
        }
        let (faulty, clean) = (faulty.record().unwrap(), clean.record().unwrap());
        assert_eq!(
            (faulty.seed, &faulty.result),
            (clean.seed, &clean.result),
            "task {i}"
        );
    }
    // And the failure is visible in the v2 artifact.
    let doc = artifact::build_run(&p, 4, &report);
    let Some(Json::Array(tasks)) = doc.get("tasks") else {
        panic!("artifact has no tasks array")
    };
    assert_eq!(
        tasks[5].get("status").and_then(Json::as_str),
        Some("failed")
    );
    assert_eq!(tasks[5].get("attempts"), Some(&Json::Int(2)));
    assert!(tasks[5].get("error").is_some());
    let prov = doc.get("provenance").unwrap();
    assert_eq!(prov.get("tasks_failed"), Some(&Json::Int(1)));
}

#[test]
fn retry_converges_and_retried_runs_are_reproducible() {
    let p = plan();
    let config = || {
        RunConfig::new(4)
            .max_attempts(3)
            .faults(FaultPlan::new().error_on(2, 1).panic_on(9, 2))
    };
    let first = run_plan_resilient(&p, &config(), measure).unwrap();
    assert_eq!(first.n_ok(), p.n_tasks());
    assert_eq!(first.n_retried(), 2);
    assert_eq!(first.outcomes[2].attempts(), 2);
    assert_eq!(first.outcomes[9].attempts(), 3);

    // A second identical run — and one at a different worker count — is
    // bit-identical, retries included.
    for workers in [1, 4] {
        let again = run_plan_resilient(&p, &config().max_attempts(3), measure).unwrap();
        let a = artifact::build_run(&p, workers, &first);
        let b = artifact::build_run(&p, workers, &again);
        assert_eq!(artifact::diff(&a, &b, 0.0), Vec::<String>::new());
    }
}

#[test]
fn resume_from_partial_journal_is_bit_identical_at_any_worker_count() {
    let p = plan();
    let full_journal = temp_path("full");
    let full =
        run_plan_resilient(&p, &RunConfig::new(1).checkpoint(&full_journal), measure).unwrap();
    let reference = artifact::build_run(&p, 1, &full);

    // Simulate a kill after 6 completed tasks: keep header + 6 entries.
    let text = std::fs::read_to_string(&full_journal).unwrap();
    let partial: String = text.lines().take(7).flat_map(|line| [line, "\n"]).collect();
    let partial_journal = temp_path("partial");
    std::fs::write(&partial_journal, partial).unwrap();

    for workers in [1, 2, 8] {
        let continued_journal = temp_path(&format!("continued-{workers}"));
        let report = run_plan_resilient(
            &p,
            &RunConfig::new(workers)
                .resume(&partial_journal)
                .checkpoint(&continued_journal),
            measure,
        )
        .unwrap();
        assert_eq!(report.resumed, 6);
        assert_eq!(report.n_ok(), p.n_tasks());
        let resumed_doc = artifact::build_run(&p, workers, &report);
        assert_eq!(
            artifact::diff(&reference, &resumed_doc, 0.0),
            Vec::<String>::new()
        );
        // The continued journal is itself a complete resume source.
        let restored = checkpoint::load_completed(&continued_journal, &p).unwrap();
        assert_eq!(restored.len(), p.n_tasks());
        std::fs::remove_file(&continued_journal).ok();
    }
    std::fs::remove_file(&full_journal).ok();
    std::fs::remove_file(&partial_journal).ok();
}

#[test]
fn resume_from_v2_artifact_reruns_only_failures() {
    let p = plan();
    let config = RunConfig::new(2)
        .max_attempts(1)
        .faults(FaultPlan::new().error_on(3, u32::MAX));
    let broken = run_plan_resilient(&p, &config, measure).unwrap();
    assert_eq!(broken.n_failed(), 1);
    let artifact_path = temp_path("artifact");
    artifact::write(&artifact_path, &artifact::build_run(&p, 2, &broken)).unwrap();

    let report =
        run_plan_resilient(&p, &RunConfig::new(2).resume(&artifact_path), measure).unwrap();
    assert_eq!(report.resumed, p.n_tasks() - 1);
    assert_eq!(report.n_ok(), p.n_tasks());
    // The healed run equals a fault-free one exactly.
    let clean = run_plan_resilient(&p, &RunConfig::new(2), measure).unwrap();
    let a = artifact::build_run(&p, 2, &report);
    let b = artifact::build_run(&p, 2, &clean);
    assert_eq!(artifact::diff(&a, &b, 0.0), Vec::<String>::new());
    std::fs::remove_file(&artifact_path).ok();
}

/// A reducible two-class chain: dense LU rejects it as `Singular`, so a
/// task built on the fallback-armed `Solver` only succeeds if the
/// escalation chain engages — proving the solver fallback is reachable
/// from inside a harness task.
#[test]
fn solver_fallback_chain_carries_a_pathological_model_through_the_harness() {
    let p = Plan::new("fallback-gate", 13)
        .replications(2)
        .point(PlanPoint::new("reducible"));
    let report = run_plan_resilient(&p, &RunConfig::new(2), |ctx| {
        let mut b = Generator::builder(4);
        b.add_rate(0, 1, 1.0);
        b.add_rate(1, 0, 2.0);
        b.add_rate(2, 3, 3.0);
        b.add_rate(3, 2, 1.0);
        let g = b.build().map_err(|e| e.to_string())?;
        let (pi, stats) = stationary::Solver::new(stationary::FALLBACK_CHAIN[0])
            .with_default_fallback()
            .solve(&g)
            .map_err(|e| e.to_string())?;
        ctx.telemetry
            .incr("solver.escalations", stats.escalation().len() as u64);
        let mut out = Json::object();
        out.set("sum", Json::num(pi.iter().sum()));
        out.set("escalated", stats.escalated());
        out.set("method", format!("{:?}", stats.method()).as_str());
        Ok(out)
    })
    .unwrap();
    assert_eq!(report.n_ok(), 2);
    for outcome in &report.outcomes {
        let record = outcome.record().unwrap();
        assert_eq!(record.result.get("escalated"), Some(&Json::Bool(true)));
        assert!((record.result.get("sum").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-10);
        let escalations = record
            .telemetry
            .get("counters")
            .unwrap()
            .get("solver.escalations");
        assert!(escalations.and_then(Json::as_f64).unwrap() >= 1.0);
    }
}
