//! Solve-phase determinism: a [`SolvePlan`] run with 1 worker and with N
//! workers must produce bit-identical records — same plan order, same
//! per-task seeds, same float bit patterns in every output.
//!
//! This is the solve-phase twin of the simulation determinism gate: the
//! weight sweep and constrained bisection route through the same
//! work-stealing pool, and nothing about scheduling may leak into the
//! results.

use dpm_core::{optimize, PmSystem, SpModel, SrModel};
use dpm_harness::{solve, PlanPoint, SolvePlan};

fn system() -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters"))
        .requestor(SrModel::poisson(1.0 / 6.0).expect("positive rate"))
        .capacity(3)
        .instant_rate(100.0)
        .build()
        .expect("valid system")
}

fn plan() -> SolvePlan {
    let mut plan = SolvePlan::new("solve-determinism-gate", 20_260_806);
    for w in [0.05, 0.5, 2.0, 8.0, 40.0] {
        plan = plan.point(PlanPoint::new(format!("w={w}")).with("weight", w));
    }
    plan
}

/// Everything schedule-sensitive about one solve, down to float bits.
type Fingerprint = (usize, u64, Vec<usize>, u64, u64, usize);

fn sweep(workers: usize) -> Vec<Fingerprint> {
    let sys = system();
    let records = solve::run_solve_plan(&plan(), workers, |ctx| {
        let w = ctx.point.param("weight").unwrap().as_f64().unwrap();
        optimize::optimal_policy(&sys, w).map_err(|e| e.to_string())
    })
    .expect("solvable at every weight");
    records
        .iter()
        .enumerate()
        .map(|(at, record)| {
            assert_eq!(at, record.index, "records must come back in plan order");
            let solution = &record.output;
            (
                record.index,
                plan().task_seed(record.index),
                solution
                    .policy()
                    .to_mdp_policy(&sys)
                    .unwrap()
                    .actions()
                    .to_vec(),
                solution.metrics().power().to_bits(),
                solution.metrics().queue_length().to_bits(),
                solution.iterations(),
            )
        })
        .collect()
}

#[test]
fn one_worker_and_n_workers_are_bit_identical() {
    let reference = sweep(1);
    assert_eq!(reference.len(), 5);
    for workers in [2, 3, 8] {
        assert_eq!(sweep(workers), reference, "workers = {workers}");
    }
}

#[test]
fn task_seeds_depend_on_plan_position_not_scheduling() {
    let p = plan();
    let seeds: Vec<u64> = (0..p.n_points()).map(|i| p.task_seed(i)).collect();
    let again: Vec<u64> = (0..p.n_points()).map(|i| p.task_seed(i)).collect();
    assert_eq!(seeds, again);
    let distinct: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        seeds.len(),
        "per-task seeds must be distinct"
    );
}
