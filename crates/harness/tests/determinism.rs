//! End-to-end determinism: a real simulation plan run with 1 worker and
//! with N workers must produce byte-identical artifacts modulo the
//! volatile (timing/provenance) fields.
//!
//! This is the property the whole harness design exists to guarantee —
//! seeds derive from grid position, never from scheduling — and the CI
//! gate that keeps parallel speedups from costing reproducibility.

use dpm_core::SpModel;
use dpm_harness::{artifact, plan::Plan, runner, Json, PlanPoint, TaskCtx};
use dpm_sim::controller::GreedyController;
use dpm_sim::workload::PoissonWorkload;
use dpm_sim::{SimConfig, Simulator};

/// A small but real task: simulate the paper's server under a greedy
/// controller at the point's arrival rate, seeded from the harness.
fn simulate(ctx: &TaskCtx<'_>) -> Result<Json, String> {
    let task = || -> Result<Json, Box<dyn std::error::Error>> {
        let rate = ctx.point.param("lambda").unwrap().as_f64().unwrap();
        let provider = SpModel::dac99_server()?;
        let controller = GreedyController::new(&provider)?;
        let report = Simulator::new(
            provider,
            5,
            PoissonWorkload::new(rate)?,
            controller,
            SimConfig::new(ctx.seed).max_requests(400),
        )
        .run()?;
        ctx.telemetry.incr("sim.events", report.events());
        ctx.telemetry
            .incr("sim.consultations", report.consultations());
        ctx.telemetry
            .time("sim.run", || std::hint::black_box(report.duration()));
        let mut out = Json::object();
        out.set("power", Json::num(report.average_power()));
        out.set("queue", Json::num(report.average_queue_length()));
        out.set("wait", Json::num(report.average_waiting_time()));
        Ok(out)
    };
    task().map_err(|e| e.to_string())
}

fn plan() -> Plan {
    Plan::new("determinism-gate", 20_260_806)
        .replications(4)
        .point(PlanPoint::new("slow").with("lambda", 1.0 / 8.0))
        .point(PlanPoint::new("fast").with("lambda", 1.0 / 3.0))
}

#[test]
fn serial_and_parallel_artifacts_agree() {
    let p = plan();
    let serial = runner::run_plan(&p, 1, simulate).unwrap();
    let parallel = runner::run_plan(&p, 4, simulate).unwrap();
    assert_eq!(serial.len(), 8);

    let doc_serial = artifact::build(&p, 1, &serial);
    let doc_parallel = artifact::build(&p, 4, &parallel);

    // Tolerance-zero diff is clean: every deterministic leaf is equal.
    assert_eq!(
        artifact::diff(&doc_serial, &doc_parallel, 0.0),
        Vec::<String>::new()
    );

    // Stronger: the canonical comparable forms render byte-identically.
    assert_eq!(
        artifact::strip_volatile(&doc_serial).render(),
        artifact::strip_volatile(&doc_parallel).render()
    );

    // And the round trip through disk preserves the comparison.
    let dir = std::env::temp_dir().join(format!("dpm-determinism-{}", std::process::id()));
    let path_serial = dir.join("serial.json");
    let path_parallel = dir.join("parallel.json");
    artifact::write(&path_serial, &doc_serial).unwrap();
    artifact::write(&path_parallel, &doc_parallel).unwrap();
    let loaded_serial = artifact::read(&path_serial).unwrap();
    let loaded_parallel = artifact::read(&path_parallel).unwrap();
    assert_eq!(
        artifact::diff(&loaded_serial, &loaded_parallel, 0.0).len(),
        0
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_sweep_is_schedule_independent() {
    let p = plan();
    let reference: Vec<String> = runner::run_plan(&p, 1, simulate)
        .unwrap()
        .iter()
        .map(|r| r.result.render())
        .collect();
    for workers in [2, 3, 8] {
        let rendered: Vec<String> = runner::run_plan(&p, workers, simulate)
            .unwrap()
            .iter()
            .map(|r| r.result.render())
            .collect();
        assert_eq!(rendered, reference, "workers = {workers}");
    }
}
