//! Property tests for the simplex solver: cross-validated against
//! brute-force vertex enumeration on random small LPs.

use dpm_lp::{solve, Outcome, Problem, Relation};
use proptest::prelude::*;

/// Random bounded 2-variable maximization LP with `≤` constraints. A box
/// constraint guarantees boundedness and feasibility of the origin.
fn bounded_lp_2d() -> impl Strategy<Value = Problem> {
    let objective = prop::collection::vec(0.1f64..5.0, 2);
    let constraints = prop::collection::vec((0.0f64..4.0, 0.0f64..4.0, 1.0f64..20.0), 0..6);
    (objective, constraints).prop_map(|(obj, cons)| {
        let mut p = Problem::maximize(obj).expect("non-empty objective");
        p.add_constraint(vec![1.0, 0.0], Relation::Le, 10.0)
            .expect("arity");
        p.add_constraint(vec![0.0, 1.0], Relation::Le, 10.0)
            .expect("arity");
        for (a, b, rhs) in cons {
            p.add_constraint(vec![a, b], Relation::Le, rhs)
                .expect("arity");
        }
        p
    })
}

/// Brute force: enumerate all intersections of constraint pairs (including
/// the axes), keep feasible points, return the best objective value.
fn brute_force_optimum(p: &Problem) -> f64 {
    let mut lines: Vec<(f64, f64, f64)> = vec![(1.0, 0.0, 0.0), (0.0, 1.0, 0.0)];
    for c in p.constraints() {
        lines.push((c.coeffs()[0], c.coeffs()[1], c.rhs()));
    }
    let mut best = f64::NEG_INFINITY;
    for i in 0..lines.len() {
        for j in (i + 1)..lines.len() {
            let (a1, b1, r1) = lines[i];
            let (a2, b2, r2) = lines[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-9 {
                continue;
            }
            let x = (r1 * b2 - r2 * b1) / det;
            let y = (a1 * r2 - a2 * r1) / det;
            if p.is_feasible(&[x, y], 1e-7) {
                best = best.max(p.objective_at(&[x, y]));
            }
        }
    }
    best
}

proptest! {
    #[test]
    fn simplex_matches_vertex_enumeration(p in bounded_lp_2d()) {
        let solution = solve(&p).expect("within pivot budget")
            .optimal()
            .expect("bounded and feasible by construction");
        let brute = brute_force_optimum(&p);
        prop_assert!(
            (solution.objective() - brute).abs() < 1e-6 * (1.0 + brute.abs()),
            "simplex {} vs brute force {brute}",
            solution.objective()
        );
    }

    #[test]
    fn solutions_are_feasible(p in bounded_lp_2d()) {
        let solution = solve(&p).expect("within pivot budget")
            .optimal()
            .expect("bounded and feasible by construction");
        prop_assert!(p.is_feasible(solution.variables(), 1e-6));
    }

    #[test]
    fn objective_value_is_consistent(p in bounded_lp_2d()) {
        let solution = solve(&p).expect("within pivot budget")
            .optimal()
            .expect("bounded and feasible by construction");
        let recomputed = p.objective_at(solution.variables());
        prop_assert!((recomputed - solution.objective()).abs() < 1e-7);
    }

    #[test]
    fn adding_a_constraint_never_improves_the_optimum(
        (p, a, b, rhs) in (bounded_lp_2d(), 0.1f64..3.0, 0.1f64..3.0, 0.5f64..15.0)
    ) {
        let before = solve(&p).expect("budget").optimal().expect("solvable").objective();
        let mut tighter = p.clone();
        tighter.add_constraint(vec![a, b], Relation::Le, rhs).expect("arity");
        match solve(&tighter).expect("budget") {
            Outcome::Optimal(s) => prop_assert!(s.objective() <= before + 1e-7),
            Outcome::Infeasible => {} // also a non-improvement
            Outcome::Unbounded => prop_assert!(false, "bounded LP became unbounded"),
        }
    }

    #[test]
    fn equality_form_agrees_with_two_inequalities(
        (c0, c1, a, b, rhs) in (0.1f64..2.0, 0.1f64..2.0, 0.2f64..2.0, 0.2f64..2.0, 1.0f64..6.0)
    ) {
        // min c·x s.t. ax + by = rhs  vs  {<= rhs, >= rhs}.
        let mut eq = Problem::minimize(vec![c0, c1]).expect("objective");
        eq.add_constraint(vec![a, b], Relation::Eq, rhs).expect("arity");
        let mut pair = Problem::minimize(vec![c0, c1]).expect("objective");
        pair.add_constraint(vec![a, b], Relation::Le, rhs).expect("arity");
        pair.add_constraint(vec![a, b], Relation::Ge, rhs).expect("arity");
        let s1 = solve(&eq).expect("budget").optimal().expect("feasible");
        let s2 = solve(&pair).expect("budget").optimal().expect("feasible");
        prop_assert!((s1.objective() - s2.objective()).abs() < 1e-7);
    }
}
