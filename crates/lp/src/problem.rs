use std::fmt;

use crate::LpError;

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Minimize => write!(f, "minimize"),
            Objective::Maximize => write!(f, "maximize"),
        }
    }
}

/// Relation between a constraint's left-hand side and its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Left-hand side `≤` right-hand side.
    Le,
    /// Left-hand side `≥` right-hand side.
    Ge,
    /// Left-hand side `=` right-hand side.
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::Le => write!(f, "<="),
            Relation::Ge => write!(f, ">="),
            Relation::Eq => write!(f, "="),
        }
    }
}

/// A single linear constraint `coeffs · x  (≤ | ≥ | =)  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

impl Constraint {
    /// Coefficient vector of the left-hand side.
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The relation between the sides.
    #[must_use]
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// Right-hand side constant.
    #[must_use]
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Evaluates the left-hand side at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the coefficient count.
    #[must_use]
    pub fn lhs_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coeffs.len(), "point has wrong dimension");
        self.coeffs.iter().zip(x).map(|(a, b)| a * b).sum()
    }

    /// Returns `true` if `x` satisfies the constraint within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the coefficient count.
    #[must_use]
    pub fn is_satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs_at(x);
        match self.relation {
            Relation::Le => lhs <= self.rhs + tol,
            Relation::Ge => lhs >= self.rhs - tol,
            Relation::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A linear program over non-negative variables.
///
/// All variables are implicitly constrained to `x_j ≥ 0` — the natural
/// domain for the occupation-measure LPs this workspace solves (state-action
/// frequencies are probabilities scaled by rates).
///
/// # Examples
///
/// ```
/// use dpm_lp::{Problem, Relation};
///
/// # fn main() -> Result<(), dpm_lp::LpError> {
/// let mut p = Problem::minimize(vec![3.0, 5.0])?;
/// p.add_constraint(vec![1.0, 1.0], Relation::Ge, 2.0)?;
/// assert_eq!(p.n_vars(), 2);
/// assert_eq!(p.constraints().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    objective: Objective,
    costs: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates a minimization problem with the given objective coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::EmptyProblem`] for an empty coefficient vector or
    /// [`LpError::NonFinite`] if a coefficient is not finite.
    pub fn minimize(costs: Vec<f64>) -> Result<Self, LpError> {
        Problem::new(Objective::Minimize, costs)
    }

    /// Creates a maximization problem with the given objective coefficients.
    ///
    /// # Errors
    ///
    /// As [`Problem::minimize`].
    pub fn maximize(costs: Vec<f64>) -> Result<Self, LpError> {
        Problem::new(Objective::Maximize, costs)
    }

    fn new(objective: Objective, costs: Vec<f64>) -> Result<Self, LpError> {
        if costs.is_empty() {
            return Err(LpError::EmptyProblem);
        }
        if costs.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFinite {
                location: "objective".to_owned(),
            });
        }
        Ok(Problem {
            objective,
            costs,
            constraints: Vec::new(),
        })
    }

    /// Adds the constraint `coeffs · x (relation) rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] if `coeffs.len()` differs from
    /// the variable count, or [`LpError::NonFinite`] for bad values.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> Result<&mut Self, LpError> {
        if coeffs.len() != self.costs.len() {
            return Err(LpError::DimensionMismatch {
                expected: self.costs.len(),
                found: coeffs.len(),
            });
        }
        if coeffs.iter().any(|c| !c.is_finite()) || !rhs.is_finite() {
            return Err(LpError::NonFinite {
                location: format!("constraint {}", self.constraints.len()),
            });
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        Ok(self)
    }

    /// Number of structural variables.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.costs.len()
    }

    /// Optimization direction.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Objective coefficients.
    #[must_use]
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// The constraints added so far.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_vars()`.
    #[must_use]
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_vars(), "point has wrong dimension");
        self.costs.iter().zip(x).map(|(a, b)| a * b).sum()
    }

    /// Returns `true` if `x ≥ 0` and every constraint holds within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_vars()`.
    #[must_use]
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.iter().all(|&v| v >= -tol) && self.constraints.iter().all(|c| c.is_satisfied(x, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_inspects() {
        let mut p = Problem::minimize(vec![1.0, 2.0]).unwrap();
        p.add_constraint(vec![1.0, 0.0], Relation::Ge, 1.0).unwrap();
        p.add_constraint(vec![0.0, 1.0], Relation::Le, 5.0).unwrap();
        assert_eq!(p.n_vars(), 2);
        assert_eq!(p.objective(), Objective::Minimize);
        assert_eq!(p.constraints()[0].relation(), Relation::Ge);
        assert_eq!(p.constraints()[1].rhs(), 5.0);
        assert_eq!(p.objective_at(&[3.0, 1.0]), 5.0);
    }

    #[test]
    fn rejects_empty_objective() {
        assert_eq!(
            Problem::minimize(vec![]).unwrap_err(),
            LpError::EmptyProblem
        );
    }

    #[test]
    fn rejects_non_finite() {
        assert!(Problem::minimize(vec![f64::NAN]).is_err());
        let mut p = Problem::minimize(vec![1.0]).unwrap();
        assert!(p
            .add_constraint(vec![f64::INFINITY], Relation::Le, 1.0)
            .is_err());
        assert!(p.add_constraint(vec![1.0], Relation::Le, f64::NAN).is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut p = Problem::minimize(vec![1.0, 2.0]).unwrap();
        let err = p.add_constraint(vec![1.0], Relation::Eq, 0.0).unwrap_err();
        assert_eq!(
            err,
            LpError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn feasibility_check_covers_all_relations() {
        let mut p = Problem::minimize(vec![0.0, 0.0]).unwrap();
        p.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0).unwrap();
        p.add_constraint(vec![0.0, 1.0], Relation::Ge, 1.0).unwrap();
        p.add_constraint(vec![1.0, 1.0], Relation::Eq, 2.0).unwrap();
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[2.0, 0.0], 1e-9));
        assert!(!p.is_feasible(&[-0.5, 2.5], 1e-9));
    }

    #[test]
    fn displays() {
        assert_eq!(Objective::Minimize.to_string(), "minimize");
        assert_eq!(Relation::Ge.to_string(), ">=");
    }
}
