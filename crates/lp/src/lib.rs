//! A dense linear-programming solver (two-phase primal simplex).
//!
//! The paper contrasts its policy-iteration algorithm with the linear
//! programming formulation of Paleologo et al. (DAC 1998) and with the
//! exact solution of the performance-constrained policy-optimization
//! problem, both of which require an LP solver. This crate provides one
//! from scratch:
//!
//! * [`Problem`] — an LP over non-negative variables with `≤`, `≥` and `=`
//!   constraints and a minimize or maximize objective;
//! * [`solve`] — two-phase primal simplex on a dense tableau, using Bland's
//!   rule so degenerate problems (ubiquitous in occupation-measure LPs,
//!   which are highly degenerate) cannot cycle;
//! * [`Outcome`] — optimal solution, or a proof-category of infeasibility /
//!   unboundedness.
//!
//! # Examples
//!
//! ```
//! use dpm_lp::{Problem, Relation, Outcome};
//!
//! # fn main() -> Result<(), dpm_lp::LpError> {
//! // max x + 2y  s.t.  x + y <= 4,  y <= 3,  x,y >= 0.
//! let mut p = Problem::maximize(vec![1.0, 2.0])?;
//! p.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0)?;
//! p.add_constraint(vec![0.0, 1.0], Relation::Le, 3.0)?;
//! match dpm_lp::solve(&p)? {
//!     Outcome::Optimal(sol) => {
//!         assert!((sol.objective() - 7.0).abs() < 1e-9);
//!         assert!((sol.variables()[1] - 3.0).abs() < 1e-9);
//!     }
//!     other => panic!("expected optimal, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;

pub use error::LpError;
pub use problem::{Constraint, Objective, Problem, Relation};
pub use simplex::{solve, Outcome, Solution};
