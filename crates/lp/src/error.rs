use std::error::Error;
use std::fmt;

/// Error type for LP construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A coefficient vector had the wrong length for the problem.
    DimensionMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Length actually provided.
        found: usize,
    },
    /// Input contained a non-finite value.
    NonFinite {
        /// Where the bad value appeared.
        location: String,
    },
    /// The problem has no variables or no meaning (e.g. empty objective).
    EmptyProblem,
    /// The simplex iteration budget was exhausted (should not happen with
    /// Bland's rule unless the problem is enormous).
    IterationLimit {
        /// Number of pivots performed.
        pivots: usize,
    },
    /// The solver lost numerical coherence (e.g. a bounded phase reported
    /// an unbounded ray due to rounding on badly scaled data).
    Numerical {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "coefficient vector has length {found}, expected {expected}"
                )
            }
            LpError::NonFinite { location } => {
                write!(f, "non-finite value in {location}")
            }
            LpError::EmptyProblem => write!(f, "problem has no variables"),
            LpError::IterationLimit { pivots } => {
                write!(f, "simplex exceeded iteration limit after {pivots} pivots")
            }
            LpError::Numerical { reason } => write!(f, "numerical failure: {reason}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_lengths() {
        let e = LpError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
