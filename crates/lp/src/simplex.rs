//! Two-phase primal simplex on a dense tableau.

// dpm-lint: allow-file(float_eq, reason = "pivoting skips exact-zero tableau entries (a no-op at any tolerance); numerical tolerances are applied separately via EPS")
use std::fmt;

use dpm_linalg::DMatrix;

use crate::{LpError, Objective, Problem, Relation};

/// Numerical tolerance for reduced costs and feasibility. The constraint
/// system is row- and column-equilibrated before solving, so absolute
/// thresholds act as relative ones.
const EPS: f64 = 1e-9;

/// Entering threshold: a reduced cost must be below `-ENTER_TOL` to enter.
/// Set well above rounding noise so degenerate plateaus are not walked
/// chasing noise-level "improvements" (the final objective error this
/// introduces is removed by the basis refinement).
const ENTER_TOL: f64 = 1e-7;

/// Coefficients above this participate in the ratio test. Must be small:
/// excluding a row with a genuinely positive coefficient lets a pivot step
/// drive that row's right-hand side far negative (feasibility trampling).
const RATIO_TOL: f64 = 1e-9;

/// Preferred minimum pivot element. Within the ratio-test tie window the
/// largest available element is chosen; falling below this is tolerated
/// only when no better element is tied (periodic refactorization repairs
/// the resulting drift).
const PIVOT_TOL: f64 = 1e-7;

/// An optimal solution of a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    variables: Vec<f64>,
    objective: f64,
    pivots: usize,
}

impl Solution {
    /// Optimal values of the structural variables.
    #[must_use]
    pub fn variables(&self) -> &[f64] {
        &self.variables
    }

    /// Optimal objective value (in the problem's own direction: maximal for
    /// a maximization problem).
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Total simplex pivots performed across both phases.
    #[must_use]
    pub fn pivots(&self) -> usize {
        self.pivots
    }
}

/// The three possible outcomes of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A finite optimum was found.
    Optimal(Solution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

impl Outcome {
    /// Returns the solution if optimal, `None` otherwise.
    #[must_use]
    pub fn optimal(self) -> Option<Solution> {
        match self {
            Outcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Optimal(s) => write!(f, "optimal (objective {})", s.objective),
            Outcome::Infeasible => write!(f, "infeasible"),
            Outcome::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Refactorize the tableau from the pristine system this often.
const REFACTOR_EVERY: usize = 256;

/// Dense simplex tableau in canonical form.
struct Tableau {
    /// `m x (n_total + 1)` matrix; last column is the right-hand side.
    rows: DMatrix,
    /// The untouched initial system, used for periodic refactorization.
    pristine: DMatrix,
    /// `basis[i]` is the column that is basic in row `i`.
    basis: Vec<usize>,
    /// Cost vector of the current phase (length `n_total`).
    costs: Vec<f64>,
    /// Reduced-cost row (length `n_total`).
    reduced: Vec<f64>,
    /// Current (phase) objective value.
    objective: f64,
    /// Columns the entering-variable rule may consider.
    eligible: usize,
    pivots: usize,
    pivot_limit: usize,
    /// Use Bland's rule from the first pivot (conservative retry mode).
    force_bland: bool,
}

enum PhaseResult {
    Optimal,
    Unbounded,
}

impl Tableau {
    fn n_total(&self) -> usize {
        self.rows.ncols() - 1
    }

    fn m(&self) -> usize {
        self.rows.nrows()
    }

    fn rhs(&self, i: usize) -> f64 {
        self.rows[(i, self.n_total())]
    }

    /// One simplex phase (minimization): Dantzig's most-negative rule for
    /// speed, falling back to Bland's rule for guaranteed termination once
    /// the pivot count suggests stalling (or from the start when the whole
    /// solve is retried in conservative mode).
    fn run_phase(&mut self) -> Result<PhaseResult, LpError> {
        let bland_after = if self.force_bland {
            self.pivots
        } else {
            self.pivots + 20 * (self.m() + self.n_total())
        };
        loop {
            let entering = if self.pivots < bland_after {
                // Dantzig: most negative reduced cost.
                (0..self.eligible)
                    .filter(|&j| self.reduced[j] < -ENTER_TOL)
                    .min_by(|&a, &b| {
                        self.reduced[a]
                            .partial_cmp(&self.reduced[b])
                            // dpm-lint: allow(no_panic, reason = "tableau entries stay finite: every pivot divides by a nonzero, tolerance-checked pivot element")
                            .expect("reduced costs are finite")
                    })
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..self.eligible).find(|&j| self.reduced[j] < -ENTER_TOL)
            };
            let Some(entering) = entering else {
                return Ok(PhaseResult::Optimal);
            };
            // Two-pass ratio test. Pass 1: the minimum ratio over every row
            // with a meaningfully positive coefficient (tiny negative rhs
            // from rounding is treated as zero so feasibility is never
            // "improved" through it).
            let mut min_ratio = f64::INFINITY;
            for i in 0..self.m() {
                let a = self.rows[(i, entering)];
                if a > RATIO_TOL {
                    min_ratio = min_ratio.min(self.rhs(i).max(0.0) / a);
                }
            }
            if min_ratio.is_infinite() {
                return Ok(PhaseResult::Unbounded);
            }
            // Pass 2: among rows tied at the minimum, prefer the largest
            // pivot element (numerical stability) — except in conservative
            // mode, where Bland's smallest-basis-index rule keeps the
            // anti-cycling guarantee intact.
            let window = min_ratio + EPS * (1.0 + min_ratio.abs());
            let mut pivot_row = usize::MAX;
            let mut best_pivot = 0.0f64;
            for i in 0..self.m() {
                let a = self.rows[(i, entering)];
                if a > RATIO_TOL && self.rhs(i).max(0.0) / a <= window {
                    let better = if self.force_bland {
                        pivot_row == usize::MAX || self.basis[i] < self.basis[pivot_row]
                    } else {
                        a > best_pivot
                    };
                    if better {
                        pivot_row = i;
                        best_pivot = a;
                    }
                }
            }
            debug_assert_ne!(pivot_row, usize::MAX);
            // A forced tiny pivot injects drift; refactorize right away to
            // contain it.
            let tiny = self.rows[(pivot_row, entering)] < PIVOT_TOL;
            self.pivot(pivot_row, entering)?;
            if tiny {
                self.refactorize()?;
            }
            // Long degenerate runs accumulate rank-one-update drift; rebuild
            // the tableau from the pristine system periodically.
            if self.pivots.is_multiple_of(REFACTOR_EVERY) {
                self.refactorize()?;
            }
        }
    }

    /// Rebuilds `rows = B⁻¹ · pristine` for the current basis and
    /// recomputes the reduced-cost row, eliminating accumulated rounding.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let m = self.m();
        let b_matrix = DMatrix::from_fn(m, m, |r, c| self.pristine[(r, self.basis[c])]);
        let lu = b_matrix.lu().map_err(|_| LpError::Numerical {
            reason: "basis matrix singular during refactorization".to_owned(),
        })?;
        self.rows = lu
            .solve_matrix(&self.pristine)
            .map_err(|_| LpError::Numerical {
                reason: "refactorization solve failed".to_owned(),
            })?;
        let costs = self.costs.clone();
        self.set_costs(&costs);
        Ok(())
    }

    fn pivot(&mut self, pivot_row: usize, entering: usize) -> Result<(), LpError> {
        debug_assert!(
            self.basis
                .iter()
                .enumerate()
                .all(|(i, &b)| b != entering || i == pivot_row),
            "column {entering} is already basic elsewhere (pivot row {pivot_row})"
        );
        self.pivots += 1;
        if self.pivots > self.pivot_limit {
            return Err(LpError::IterationLimit {
                pivots: self.pivots,
            });
        }
        let width = self.rows.ncols();
        let pivot_val = self.rows[(pivot_row, entering)];
        // Normalize the pivot row.
        for c in 0..width {
            self.rows[(pivot_row, c)] /= pivot_val;
        }
        // Eliminate the entering column from the other rows.
        for i in 0..self.m() {
            if i == pivot_row {
                continue;
            }
            let factor = self.rows[(i, entering)];
            if factor != 0.0 {
                for c in 0..width {
                    let delta = factor * self.rows[(pivot_row, c)];
                    self.rows[(i, c)] -= delta;
                }
            }
        }
        // Update the reduced-cost row and objective.
        let factor = self.reduced[entering];
        if factor != 0.0 {
            for (c, r) in self.reduced.iter_mut().enumerate() {
                *r -= factor * self.rows[(pivot_row, c)];
            }
            self.objective += factor * self.rhs(pivot_row);
        }
        self.basis[pivot_row] = entering;
        Ok(())
    }

    /// Recomputes the reduced-cost row for cost vector `costs` (length
    /// `n_total`, zero-padded for slack columns).
    fn set_costs(&mut self, costs: &[f64]) {
        let n = self.n_total();
        let mut stored = costs.to_vec();
        stored.resize(n, 0.0);
        self.costs = stored;
        let mut reduced = self.costs.clone();
        let mut objective = 0.0;
        for i in 0..self.m() {
            let cb = self.costs[self.basis[i]];
            if cb != 0.0 {
                for (c, r) in reduced.iter_mut().enumerate() {
                    *r -= cb * self.rows[(i, c)];
                }
                objective += cb * self.rhs(i);
            }
        }
        self.reduced = reduced;
        self.objective = objective;
    }
}

/// Solves `problem` with the two-phase primal simplex method.
///
/// # Errors
///
/// Returns [`LpError::IterationLimit`] if the pivot budget is exhausted
/// (practically unreachable thanks to Bland's rule).
///
/// # Examples
///
/// ```
/// use dpm_lp::{solve, Outcome, Problem, Relation};
///
/// # fn main() -> Result<(), dpm_lp::LpError> {
/// // min 2x + 3y  s.t.  x + y >= 4
/// let mut p = Problem::minimize(vec![2.0, 3.0])?;
/// p.add_constraint(vec![1.0, 1.0], Relation::Ge, 4.0)?;
/// let sol = solve(&p)?.optimal().expect("feasible and bounded");
/// assert!((sol.objective() - 8.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve(problem: &Problem) -> Result<Outcome, LpError> {
    match solve_with(problem, false) {
        // On numerical incoherence (badly scaled, massively degenerate
        // instances), retry conservatively: Bland's rule from pivot one.
        Err(LpError::Numerical { .. }) => solve_with(problem, true),
        other => other,
    }
}

fn solve_with(problem: &Problem, force_bland: bool) -> Result<Outcome, LpError> {
    let n = problem.n_vars();
    let m = problem.constraints().len();

    // Sign of the objective used internally (always minimize).
    let sense = match problem.objective() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };

    // Count slack columns: one per inequality.
    let n_slack = problem
        .constraints()
        .iter()
        .filter(|c| c.relation() != Relation::Eq)
        .count();
    // Every row gets an artificial; rows whose slack can serve as the
    // initial basis skip theirs at basis-selection time, and unused
    // artificial columns are simply never entered. This keeps indexing
    // simple at the cost of a few dead columns.
    let n_art = m;
    let total = n + n_slack + n_art;

    let mut rows = DMatrix::zeros(m, total + 1);
    let mut basis = vec![0usize; m];

    // Pass 1: structural coefficients and rhs, with row equilibration —
    // scale each row so its largest coefficient is ~1, keeping the tableau
    // numerically coherent when rate coefficients span many orders of
    // magnitude (generator balance equations mix 1e-1 request rates with
    // 1e6 instantaneous-switch surrogates).
    let mut flipped: Vec<Relation> = Vec::with_capacity(m);
    for (i, c) in problem.constraints().iter().enumerate() {
        let row_scale = {
            let m = c.coeffs().iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
            if m > 0.0 {
                1.0 / m
            } else {
                1.0
            }
        };
        // Normalize to non-negative rhs.
        let flip = if c.rhs() < 0.0 { -row_scale } else { row_scale };
        for (j, &a) in c.coeffs().iter().enumerate() {
            rows[(i, j)] = flip * a;
        }
        rows[(i, total)] = flip * c.rhs();
        flipped.push(match (c.relation(), flip < 0.0) {
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        });
    }

    // Pass 2: column equilibration of the structural variables (substitute
    // x_j = y_j / col_max_j), so no structural column dwarfs the others.
    let mut col_scale = vec![1.0f64; n];
    for (j, scale) in col_scale.iter_mut().enumerate() {
        let col_max = (0..m).fold(0.0f64, |acc, i| acc.max(rows[(i, j)].abs()));
        if col_max > 0.0 {
            *scale = col_max;
            for i in 0..m {
                rows[(i, j)] /= col_max;
            }
        }
    }

    // Pass 3: slack and artificial columns, and the starting basis.
    let mut slack_idx = n;
    for (i, relation) in flipped.iter().enumerate() {
        match relation {
            Relation::Le => {
                rows[(i, slack_idx)] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                rows[(i, slack_idx)] = -1.0;
                slack_idx += 1;
                let art = n + n_slack + i;
                rows[(i, art)] = 1.0;
                basis[i] = art;
            }
            Relation::Eq => {
                let art = n + n_slack + i;
                rows[(i, art)] = 1.0;
                basis[i] = art;
            }
        }
    }

    // Keep the pristine (scaled, un-pivoted) system for the final basis
    // refinement: after thousands of rank-one tableau updates, re-solving
    // B x_B = b against the original columns removes accumulated drift.
    let pristine = rows.clone();

    let pivot_limit = 100_000 + 200 * (m + total);
    let mut tableau = Tableau {
        rows,
        pristine: pristine.clone(),
        basis,
        costs: vec![0.0; total],
        reduced: vec![0.0; total],
        objective: 0.0,
        eligible: n + n_slack,
        pivots: 0,
        pivot_limit,
        force_bland,
    };

    // Phase 1: minimize the sum of artificial variables.
    let needs_phase1 = tableau.basis.iter().any(|&b| b >= n + n_slack);
    if needs_phase1 {
        let mut phase1_costs = vec![0.0; total];
        for c in phase1_costs.iter_mut().skip(n + n_slack) {
            *c = 1.0;
        }
        tableau.set_costs(&phase1_costs);
        match tableau.run_phase()? {
            PhaseResult::Unbounded => {
                // The phase-1 objective is bounded below by 0; an unbounded
                // ray can only be numerical noise.
                return Err(LpError::Numerical {
                    reason: "phase-1 objective reported unbounded".to_owned(),
                });
            }
            PhaseResult::Optimal => {}
        }
        if tableau.objective > 1e-7 {
            return Ok(Outcome::Infeasible);
        }
        // Drive any artificial variables out of the (degenerate) basis.
        for i in 0..tableau.m() {
            if tableau.basis[i] >= n + n_slack {
                let entering = (0..n + n_slack)
                    .filter(|&j| tableau.rows[(i, j)].abs() > RATIO_TOL)
                    .max_by(|&a, &b| {
                        tableau.rows[(i, a)]
                            .abs()
                            .partial_cmp(&tableau.rows[(i, b)].abs())
                            // dpm-lint: allow(no_panic, reason = "tableau entries stay finite: every pivot divides by a nonzero, tolerance-checked pivot element")
                            .expect("finite tableau entries")
                    });
                if let Some(j) = entering {
                    tableau.pivot(i, j)?;
                }
                // If no pivot column exists the row is redundant; the
                // artificial stays basic at value zero and never re-enters
                // because artificial columns are not eligible.
            }
        }
    }

    // Phase 2: the real objective (column-scaled to match the variables).
    let mut phase2_costs: Vec<f64> = problem
        .costs()
        .iter()
        .zip(&col_scale)
        .map(|(&c, &s)| sense * c / s)
        .collect();
    phase2_costs.resize(total, 0.0);
    tableau.set_costs(&phase2_costs);
    match tableau.run_phase()? {
        PhaseResult::Unbounded => return Ok(Outcome::Unbounded),
        PhaseResult::Optimal => {}
    }

    // Final basis refinement: recompute the basic values exactly from the
    // pristine system. Falls back to the tableau values if the basis
    // matrix is numerically singular.
    let refined = refine_basis(&pristine, &tableau.basis);
    let mut x = vec![0.0; n];
    let mut objective = 0.0;
    match refined {
        Some(x_basis) => {
            for (i, &b) in tableau.basis.iter().enumerate() {
                let value = x_basis[i].max(0.0);
                objective += phase2_costs.get(b).copied().unwrap_or(0.0) * value;
                if b < n {
                    // Undo the column scaling: x_j = y_j / col_max_j.
                    x[b] = value / col_scale[b];
                }
            }
        }
        None => {
            for i in 0..tableau.m() {
                let b = tableau.basis[i];
                if b < n {
                    x[b] = tableau.rhs(i).max(0.0) / col_scale[b];
                }
            }
            objective = tableau.objective;
        }
    }
    Ok(Outcome::Optimal(Solution {
        variables: x,
        objective: sense * objective,
        pivots: tableau.pivots,
    }))
}

/// Solves `B x_B = b` for the final basis against the pristine system.
fn refine_basis(pristine: &DMatrix, basis: &[usize]) -> Option<Vec<f64>> {
    let m = basis.len();
    let rhs_col = pristine.ncols() - 1;
    let b_matrix = DMatrix::from_fn(m, m, |r, c| pristine[(r, basis[c])]);
    let rhs = dpm_linalg::DVector::from_fn(m, |r| pristine[(r, rhs_col)]);
    let solved = b_matrix.lu().ok()?.solve(&rhs).ok()?;
    Some(solved.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_ok(p: &Problem) -> Outcome {
        solve(p).expect("no iteration limit")
    }

    #[test]
    fn classic_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → obj 36 at (2, 6).
        let mut p = Problem::maximize(vec![3.0, 5.0]).unwrap();
        p.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0).unwrap();
        p.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0)
            .unwrap();
        p.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0)
            .unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-9);
        assert!((s.variables()[0] - 2.0).abs() < 1e-9);
        assert!((s.variables()[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 → (8, 2)? cost 16+6=22 at
        // y=0: x >= 10, x >= 2 → x=10 cost 20. Optimal (10, 0).
        let mut p = Problem::minimize(vec![2.0, 3.0]).unwrap();
        p.add_constraint(vec![1.0, 1.0], Relation::Ge, 10.0)
            .unwrap();
        p.add_constraint(vec![1.0, 0.0], Relation::Ge, 2.0).unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert!((s.objective() - 20.0).abs() < 1e-9);
        assert!((s.variables()[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x = 2, y = 1.
        let mut p = Problem::minimize(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![1.0, 2.0], Relation::Eq, 4.0).unwrap();
        p.add_constraint(vec![1.0, -1.0], Relation::Eq, 1.0)
            .unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert!((s.variables()[0] - 2.0).abs() < 1e-9);
        assert!((s.variables()[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(vec![1.0]).unwrap();
        p.add_constraint(vec![1.0], Relation::Le, 1.0).unwrap();
        p.add_constraint(vec![1.0], Relation::Ge, 2.0).unwrap();
        assert_eq!(solve_ok(&p), Outcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::maximize(vec![1.0, 0.0]).unwrap();
        p.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0).unwrap();
        assert_eq!(solve_ok(&p), Outcome::Unbounded);
    }

    #[test]
    fn minimization_over_nonnegatives_without_constraints_is_zero() {
        let p = Problem::minimize(vec![5.0, 7.0]).unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert_eq!(s.objective(), 0.0);
        assert_eq!(s.variables(), &[0.0, 0.0]);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 means y >= x + 2; min y s.t. that and x >= 0 → y = 2.
        let mut p = Problem::minimize(vec![0.0, 1.0]).unwrap();
        p.add_constraint(vec![1.0, -1.0], Relation::Le, -2.0)
            .unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut p = Problem::maximize(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0).unwrap();
        p.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0).unwrap();
        p.add_constraint(vec![1.0, 1.0], Relation::Le, 2.0).unwrap();
        p.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0).unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Same equality twice: phase 1 leaves a redundant artificial row.
        let mut p = Problem::minimize(vec![1.0, 2.0]).unwrap();
        p.add_constraint(vec![1.0, 1.0], Relation::Eq, 3.0).unwrap();
        p.add_constraint(vec![2.0, 2.0], Relation::Eq, 6.0).unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-9);
        assert!((s.variables()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solution_is_feasible_for_original_problem() {
        let mut p = Problem::maximize(vec![2.0, 4.0, 1.0]).unwrap();
        p.add_constraint(vec![1.0, 3.0, 1.0], Relation::Le, 10.0)
            .unwrap();
        p.add_constraint(vec![2.0, 1.0, 0.0], Relation::Ge, 1.0)
            .unwrap();
        p.add_constraint(vec![1.0, 1.0, 1.0], Relation::Eq, 5.0)
            .unwrap();
        let s = solve_ok(&p).optimal().unwrap();
        assert!(p.is_feasible(s.variables(), 1e-7));
        assert!((p.objective_at(s.variables()) - s.objective()).abs() < 1e-7);
    }

    #[test]
    fn outcome_display_and_accessors() {
        let p = Problem::minimize(vec![1.0]).unwrap();
        let outcome = solve_ok(&p);
        assert!(outcome.to_string().contains("optimal"));
        let s = outcome.optimal().unwrap();
        assert_eq!(s.pivots(), 0);
        assert_eq!(Outcome::Infeasible.optimal(), None);
    }
}
