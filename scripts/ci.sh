#!/usr/bin/env bash
# Local CI gate: formatting, lints and the full test suite — everything a
# change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy (workspace, warnings are errors) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo test ==="
cargo test --workspace -q

echo "CI checks passed."
