#!/usr/bin/env bash
# Local CI gate: formatting, lints, docs and the full test suite —
# everything a change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy (workspace, warnings are errors) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo doc (no deps, warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "=== dpm-lint (determinism / no-panic invariants, findings are errors) ==="
cargo build --release -q -p dpm-lint
./target/release/dpm-lint --deny --baseline scripts/lint_baseline.json

echo "=== dpm-lint seeded-violation smoke (planted Instant must fail the gate) ==="
if ./target/release/dpm-lint --deny crates/lint/tests/fixtures/planted_instant.rs > /dev/null; then
    echo "dpm-lint missed the planted violation" >&2
    exit 1
fi

echo "=== dpm-lint seed-provenance smoke (raw seed_from_u64 in a library path must fail) ==="
if ./target/release/dpm-lint --deny crates/lint/tests/fixtures/seed_taint.rs > /dev/null; then
    echo "dpm-lint missed the planted underived seed" >&2
    exit 1
fi

echo "=== dpm-lint baseline-drift smoke (empty baseline must fail the gate) ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
printf '{"allows_by_rule": {}}\n' > "$SMOKE_DIR/empty_baseline.json"
if ./target/release/dpm-lint --baseline "$SMOKE_DIR/empty_baseline.json" > /dev/null; then
    echo "dpm-lint missed allow-count drift past the baseline" >&2
    exit 1
fi

echo "=== dpm-lint schema-registry smoke (schema id defined in two files must fail) ==="
printf 'pub const FORMAT: &str = "dpm-smoke/v1";\n' > "$SMOKE_DIR/schema_a.rs"
printf 'pub const FORMAT_COPY: &str = "dpm-smoke/v1";\n' > "$SMOKE_DIR/schema_b.rs"
if ./target/release/dpm-lint --deny "$SMOKE_DIR/schema_a.rs" "$SMOKE_DIR/schema_b.rs" > /dev/null; then
    echo "dpm-lint missed the duplicated schema-id definition" >&2
    exit 1
fi

echo "=== cargo test ==="
cargo test --workspace -q

echo "=== harness smoke run (tiny plan, 2 workers, determinism gate) ==="
cargo build --release -q -p dpm-bench --bin heuristics -p dpm-harness --bin artifact_diff
./target/release/heuristics --workers 1 --requests 500 --seed 7 \
    --out "$SMOKE_DIR/w1.json" > /dev/null
./target/release/heuristics --workers 2 --requests 500 --seed 7 \
    --out "$SMOKE_DIR/w2.json" > /dev/null
./target/release/artifact_diff --a "$SMOKE_DIR/w1.json" --b "$SMOKE_DIR/w2.json"

echo "=== fault-injection smoke (task 3 panics; everything else must survive) ==="
./target/release/heuristics --workers 2 --requests 500 --seed 7 \
    --inject-panic 3 --out "$SMOKE_DIR/faulted.json" > /dev/null 2> /dev/null
grep -q '"tasks_failed": 1' "$SMOKE_DIR/faulted.json"
grep -q '"status": "failed"' "$SMOKE_DIR/faulted.json"
[ "$(grep -c '"status": "ok"' "$SMOKE_DIR/faulted.json")" -eq 13 ]
# A faulted task must recover under retry: same fault, two attempts.
./target/release/heuristics --workers 2 --requests 500 --seed 7 \
    --inject-panic 3:1 --max-attempts 2 --out "$SMOKE_DIR/retried.json" > /dev/null 2> /dev/null
grep -q '"tasks_failed": 0' "$SMOKE_DIR/retried.json"
grep -q '"tasks_retried": 1' "$SMOKE_DIR/retried.json"

echo "=== solve-phase smoke (1 vs 2 solve workers, determinism gate) ==="
cargo build --release -q -p dpm-bench --bin fig4
./target/release/fig4 --workers 1 --solve-workers 1 --requests 500 --reps 1 \
    --seed 11 --out "$SMOKE_DIR/solve1.json" > /dev/null
./target/release/fig4 --workers 1 --solve-workers 2 --requests 500 --reps 1 \
    --seed 11 --out "$SMOKE_DIR/solve2.json" > /dev/null
./target/release/artifact_diff --a "$SMOKE_DIR/solve1.json" --b "$SMOKE_DIR/solve2.json"

echo "=== serving smoke (1 vs N shards, determinism gate at tolerance 0) ==="
cargo build --release -q -p dpm-bench --bin bench_serve
# bench_serve self-checks bit-identity across its --shards list and fails
# on any divergence; a small fleet keeps this fast on every host.
./target/release/bench_serve --systems 32 --requests 300 --shards 1,2 \
    --rounds 20 --lookup-capacity 50 --seed 7 \
    --out "$SMOKE_DIR/bench_serve.json" \
    --outcome-out "$SMOKE_DIR/serve1.json" > /dev/null
CORES="$(nproc)"
if [ "$CORES" -ge 4 ]; then
    # Enough cores for real parallelism: diff the 4-shard outcome against
    # the 1-shard outcome externally and record the measured speedup.
    ./target/release/bench_serve --systems 32 --requests 300 --shards 4,1 \
        --rounds 20 --lookup-capacity 50 --seed 7 \
        --out "$SMOKE_DIR/bench_serve4.json" \
        --outcome-out "$SMOKE_DIR/serve4.json" > /dev/null
    ./target/release/artifact_diff --a "$SMOKE_DIR/serve1.json" --b "$SMOKE_DIR/serve4.json"
    grep -o '"serve_4_shards_speedup_vs_1": [0-9.eE+-]*' "$SMOKE_DIR/bench_serve4.json" \
        | sed 's/^/multi-worker /'
else
    echo "($CORES core(s): skipping the 4-shard speedup leg; bit-identity already gated above)"
fi

echo "=== cluster smoke (K=2: matrix-free == materialized == lumped-refined) ==="
cargo build --release -q -p dpm-bench --bin bench_cluster
# bench_cluster self-gates the three solve paths against each other and
# exits non-zero on any disagreement; K=2 keeps the joint gate tiny, and
# the K=8 fleet leg is lumped-only (1287 states) so it stays cheap while
# still exercising the >1e6-joint-states check.
./target/release/bench_cluster --gate-k 2 --fleet-k 2,8 \
    --out "$SMOKE_DIR/bench_cluster.json" > /dev/null
grep -q '"matrix_free_matches_materialized": true' "$SMOKE_DIR/bench_cluster.json"
grep -q '"lumping_refines_to_joint": true' "$SMOKE_DIR/bench_cluster.json"

echo "=== criterion micro-bench smoke (kernels must stay compiling) ==="
cargo bench --workspace --no-run -q

echo "=== kill-and-resume smoke (truncated journal must resume bit-identically) ==="
./target/release/heuristics --workers 2 --requests 500 --seed 7 \
    --checkpoint "$SMOKE_DIR/journal.jsonl" --out "$SMOKE_DIR/full.json" > /dev/null
# Simulate a kill after 6 completed tasks: header + 6 journal entries.
head -n 7 "$SMOKE_DIR/journal.jsonl" > "$SMOKE_DIR/partial.jsonl"
./target/release/heuristics --workers 2 --requests 500 --seed 7 \
    --resume "$SMOKE_DIR/partial.jsonl" --out "$SMOKE_DIR/resumed.json" > /dev/null
./target/release/artifact_diff --a "$SMOKE_DIR/w1.json" --b "$SMOKE_DIR/resumed.json"

echo "=== serve chaos smoke (mid-run SIGKILL, resume, tol-0 diff vs uninterrupted) ==="
SERVE_CHAOS=(--systems 16 --requests 200000 --seed 99
    --inject-panic 3@400,5@250:2 --inject-error 7@300:max --max-attempts 3)
# The uninterrupted faulted reference: supervised serve, self-gated
# internally against a fault-free fleet, outcome artifact written.
./target/release/bench_serve "${SERVE_CHAOS[@]}" --shards 2 \
    --outcome-out "$SMOKE_DIR/serve_chaos_ref.json" > /dev/null 2> /dev/null
# The same run, SIGKILLed as soon as its journal shows progress.
./target/release/bench_serve "${SERVE_CHAOS[@]}" --shards 2 \
    --checkpoint "$SMOKE_DIR/serve_chaos.jsonl" \
    --outcome-out "$SMOKE_DIR/serve_chaos_never.json" > /dev/null 2> /dev/null &
CHAOS_PID=$!
for _ in $(seq 1 500); do
    [ -s "$SMOKE_DIR/serve_chaos.jsonl" ] && break
    sleep 0.01
done
kill -9 "$CHAOS_PID" 2> /dev/null || true
wait "$CHAOS_PID" 2> /dev/null || true
if [ -e "$SMOKE_DIR/serve_chaos_never.json" ]; then
    echo "(chaos run finished before the kill landed; resume leg still gates the journal)"
fi
# Resume from whatever the kill left behind — at a different shard count —
# and require the outcome to match the uninterrupted reference bit-for-bit.
./target/release/bench_serve "${SERVE_CHAOS[@]}" --shards 4 \
    --resume "$SMOKE_DIR/serve_chaos.jsonl" \
    --outcome-out "$SMOKE_DIR/serve_chaos_resumed.json" > /dev/null 2> /dev/null
./target/release/artifact_diff --a "$SMOKE_DIR/serve_chaos_ref.json" \
    --b "$SMOKE_DIR/serve_chaos_resumed.json"

echo "CI checks passed."
