#!/usr/bin/env bash
# Local CI gate: formatting, lints, docs and the full test suite —
# everything a change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy (workspace, warnings are errors) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo doc (no deps, warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "=== cargo test ==="
cargo test --workspace -q

echo "=== harness smoke run (tiny plan, 2 workers, determinism gate) ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo build --release -q -p dpm-bench --bin heuristics -p dpm-harness --bin artifact_diff
./target/release/heuristics --workers 1 --requests 500 --seed 7 \
    --out "$SMOKE_DIR/w1.json" > /dev/null
./target/release/heuristics --workers 2 --requests 500 --seed 7 \
    --out "$SMOKE_DIR/w2.json" > /dev/null
./target/release/artifact_diff --a "$SMOKE_DIR/w1.json" --b "$SMOKE_DIR/w2.json"

echo "CI checks passed."
