#!/usr/bin/env bash
# Regenerates every table and figure of Qiu & Pedram (DAC 1999) plus the
# ablations, writing each experiment's output under results/.
#
# Binaries ported to the dpm-harness runner (fig4, fig5, heuristics,
# scaling) also emit versioned JSON artifacts under results/ and accept
# WORKERS to parallelize their simulation phase (default: all cores).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

WORKERS="${WORKERS:-0}"
HARNESS_FLAGS=()
if [ "$WORKERS" -gt 0 ]; then
    HARNESS_FLAGS+=(--workers "$WORKERS")
fi

PLAIN_BINARIES=(table1 validate_model ablate_solvers ablate_transfer_states \
                ablate_constrained ablate_discounted ablate_synchronous adaptive)
HARNESS_BINARIES=(fig4 fig5 heuristics scaling)

echo "=== preflight: dpm-lint (determinism invariants must hold before a full run) ==="
cargo build --release -q -p dpm-lint
./target/release/dpm-lint --deny

cargo build --release -p dpm-bench --bins

for bin in "${HARNESS_BINARIES[@]}"; do
    echo "=== $bin (harness) ==="
    "./target/release/$bin" "${HARNESS_FLAGS[@]}" --out "results/$bin.json" \
        | tee "results/$bin.txt"
done

for bin in "${PLAIN_BINARIES[@]}"; do
    echo "=== $bin ==="
    "./target/release/$bin" | tee "results/$bin.txt"
done

echo "All experiment outputs written to results/ (tables .txt, artifacts .json)."
