#!/usr/bin/env bash
# Regenerates every table and figure of Qiu & Pedram (DAC 1999) plus the
# ablations, writing each experiment's output under results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINARIES=(fig4 table1 fig5 validate_model ablate_solvers ablate_transfer_states \
          ablate_constrained ablate_discounted ablate_synchronous adaptive heuristics)
cargo build --release -p dpm-bench --bins
for bin in "${BINARIES[@]}"; do
    echo "=== $bin ==="
    "./target/release/$bin" | tee "results/$bin.txt"
done
echo "All experiment outputs written to results/."
